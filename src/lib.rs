//! `netrepro` — a Rust reproduction of *"Toward Reproducing Network
//! Research Results Using Large Language Models"* (Xiang et al.,
//! HotNets 2023).
//!
//! This umbrella crate re-exports the workspace's crates:
//!
//! * [`bdd`] — the ROBDD engine (JDD/JavaBDD stand-ins);
//! * [`lp`] — the LP solvers (Gurobi/PuLP stand-ins);
//! * [`graph`] — topologies, routing, traffic matrices, partitioning;
//! * [`dpv`] — the AP verifier and APKeep;
//! * [`te`] — NCFlow, ARROW and the MCF baseline;
//! * [`core`] — the paper's contribution: the LLM-assisted
//!   reproduction framework, survey pipeline and validation layer;
//! * [`analysis`] — the static defect auditor (§3.3 taxonomy without
//!   execution) and the workspace invariant linter (`repolint`);
//! * [`rps`] — the Figure 3 rock-paper-scissors client/server.
//!
//! Start with `examples/quickstart.rs`, then `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use netrepro_bdd as bdd;
pub use netrepro_core as core;
pub use netrepro_dpv as dpv;
pub use netrepro_graph as graph;
pub use netrepro_lp as lp;
pub use netrepro_rps as rps;
pub use netrepro_te as te;
