//! Criterion bench behind Tables A and B: the NCFlow contraction
//! benefit (flat LP vs NCFlow at several cluster counts — the ablation
//! `DESIGN.md` calls out) and the two ARROW formulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::validate::te_instance;
use netrepro_graph::gen::TopologySpec;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_te::arrow::{multi_fiber_scenarios, solve_arrow, ArrowInstance, ArrowVariant};
use netrepro_te::mcf::solve_mcf;
use netrepro_te::ncflow::{solve_ncflow, NcFlowConfig};

fn bench_ncflow_contraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("ncflow");
    g.sample_size(10);
    let inst = te_instance(&TopologySpec::new("bench", 60, 2023), 60, 4);
    g.bench_function("flat_lp", |b| {
        b.iter(|| solve_mcf(&inst, &RevisedSimplex::default()).unwrap().total_flow)
    });
    for k in [2usize, 4, 8, 16] {
        let cfg = NcFlowConfig { num_clusters: k, paths_per_commodity: 4, parallel_r2: false };
        g.bench_with_input(BenchmarkId::new("clusters", k), &cfg, |b, cfg| {
            b.iter(|| solve_ncflow(&inst, cfg, &RevisedSimplex::default()).unwrap().total_flow)
        });
    }
    let par = NcFlowConfig { num_clusters: 8, paths_per_commodity: 4, parallel_r2: true };
    g.bench_function("clusters8_parallel", |b| {
        b.iter(|| solve_ncflow(&inst, &par, &RevisedSimplex::default()).unwrap().total_flow)
    });
    g.finish();
}

fn bench_arrow_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrow");
    g.sample_size(10);
    let mut te = te_instance(&TopologySpec::new("bench", 16, 2123), 10, 3);
    te.tm.scale(4.0);
    let scenarios = multi_fiber_scenarios(&te, 3, 3);
    let inst = ArrowInstance { te, scenarios, restoration_fraction: 0.5 };
    for (label, v) in [("faithful", ArrowVariant::Faithful), ("open_source", ArrowVariant::OpenSource)] {
        g.bench_function(label, |b| {
            b.iter(|| solve_arrow(&inst, v, &RevisedSimplex::default()).unwrap().committed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ncflow_contraction, bench_arrow_variants);
criterion_main!(benches);
