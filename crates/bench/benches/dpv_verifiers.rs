//! Criterion bench behind Tables C and D's verification columns:
//! selective BFS vs path enumeration, and APKeep's incremental update
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_bdd::EngineProfile;
use netrepro_core::validate::dpv_dataset;
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::apkeep::ApKeep;
use netrepro_dpv::reach::{find_loops, path_enumeration, selective_bfs};
use netrepro_graph::NodeId;

fn bench_reachability(c: &mut Criterion) {
    let mut g = c.benchmark_group("reachability");
    g.sample_size(10);
    // Small enough that full enumeration terminates per iteration.
    let ds = dpv_dataset("bench", 11, 12, 2023);
    let verifier = ApVerifier::build(&ds.network, EngineProfile::Cached);
    g.bench_function("selective_bfs", |b| {
        b.iter(|| selective_bfs(&verifier, NodeId(0), NodeId(7)).delivered.len())
    });
    g.bench_function("path_enumeration", |b| {
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        b.iter(|| path_enumeration(&mut v, NodeId(0), NodeId(7), 10_000_000).paths_explored)
    });
    g.bench_function("loop_scan", |b| {
        b.iter(|| find_loops(&verifier, 8).len())
    });
    g.finish();
}

fn bench_apkeep_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("apkeep");
    g.sample_size(10);
    for nodes in [9usize, 16] {
        let ds = dpv_dataset("bench", nodes, 14, 2123 + nodes as u64);
        g.bench_with_input(BenchmarkId::new("insert_stream", nodes), &ds, |b, ds| {
            b.iter(|| {
                let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
                for v in ds.network.graph.nodes() {
                    for r in &ds.network.device(v).rules {
                        k.insert(v, *r);
                    }
                }
                k.changes_applied
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reachability, bench_apkeep_updates);
criterion_main!(benches);
