//! Criterion bench behind Figures 3–5: the simulated reproduction
//! sessions, plus the prompting-strategy ablation from `DESIGN.md`
//! (monolithic-start vs straight-modular vs pseudocode-first).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::PromptStyle;
use netrepro_core::student::Participant;
use netrepro_core::survey::{build_corpus, SurveyStats};
use netrepro_core::ReproductionSession;

fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("sessions");
    for sys in TargetSystem::EXPERIMENT {
        g.bench_with_input(
            BenchmarkId::new("participant", sys.participant()),
            &sys,
            |b, &sys| {
                b.iter(|| {
                    ReproductionSession::new(Participant::preset(sys), 2023)
                        .run()
                        .total_prompts()
                })
            },
        );
    }
    g.finish();
}

fn bench_strategy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("strategy_ablation");
    type Variant<'a> = (&'a str, Box<dyn Fn() -> Participant>);
    let variants: Vec<Variant> = vec![
        ("preset_pseudocode_first", Box::new(|| Participant::preset(TargetSystem::NcFlow))),
        (
            "modular_text_only",
            Box::new(|| {
                let mut p = Participant::preset(TargetSystem::NcFlow);
                p.strategy.style = PromptStyle::ModularText;
                p.strategy.pseudocode_first = false;
                p
            }),
        ),
        (
            "no_monolithic_detour",
            Box::new(|| {
                let mut p = Participant::preset(TargetSystem::NcFlow);
                p.strategy.start_monolithic = false;
                p
            }),
        ),
    ];
    for (label, mk) in variants {
        g.bench_function(label, |b| {
            b.iter(|| ReproductionSession::new(mk(), 2023).run().total_words())
        });
    }
    g.finish();
}

fn bench_survey(c: &mut Criterion) {
    c.bench_function("survey_corpus_and_stats", |b| {
        b.iter(|| {
            let corpus = build_corpus(2023);
            SurveyStats::compute(&corpus).both_rate
        })
    });
}

criterion_group!(benches, bench_sessions, bench_strategy_ablation, bench_survey);
criterion_main!(benches);
