//! Criterion bench behind Table A's latency column and two ablations
//! from `DESIGN.md`: revised vs dense simplex, and the dense solver
//! with/without the PuLP-style LP-file round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::validate::te_instance;
use netrepro_graph::gen::TopologySpec;
use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_lp::LpSolver;
use netrepro_te::mcf::solve_mcf;

fn bench_mcf_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("mcf_lp");
    g.sample_size(10);
    for commodities in [20usize, 60] {
        let inst = te_instance(&TopologySpec::new("bench", 30, 2023), commodities, 4);
        let solvers: Vec<(&str, Box<dyn LpSolver>)> = vec![
            ("revised", Box::new(RevisedSimplex::default())),
            ("dense+lpfile", Box::new(DenseSimplex::default())),
            (
                "dense-pure",
                Box::new(DenseSimplex { file_interchange: false, ..Default::default() }),
            ),
            (
                "revised-nopresolve",
                Box::new(RevisedSimplex { presolve: false, ..Default::default() }),
            ),
        ];
        for (label, solver) in solvers {
            g.bench_with_input(BenchmarkId::new(label, commodities), &inst, |b, inst| {
                b.iter(|| solve_mcf(inst, solver.as_ref()).unwrap().total_flow)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mcf_solvers);
criterion_main!(benches);
