//! Criterion bench for the crash-safe sweep runtime: straight-through
//! orchestration cost, journal replay cost, the resume path (replay a
//! half-journal, then execute the remainder), and serial-vs-parallel
//! execution of a wider matrix through the worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::fault::FaultProfile;
use netrepro_core::harness::{
    parse_journal, MemoryJournal, Sweep, SweepConfig, TaskLimits, TopoScale,
};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::PromptStyle;

/// A small matrix: 2 systems × 1 style × 2 seeds × 2 profiles = 8 cells.
fn small_config(profile: FaultProfile) -> SweepConfig {
    SweepConfig {
        systems: vec![TargetSystem::RockPaperScissors, TargetSystem::NcFlow],
        styles: vec![PromptStyle::ModularText],
        seeds: vec![0, 1],
        profiles: vec![FaultProfile::None, profile],
        scales: vec![TopoScale::Paper],
        limits: TaskLimits::default(),
    }
}

fn bench_straight_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_straight");
    for profile in [FaultProfile::None, FaultProfile::Heavy, FaultProfile::Chaos] {
        g.bench_with_input(BenchmarkId::new("profile", profile.name()), &profile, |b, &p| {
            let sweep = Sweep::new(small_config(p));
            b.iter(|| {
                let mut sink = MemoryJournal::new();
                sweep.run(&mut sink).expect("sweep runs").coverage.completed
            })
        });
    }
    g.finish();
}

fn bench_replay_and_resume(c: &mut Criterion) {
    // Pre-compute a full journal, then measure (a) pure replay parsing
    // and (b) resume-from-half: parse + execute the remaining cells.
    let config = small_config(FaultProfile::Chaos);
    let sweep = Sweep::new(config.clone());
    let mut sink = MemoryJournal::new();
    sweep.run(&mut sink).expect("sweep runs");
    let text = sink.text().to_string();
    let half: String = {
        let lines: Vec<&str> = text.lines().collect();
        let keep = lines.len() / 2;
        let mut s = lines[..keep].join("\n");
        s.push('\n');
        s
    };

    let mut g = c.benchmark_group("sweep_resume");
    g.bench_function("parse_full_journal", |b| {
        b.iter(|| parse_journal(&text, &config).expect("parses").records.len())
    });
    g.bench_function("resume_from_half_journal", |b| {
        b.iter(|| {
            let replay = parse_journal(&half, &config).expect("parses");
            let mut sink = MemoryJournal::with_text(&half);
            sweep.run_from(&replay, &mut sink).expect("resumes").coverage.completed
        })
    });
    g.finish();
}

/// A wider matrix for the parallel comparison: 4 systems × 2 styles ×
/// 2 seeds × 2 profiles = 32 cells, enough work per cell for the pool
/// to matter.
fn wide_config() -> SweepConfig {
    SweepConfig {
        systems: vec![
            TargetSystem::NcFlow,
            TargetSystem::Arrow,
            TargetSystem::ApKeep,
            TargetSystem::ApVerifier,
        ],
        styles: vec![PromptStyle::ModularText, PromptStyle::ModularPseudocode],
        seeds: vec![0, 1],
        profiles: vec![FaultProfile::None, FaultProfile::Chaos],
        scales: vec![TopoScale::Paper],
        limits: TaskLimits::default(),
    }
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let config = wide_config();
    let mut g = c.benchmark_group("sweep_workers");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let sweep = Sweep::new(config.clone()).with_workers(w);
            b.iter(|| {
                let mut sink = MemoryJournal::new();
                sweep.run(&mut sink).expect("sweep runs").coverage.completed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_straight_run, bench_replay_and_resume, bench_serial_vs_parallel);
criterion_main!(benches);
