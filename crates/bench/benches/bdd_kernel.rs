//! Criterion bench for the flat BDD kernel itself: raw `mk` minting
//! throughput through the open-addressed unique table, and `apply`
//! throughput through the direct-mapped op/not caches — the two paths
//! the flat-table rewrite targets, isolated from the verifier stacks
//! that sit on top of them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_bdd::{BddManager, EngineProfile};

/// Hash-consing throughput: mint a large family of distinct prefix
/// predicates, exercising unique-table probes, growth and reduction
/// hits without touching the apply caches.
fn bench_mk_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_kernel");
    g.bench_function("mk_prefix_mint", |b| {
        b.iter(|| {
            let mut m = BddManager::new(32, EngineProfile::Cached);
            let mut last = netrepro_bdd::FALSE;
            for i in 0..512u64 {
                last = m.field_prefix(0, 32, (i * 2654435761) % (1 << 20), 20);
            }
            last
        })
    });
    g.finish();
}

/// Apply-chain throughput under both engine profiles: long and/or/not
/// chains over a fixed variable set, the access pattern the op and not
/// caches serve.
fn bench_apply_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_kernel");
    for (label, profile) in
        [("cached", EngineProfile::Cached), ("uncached", EngineProfile::Uncached)]
    {
        g.bench_with_input(BenchmarkId::new("apply_chain", label), &profile, |b, &profile| {
            b.iter(|| {
                let mut m = BddManager::new(24, profile);
                let mut acc = m.var(0);
                for round in 0..50u32 {
                    for v in 0..24u32 {
                        let x = m.var((v + round) % 24);
                        acc = if v % 2 == 0 { m.and(acc, x) } else { m.or(acc, x) };
                        let n = m.not(acc);
                        acc = m.or(acc, n);
                    }
                }
                m.sat_count(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mk_throughput, bench_apply_throughput);
criterion_main!(benches);
