//! Criterion bench behind Table D's predicate-computation column and
//! the BDD-cache ablation called out in `DESIGN.md`: the same
//! atomic-predicate compilation under the Cached (JDD-like) and
//! Uncached (JavaBDD-like) engine profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_bdd::{BddManager, EngineProfile};
use netrepro_core::validate::dpv_dataset;
use netrepro_dpv::ap::ApVerifier;

fn bench_predicate_computation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ap_build");
    g.sample_size(10);
    for nodes in [9usize, 14, 18] {
        let ds = dpv_dataset("bench", nodes, 14, 2023 + nodes as u64);
        for (label, profile) in
            [("cached", EngineProfile::Cached), ("uncached", EngineProfile::Uncached)]
        {
            g.bench_with_input(BenchmarkId::new(label, nodes), &ds, |b, ds| {
                b.iter(|| ApVerifier::build(&ds.network, profile).num_atoms())
            });
        }
    }
    g.finish();
}

fn bench_raw_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_ops");
    for (label, profile) in
        [("cached", EngineProfile::Cached), ("uncached", EngineProfile::Uncached)]
    {
        g.bench_function(BenchmarkId::new("diff_chain", label), |b| {
            b.iter(|| {
                let mut m = BddManager::new(24, profile);
                let mut acc = netrepro_bdd::TRUE;
                for i in 0..200u64 {
                    let p = m.field_prefix(0, 24, ((i * 37) % (1 << 12)) << 12, 12);
                    acc = m.diff(acc, p);
                }
                m.sat_count(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predicate_computation, bench_raw_ops);
criterion_main!(benches);
