//! Criterion bench for the partitioned parallel DPV pipeline: fabric
//! generation throughput, serial-vs-partitioned verification of whole
//! fat-trees, and the per-destination cost at a 10k-device scale.
//!
//! Every partitioned measurement asserts byte-identity against the
//! serial verifier first — a timing for a wrong answer is worthless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::dpv_scale::{run_spec, DpvScaleSpec};
use netrepro_dpv::fabric::{build, FabricSpec};

fn bench_fabric_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_gen");
    g.sample_size(10);
    for k in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("fat_tree_fib", k), &k, |b, &k| {
            b.iter(|| build(&FabricSpec::new(k, 2023)).network.num_rules())
        });
    }
    g.finish();
}

fn bench_verify_partitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpv_scale");
    g.sample_size(10);
    let base = DpvScaleSpec { link_down: 6, ..DpvScaleSpec::new(8, 2023) };
    let serial = run_spec(&base).expect("serial verification");
    for partitions in [1usize, 2, 4] {
        let spec = DpvScaleSpec { partitions, workers: partitions, ..base };
        // The gate: a partitioned run must reproduce the serial bytes.
        let check = run_spec(&spec).expect("partitioned verification");
        assert_eq!(
            check.rendered, serial.rendered,
            "P={partitions} diverged from the serial verifier"
        );
        g.bench_with_input(BenchmarkId::new("k8_full", partitions), &spec, |b, spec| {
            b.iter(|| run_spec(spec).expect("verification").digest)
        });
    }
    g.finish();
}

fn bench_verify_10k(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpv_scale_10k");
    g.sample_size(10);
    // k=64 with hosts is 70,656 devices; a seeded 2-destination sample
    // keeps the per-iteration cost bounded while still exercising the
    // full fabric build + per-destination fixpoints.
    let spec = DpvScaleSpec {
        link_down: 40,
        queries: Some(2),
        partitions: 2,
        workers: 2,
        ..DpvScaleSpec::new(64, 7)
    };
    let serial = run_spec(&DpvScaleSpec { partitions: 1, workers: 1, ..spec })
        .expect("serial verification");
    assert!(serial.devices >= 10_000);
    let check = run_spec(&spec).expect("partitioned verification");
    assert_eq!(check.rendered, serial.rendered, "10k-device run diverged from serial");
    g.bench_function("k64_sampled", |b| {
        b.iter(|| run_spec(&spec).expect("verification").digest)
    });
    g.finish();
}

criterion_group!(benches, bench_fabric_gen, bench_verify_partitions, bench_verify_10k);
criterion_main!(benches);
