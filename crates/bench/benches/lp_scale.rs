//! Criterion bench behind the kernel-pass speedup claims: the
//! `lp_scale` ladder (1×/10×/100× NCFlow-style MCF instances from
//! `core::validate::lp_scale_specs`) with the sparse-LU revised simplex
//! at every rung and the dense tableau solver only where its cubic cost
//! stays tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netrepro_core::validate::{lp_scale_instance, lp_scale_specs};
use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_lp::LpSolver;
use netrepro_te::mcf::solve_mcf;

fn bench_lp_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_scale");
    g.sample_size(10);
    for spec in lp_scale_specs() {
        let inst = lp_scale_instance(&spec);
        let revised = RevisedSimplex::default();
        g.bench_with_input(BenchmarkId::new("revised", spec.label), &inst, |b, inst| {
            b.iter(|| solve_mcf(inst, &revised as &dyn LpSolver).unwrap().total_flow)
        });
        if spec.run_dense {
            let dense = DenseSimplex::default();
            g.bench_with_input(BenchmarkId::new("dense", spec.label), &inst, |b, inst| {
                b.iter(|| solve_mcf(inst, &dense as &dyn LpSolver).unwrap().total_flow)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_lp_scale);
criterion_main!(benches);
