//! Shared experiment configuration for the figure-regeneration
//! binaries (`src/bin/fig*.rs`, `src/bin/table*.rs`) and the Criterion
//! benches.
//!
//! Every binary prints its table to stdout and writes the same table as
//! JSON under `results/`. Scales are chosen so the *slow* configurations
//! (dense-tableau LP, uncached BDD engine, path enumeration) finish in
//! seconds to minutes while still showing the paper's gaps; pass
//! `--full` to a binary for the bigger sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netrepro_core::metrics::Table;
use netrepro_graph::gen::TopologySpec;

/// The experiment master seed (change to re-randomise every dataset).
pub const SEED: u64 = 2023;

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-row defaults.
    Quick,
    /// The full sweep (minutes).
    Full,
}

impl Scale {
    /// Parse from argv: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// The 13 NCFlow TE instances (Table A), with per-instance commodity
/// budgets that keep the dense-solver runs tractable.
pub fn table_a_instances(scale: Scale) -> Vec<(TopologySpec, usize)> {
    let cat = netrepro_graph::gen::catalogue(SEED);
    cat.into_iter()
        .map(|spec| {
            let commodities = match scale {
                Scale::Quick => match spec.nodes {
                    0..=40 => 170,
                    41..=160 => 60,
                    _ => 25,
                },
                Scale::Full => match spec.nodes {
                    0..=40 => 300,
                    41..=160 => 150,
                    _ => 50,
                },
            };
            (spec, commodities)
        })
        .collect()
}

/// The two ARROW instances (Table B): mid-size optical WANs.
pub fn table_b_instances() -> Vec<TopologySpec> {
    vec![
        TopologySpec::new("OpticalA", 16, SEED + 100),
        TopologySpec::new("OpticalB", 24, SEED + 101),
    ]
}

/// The four APKeep datasets (Table C): `(name, nodes, header bits)`.
pub fn table_c_datasets(scale: Scale) -> Vec<(&'static str, usize, u32)> {
    match scale {
        Scale::Quick => vec![
            ("Internet2", 9, 12),
            ("Stanford", 16, 14),
            ("Purdue", 24, 14),
            ("Campus4", 32, 14),
        ],
        Scale::Full => vec![
            ("Internet2", 9, 14),
            ("Stanford", 26, 16),
            ("Purdue", 40, 16),
            ("Campus4", 60, 16),
        ],
    }
}

/// The three AP datasets (Table D): `(name, nodes, header bits,
/// path-enumeration cap)`.
pub fn table_d_datasets(scale: Scale) -> Vec<(&'static str, usize, u32, u64)> {
    match scale {
        Scale::Quick => vec![
            ("Internet2", 9, 12, 1_000_000),
            ("Stanford", 14, 14, 200_000),
            ("Purdue", 18, 14, 100_000),
        ],
        Scale::Full => vec![
            ("Internet2", 9, 14, 5_000_000),
            ("Stanford", 20, 16, 500_000),
            ("Purdue", 28, 16, 200_000),
        ],
    }
}

/// Print a table and persist its JSON next to the repo's `results/`.
pub fn emit(table: &Table) {
    println!("{}", table.render());
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let file = dir.join(format!(
            "{}.json",
            table.id.to_lowercase().replace(' ', "_").replace('/', "-")
        ));
        if let Err(e) = std::fs::write(&file, table.to_json()) {
            eprintln!("warning: could not write {}: {e}", file.display());
        } else {
            eprintln!("(json written to {})", file.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_a_has_thirteen_instances() {
        assert_eq!(table_a_instances(Scale::Quick).len(), 13);
        assert_eq!(table_a_instances(Scale::Full).len(), 13);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = table_a_instances(Scale::Quick);
        let f = table_a_instances(Scale::Full);
        for (a, b) in q.iter().zip(&f) {
            assert!(a.1 <= b.1);
            assert_eq!(a.0.name, b.0.name);
        }
    }

    #[test]
    fn dataset_counts_match_paper() {
        assert_eq!(table_b_instances().len(), 2);
        assert_eq!(table_c_datasets(Scale::Quick).len(), 4);
        assert_eq!(table_d_datasets(Scale::Quick).len(), 3);
    }
}
