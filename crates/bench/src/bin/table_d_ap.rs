//! Table D — participant D's AP-verifier findings on three topologies.
//!
//! Paper: same number of atomic predicates and identical verification
//! results, but (1) predicate computation up to 20× slower because the
//! reproduction used JavaBDD instead of JDD, and (2) reachability
//! verification up to 10⁴× slower because the paper omits the selective
//! BFS traversal and D enumerated paths instead. Here the open-source
//! side is the cached engine + selective BFS and the reproduced side the
//! uncached engine + capped path enumeration.

use netrepro_bench::{emit, table_d_datasets, Scale, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::validate::{dpv_dataset, validate_ap};
use netrepro_graph::gen::sample_pairs;

fn main() {
    let scale = Scale::from_args();
    let mut t = Table::new(
        "Table D",
        "AP: cached+BFS (open-source) vs uncached+path-enumeration (reproduced)",
    );
    let mut worst_pred: f64 = 0.0;
    let mut worst_verify: f64 = 0.0;
    for (name, nodes, width, cap) in table_d_datasets(scale) {
        let ds = dpv_dataset(name, nodes, width, SEED + nodes as u64);
        let queries = sample_pairs(&ds.network.graph, 6, SEED + 7);
        let v = validate_ap(&ds, name, &queries, cap);
        worst_pred = worst_pred.max(v.pred_ratio());
        worst_verify = worst_verify.max(v.verify_ratio());
        t.push(Row::new(
            format!("{name} (n={nodes})"),
            vec![
                ("atoms_open", v.atoms_open as f64),
                ("atoms_repro", v.atoms_repro as f64),
                ("pred_open_ms", v.pred_time_open.as_secs_f64() * 1e3),
                ("pred_repro_ms", v.pred_time_repro.as_secs_f64() * 1e3),
                ("pred_ratio", v.pred_ratio()),
                ("verify_open_ms", v.verify_time_open.as_secs_f64() * 1e3),
                ("verify_repro_ms", v.verify_time_repro.as_secs_f64() * 1e3),
                ("verify_ratio", v.verify_ratio()),
                ("equal", if v.results_equal { 1.0 } else { 0.0 }),
            ],
        ));
    }
    emit(&t);
    println!(
        "worst predicate-computation ratio: {worst_pred:.1}x (paper: up to 20x); \
         worst verification ratio: {worst_verify:.1}x (paper: up to 1e4x)"
    );
}
