//! Ablation: prompting strategies (the §3.3 lessons, quantified).
//! Compares monolithic-start, straight-modular-text, and
//! pseudocode-first across seeds: prompt cost, word cost, residual
//! logic bugs, and interop repairs at integration.

use netrepro_bench::{emit, SEED};
use netrepro_core::llm::DefectKind;
use netrepro_core::metrics::{Row, Table};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::{PromptKind, PromptStyle};
use netrepro_core::student::Participant;
use netrepro_core::ReproductionSession;

fn main() {
    let runs = 30u64;
    let mut t = Table::new(
        "Ablation prompting",
        "strategy outcomes on NCFlow, mean over 30 seeds",
    );
    type Variant<'a> = (&'a str, Box<dyn Fn() -> Participant>);
    let variants: Vec<Variant> = vec![
        (
            "monolithic-start (paper)",
            Box::new(|| Participant::preset(TargetSystem::NcFlow)),
        ),
        (
            "modular text",
            Box::new(|| {
                let mut p = Participant::preset(TargetSystem::NcFlow);
                p.strategy.start_monolithic = false;
                p.strategy.style = PromptStyle::ModularText;
                p.strategy.pseudocode_first = false;
                p
            }),
        ),
        (
            "pseudocode-first",
            Box::new(|| {
                let mut p = Participant::preset(TargetSystem::NcFlow);
                p.strategy.start_monolithic = false;
                p
            }),
        ),
    ];
    for (label, mk) in variants {
        let mut prompts = 0.0;
        let mut words = 0.0;
        let mut residual = 0.0;
        let mut integration_repairs = 0.0;
        for s in 0..runs {
            let r = ReproductionSession::new(mk(), SEED + s).run();
            prompts += r.total_prompts() as f64;
            words += r.total_words() as f64;
            residual += r
                .residual_defects
                .iter()
                .filter(|d| matches!(d, DefectKind::SimpleLogic | DefectKind::ComplexLogic))
                .count() as f64;
            integration_repairs += r
                .prompts
                .iter()
                .filter(|p| matches!(p.kind, PromptKind::DebugStepByStep { .. }))
                .count() as f64;
        }
        let n = runs as f64;
        t.push(Row::new(
            label,
            vec![
                ("prompts", prompts / n),
                ("words", words / n),
                ("residual_bugs", residual / n),
                ("stepbystep_repairs", integration_repairs / n),
            ],
        ));
    }
    emit(&t);
    println!(
        "lessons quantified: the monolithic detour only adds cost; pseudocode-first\n\
         cuts integration repairs (interop mismatches) relative to text prompting."
    );
}
