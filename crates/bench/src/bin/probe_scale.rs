//! Internal scale probe (not an experiment binary): sizes Table D's
//! datasets so the quick scale shows the paper's gaps in bounded time.

use netrepro_bdd::EngineProfile;
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::dataset::{generate, DatasetOpts};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::reach::{path_enumeration, selective_bfs};
use netrepro_graph::gen::{sample_pairs, waxman, TopologySpec};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let prefixes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let cap: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(500_000);

    let graph = waxman(&TopologySpec::new("probe", nodes, 2023));
    let ds = generate(
        graph,
        HeaderLayout::new(18),
        &DatasetOpts { prefixes_per_device: prefixes, fault_rate: 0.9, seed: 5 },
    );
    println!("nodes={nodes} prefixes/dev={prefixes} rules={}", ds.network.num_rules());

    let t = Instant::now();
    let open = ApVerifier::build(&ds.network, EngineProfile::Cached);
    let cached = t.elapsed();
    let t = Instant::now();
    let mut repro = ApVerifier::build(&ds.network, EngineProfile::Uncached);
    let uncached = t.elapsed();
    println!(
        "atoms={} pred cached={cached:?} uncached={uncached:?} ratio={:.1}",
        open.num_atoms(),
        uncached.as_secs_f64() / cached.as_secs_f64()
    );

    let queries = sample_pairs(&ds.network.graph, 4, 77);
    let t = Instant::now();
    for &(s, d) in &queries {
        let _ = selective_bfs(&open, s, d);
    }
    let bfs = t.elapsed();
    let t = Instant::now();
    let mut truncated = 0;
    for &(s, d) in &queries {
        let r = path_enumeration(&mut repro, s, d, cap);
        if r.truncated {
            truncated += 1;
        }
    }
    let en = t.elapsed();
    println!(
        "verify bfs={bfs:?} enum={en:?} ratio={:.0} truncated={truncated}/{}",
        en.as_secs_f64() / bfs.as_secs_f64(),
        queries.len()
    );
}
