//! Table B — participant B's ARROW findings on two TE instances.
//!
//! Paper: the reproduced ARROW (built from the paper text) differs from
//! the open-source prototype by up to 30% in objective, because the
//! paper's predefined parameters are decision variables in the released
//! code and the restorable-tunnel definition differs. Here the
//! "reproduced" side runs the `Faithful` formulation and the
//! "open-source" side the `OpenSource` formulation.

use netrepro_bench::{emit, table_b_instances, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::validate::{te_instance, validate_arrow};
use netrepro_te::arrow::{multi_fiber_scenarios, ArrowInstance};

fn main() {
    let mut t = Table::new(
        "Table B",
        "ARROW: open-source formulation vs paper-faithful reproduction",
    );
    let mut worst: f64 = 0.0;
    for (i, spec) in table_b_instances().into_iter().enumerate() {
        let mut te = te_instance(&spec, 10, 3);
        // ARROW's regime: demand that saturates the post-cut network, so
        // restoration capacity is the binding resource.
        te.tm.scale(4.0);
        let scenarios = multi_fiber_scenarios(&te, 3, 3);
        let inst = ArrowInstance { te, scenarios, restoration_fraction: 0.5 };
        match validate_arrow(&inst) {
            Ok(v) => {
                worst = worst.max(v.obj_diff_pct());
                t.push(Row::new(
                    format!("instance {} ({}, seed {})", i + 1, spec.name, SEED),
                    vec![
                        ("obj_open", v.obj_open),
                        ("obj_repro", v.obj_repro),
                        ("obj_diff_%", v.obj_diff_pct()),
                        ("lat_open_ms", v.latency_open.as_secs_f64() * 1e3),
                        ("lat_repro_ms", v.latency_repro.as_secs_f64() * 1e3),
                    ],
                ));
            }
            Err(e) => eprintln!("{}: {e}", spec.name),
        }
    }
    emit(&t);
    println!("worst objective diff: {worst:.1}% (paper: up to 30%)");
}
