//! Table C — participant C's APKeep findings on four topologies.
//!
//! Paper: the reproduced APKeep computes the same number of atomic
//! predicates as the (non-author) open-source prototype with
//! approximately the same latency; both use JDD. Here both sides run
//! the same incremental pipeline on the cached engine, replaying the
//! same update stream.

use netrepro_bench::{emit, table_c_datasets, Scale, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::validate::{dpv_dataset, validate_apkeep};

fn main() {
    let scale = Scale::from_args();
    let mut t = Table::new(
        "Table C",
        "APKeep: open-source vs reproduced (atomic predicates and update latency)",
    );
    for (name, nodes, width) in table_c_datasets(scale) {
        let ds = dpv_dataset(name, nodes, width, SEED + nodes as u64);
        let v = validate_apkeep(&ds, name);
        t.push(Row::new(
            format!("{name} (n={nodes})"),
            vec![
                ("atoms_open", v.atoms_open as f64),
                ("atoms_repro", v.atoms_repro as f64),
                ("lat_open_ms", v.pred_time_open.as_secs_f64() * 1e3),
                ("lat_repro_ms", v.pred_time_repro.as_secs_f64() * 1e3),
                ("equal", if v.results_equal { 1.0 } else { 0.0 }),
            ],
        ));
    }
    emit(&t);
    println!("paper: same #atomic-predicates, approximately the same latency — equal=1 rows");
}
