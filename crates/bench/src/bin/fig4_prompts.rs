//! Figure 4 — number of prompts (and words) each participant used.
//!
//! The paper plots the four participants' prompt/word counts as bars;
//! this binary runs each participant's simulated session across several
//! seeds and reports the mean ± spread, plus the qualitative shape
//! checks (everyone lands in the tens of prompts / thousands of words).

use netrepro_bench::{emit, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::paper::TargetSystem;
use netrepro_core::student::Participant;
use netrepro_core::ReproductionSession;

fn main() {
    let runs = 9u64;
    let mut t = Table::new(
        "Figure 4",
        "prompts and words per participant (mean over seeds)",
    );
    for sys in TargetSystem::EXPERIMENT {
        let mut prompts = Vec::new();
        let mut words = Vec::new();
        for s in 0..runs {
            let r = ReproductionSession::new(Participant::preset(sys), SEED + s).run();
            prompts.push(r.total_prompts() as f64);
            words.push(r.total_words() as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let spread = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        t.push(Row::new(
            format!("{} ({})", sys.participant(), sys.name()),
            vec![
                ("prompts", mean(&prompts)),
                ("prompts_range", spread(&prompts)),
                ("words", mean(&words)),
                ("words_range", spread(&words)),
            ],
        ));
    }
    emit(&t);
    println!(
        "(the paper reports these as bars without numeric labels; the shape check is\n\
         tens-of-prompts / thousands-of-words per participant, which the session model\n\
         reproduces deterministically per seed)"
    );
}
