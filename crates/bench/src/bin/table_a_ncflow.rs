//! Table A — participant A's NCFlow findings across the 13 TE
//! instances.
//!
//! Paper: the reproduced NCFlow (PuLP/CBC) computes objectives within
//! 3.51% of the open-source one (Gurobi), with end-to-end latency up to
//! 111× higher, entirely attributable to the LP-solver pairing. Here
//! "open-source" runs on the revised simplex and "reproduced" on the
//! dense tableau; both NCFlow pipelines are otherwise identical.

use netrepro_bench::{emit, table_a_instances, Scale};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::validate::{te_instance, validate_ncflow};

fn main() {
    let scale = Scale::from_args();
    let mut t = Table::new(
        "Table A",
        "NCFlow: revised-simplex (open-source) vs dense-tableau (reproduced)",
    );
    let mut worst_diff: f64 = 0.0;
    let mut worst_ratio: f64 = 0.0;
    for (spec, commodities) in table_a_instances(scale) {
        let inst = te_instance(&spec, commodities, 4);
        match validate_ncflow(&inst) {
            Ok(v) => {
                worst_diff = worst_diff.max(v.obj_diff_pct());
                worst_ratio = worst_ratio.max(v.latency_ratio());
                t.push(Row::new(
                    format!("{} (n={})", spec.name, spec.nodes),
                    vec![
                        ("obj_open", v.obj_open),
                        ("obj_repro", v.obj_repro),
                        ("obj_diff_%", v.obj_diff_pct()),
                        ("lat_open_ms", v.latency_open.as_secs_f64() * 1e3),
                        ("lat_repro_ms", v.latency_repro.as_secs_f64() * 1e3),
                        ("lat_ratio", v.latency_ratio()),
                    ],
                ));
            }
            Err(e) => eprintln!("{}: {e}", spec.name),
        }
    }
    emit(&t);
    println!(
        "worst objective diff: {worst_diff:.3}% (paper: <= 3.51%); \
         worst latency ratio: {worst_ratio:.1}x (paper: up to 111x)"
    );
}
