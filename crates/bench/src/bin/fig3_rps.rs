//! Figure 3 — the rock-paper-scissors motivating example.
//!
//! Two parts: (1) the simulated session that "generates" the program
//! (paper: 4 prompts, 159 words, 93 LoC), and (2) the *real* Rust
//! client/server exchanged over loopback to show the generated protocol
//! actually plays.

use netrepro_bench::emit;
use netrepro_core::metrics::{Row, Table};
use netrepro_core::paper::TargetSystem;
use netrepro_core::student::Participant;
use netrepro_core::ReproductionSession;
use netrepro_rps::{Move, RpsClient, RpsServer};
use std::time::Instant;

fn main() {
    // Part 1: the session metrics.
    let report =
        ReproductionSession::new(Participant::preset(TargetSystem::RockPaperScissors), 2023).run();
    let mut t = Table::new("Figure 3", "RPS generation session vs the paper's numbers");
    t.push(Row::new(
        "prompts",
        vec![("measured", report.total_prompts() as f64), ("paper", 4.0)],
    ));
    t.push(Row::new(
        "words",
        vec![("measured", report.total_words() as f64), ("paper", 159.0)],
    ));
    t.push(Row::new(
        "loc",
        vec![("measured", report.artifact.loc as f64), ("paper", 93.0)],
    ));
    emit(&t);

    // Part 2: play the real protocol over loopback.
    let server = RpsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || {
        for r in server.serve_connections(1).expect("accept") {
            r.expect("serve");
        }
    });

    let mut client = RpsClient::connect(addr).expect("connect");
    let moves = [Move::Paper, Move::Scissors, Move::Rock, Move::Rock, Move::Paper, Move::Scissors];
    let start = Instant::now();
    let mut wins = 0;
    let mut draws = 0;
    for &m in &moves {
        let r = client.play(m).expect("play");
        match r.outcome {
            netrepro_rps::Outcome::Win => wins += 1,
            netrepro_rps::Outcome::Draw => draws += 1,
            netrepro_rps::Outcome::Lose => {}
        }
    }
    let played = client.disconnect().expect("disconnect");
    let elapsed = start.elapsed();
    server_thread.join().expect("server thread");

    println!(
        "loopback session: {played} rounds ({wins} wins, {draws} draws) in {:?} \
         ({:.0} µs/round incl. round-trip)",
        elapsed,
        elapsed.as_micros() as f64 / played as f64
    );
}
