//! Internal scale probe (not an experiment binary): sizes the
//! `lp_scale` ladder so the dense solver stays tractable at 10× while
//! the revised-vs-dense gap clears the bench gate's ≥5× floor.

use netrepro_core::validate::te_instance;
use netrepro_graph::gen::TopologySpec;
use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_lp::LpSolver;
use netrepro_te::mcf::solve_mcf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let commodities: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let paths: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let dense: bool = args.get(4).map(|s| s == "dense").unwrap_or(false);

    let inst = te_instance(&TopologySpec::new("lpscale", nodes, 2023), commodities, paths);
    let t = Instant::now();
    let r = solve_mcf(&inst, &RevisedSimplex::default()).unwrap();
    let rt = t.elapsed();
    println!(
        "nodes={nodes} k={commodities} paths={paths}: revised {rt:?} obj={:.3} iters={}",
        r.total_flow, r.lp_iterations
    );
    if dense {
        let t = Instant::now();
        let d = solve_mcf(&inst, &DenseSimplex::default() as &dyn LpSolver).unwrap();
        let dt = t.elapsed();
        println!(
            "  dense {dt:?} obj={:.3} ratio={:.1}x objdiff={:.2e}",
            d.total_flow,
            dt.as_secs_f64() / rt.as_secs_f64(),
            (d.total_flow - r.total_flow).abs()
        );
    }
}
