//! Figure 1 — open-source-prototype statistics of SIGCOMM and NSDI
//! papers, 2013–2022.
//!
//! Paper's numbers: 32% (SIGCOMM), 29% (NSDI), 31% (combined), rising
//! over the decade.

use netrepro_bench::{emit, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::survey::{build_corpus, SurveyStats, Venue};

fn main() {
    let corpus = build_corpus(SEED);
    let stats = SurveyStats::compute(&corpus);

    let mut t = Table::new(
        "Figure 1",
        "papers with an author-released open-source prototype, per venue-year",
    );
    for year in 2013..=2022u32 {
        let rate = |v: Venue| {
            stats
                .per_year
                .iter()
                .find(|&&(venue, y, _)| venue == v && y == year)
                .map(|&(_, _, r)| 100.0 * r)
                .unwrap_or(0.0)
        };
        t.push(Row::new(
            format!("{year}"),
            vec![
                ("sigcomm_os_%", rate(Venue::Sigcomm)),
                ("nsdi_os_%", rate(Venue::Nsdi)),
            ],
        ));
    }
    t.push(Row::new(
        "TOTAL",
        vec![
            ("sigcomm_os_%", 100.0 * stats.sigcomm_rate),
            ("nsdi_os_%", 100.0 * stats.nsdi_rate),
        ],
    ));
    emit(&t);
    println!(
        "combined open-source rate: {:.1}%  (paper: 32% / 29% / 31%)",
        100.0 * stats.both_rate
    );
}
