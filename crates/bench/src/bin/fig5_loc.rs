//! Figure 5 — lines of code of the open-source vs reproduced
//! prototypes.
//!
//! Paper's shape: reproduced NCFlow is 17% of the open-source LoC,
//! ARROW 19%, while AP and APKeep come out roughly the same size as
//! their originals.

use netrepro_bench::{emit, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::paper::TargetSystem;
use netrepro_core::student::Participant;
use netrepro_core::ReproductionSession;

fn main() {
    let mut t = Table::new("Figure 5", "LoC of open-source vs reproduced prototypes");
    let paper_ratio = [0.17, 0.19, 1.0, 1.0];
    for (i, sys) in TargetSystem::EXPERIMENT.into_iter().enumerate() {
        let r = ReproductionSession::new(Participant::preset(sys), SEED).run();
        t.push(Row::new(
            sys.name(),
            vec![
                ("open_source_loc", r.artifact.open_source_loc as f64),
                ("reproduced_loc", r.artifact.loc as f64),
                ("ratio", r.artifact.loc_ratio()),
                ("paper_ratio", paper_ratio[i]),
            ],
        ));
    }
    emit(&t);
}
