//! Ablation: NCFlow's contraction benefit as a function of cluster
//! count (the design choice `DESIGN.md` §5 calls out). Prints objective
//! retention (vs the flat LP) and speed-up per cluster count.

use netrepro_bench::{emit, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::validate::te_instance;
use netrepro_graph::gen::TopologySpec;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_te::mcf::solve_mcf;
use netrepro_te::ncflow::{solve_ncflow, NcFlowConfig};

fn main() {
    let inst = te_instance(&TopologySpec::new("Uninett", 74, SEED), 80, 4);
    let flat = solve_mcf(&inst, &RevisedSimplex::default()).expect("flat");
    let mut t = Table::new(
        "Ablation clusters",
        "NCFlow objective retention and speed-up vs cluster count (Uninett-74, 80 commodities)",
    );
    t.push(Row::new(
        "flat LP",
        vec![
            ("flow", flat.total_flow),
            ("retention_%", 100.0),
            ("time_ms", flat.solve_time.as_secs_f64() * 1e3),
            ("speedup", 1.0),
        ],
    ));
    for k in [2usize, 4, 8, 12, 16, 24] {
        let cfg = NcFlowConfig { num_clusters: k, paths_per_commodity: 4, parallel_r2: true };
        match solve_ncflow(&inst, &cfg, &RevisedSimplex::default()) {
            Ok(s) => t.push(Row::new(
                format!("k={k}"),
                vec![
                    ("flow", s.total_flow),
                    ("retention_%", 100.0 * s.total_flow / flat.total_flow),
                    ("time_ms", s.solve_time.as_secs_f64() * 1e3),
                    ("speedup", flat.solve_time.as_secs_f64() / s.solve_time.as_secs_f64()),
                ],
            )),
            Err(e) => eprintln!("k={k}: {e}"),
        }
    }
    emit(&t);
    println!(
        "NCFlow's claim: contraction trades a few percent of flow for large speed-ups;\n\
         the sweet spot sits near sqrt(N) clusters."
    );
}
