//! Figure 6 — APKeep's `IdentifyChangesInsert` (Algorithm 1), in its
//! three forms. The HotNets paper juxtaposes the published pseudocode,
//! the authors' Java, and ChatGPT's output; this binary prints the
//! pseudocode next to a live trace of our Rust implementation handling
//! the same kind of insertion, so the correspondence is checkable line
//! by line.

use netrepro_bdd::EngineProfile;
use netrepro_dpv::apkeep::ApKeep;
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::network::{Action, Network, Rule};
use netrepro_dpv::Prefix;
use netrepro_graph::DiGraph;

const PSEUDOCODE: &str = r#"Algorithm 1: IdentifyChangesInsert(r, R)
  Input: r: the newly inserted rule; R: the list of existing rules,
         sorted by decreasing priorities.
  Output: C: the set of changes due to the insertion of rule r.
 1  C <- {}
 2  r.hit <- r.match
 3  foreach r' in R do
 4      if r'.prio > r.prio and r'.hit ^ r.hit != 0 then
 5          r.hit <- r.hit ^ ~r'.hit
 6      if r'.prio < r.prio and r'.hit ^ r.hit != 0 then
 7          if r'.port != r.port then
 8              C <- C v {(r.hit ^ r'.hit, r'.port, r.port)}
 9          r'.hit <- r'.hit ^ ~r.hit
10  Insert r into R
11  return C"#;

fn main() {
    println!("{PSEUDOCODE}\n");
    println!("— live trace of crates/dpv/src/apkeep.rs::ApKeep::insert —\n");

    // Two devices, one link; replay the classic insertion sequence.
    let mut g = DiGraph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let (ab, _) = g.add_bidi(a, b, 1.0, 1.0);
    let net = Network::new(g, HeaderLayout::new(8));
    let mut k = ApKeep::new(&net, EngineProfile::Cached);

    let steps = [
        ("default-route /0 -> port ab", Rule { prefix: Prefix { addr: 0, len: 0 }, priority: 0, action: Action::Forward(ab) }),
        ("drop 1000_0000/1 (higher prio, different port)", Rule { prefix: Prefix { addr: 0b1000_0000, len: 1 }, priority: 1, action: Action::Drop }),
        ("re-forward 1100_0000/2 (punches through the drop)", Rule { prefix: Prefix { addr: 0b1100_0000, len: 2 }, priority: 2, action: Action::Forward(ab) }),
        ("shadowed 1110_0000/3 -> same port (no behaviour change)", Rule { prefix: Prefix { addr: 0b1110_0000, len: 3 }, priority: 1, action: Action::Forward(ab) }),
    ];
    for (label, rule) in steps {
        let changes = k.insert(a, rule);
        let fwd = k.manager.sat_count(k.ppm_pred(a, Action::Forward(ab)));
        let drop = k.manager.sat_count(k.ppm_pred(a, Action::Drop));
        println!(
            "insert {label:<55} -> {changes} change(s); PPM: fwd={fwd:>5} drop={drop:>5}; atoms={}",
            k.num_atomic_predicates()
        );
    }
    assert_eq!(k.num_atomic_predicates(), k.recount_atomic_predicates());
    println!(
        "\ninvariant: real-time atom count equals the batch recount ({} atoms) ✓",
        k.num_atomic_predicates()
    );
}
