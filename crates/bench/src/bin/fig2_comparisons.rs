//! Figure 2 — how many systems each paper compares against and how many
//! the authors had to manually re-implement.
//!
//! Paper's numbers: 59.68% of papers compare with ≥ 2 systems; authors
//! manually reproduce 2.29 systems on average (conditional on ≥ 1);
//! 49.20% / 26.65% manually reproduce at least one / two.

use netrepro_bench::{emit, SEED};
use netrepro_core::metrics::{Row, Table};
use netrepro_core::survey::{build_corpus, SurveyStats};

fn main() {
    let corpus = build_corpus(SEED);
    let stats = SurveyStats::compute(&corpus);

    // Histogram of compared / manually-reproduced counts.
    let mut t = Table::new(
        "Figure 2",
        "distribution of compared and manually-reproduced systems per paper (%)",
    );
    for k in 0..=6u32 {
        let pc = corpus.iter().filter(|p| p.compared == k).count() as f64;
        let pm = corpus.iter().filter(|p| p.manually_reproduced == k).count() as f64;
        let n = corpus.len() as f64;
        t.push(Row::new(
            format!("{k} systems"),
            vec![("compared_%", 100.0 * pc / n), ("manual_%", 100.0 * pm / n)],
        ));
    }
    let tail_c = corpus.iter().filter(|p| p.compared > 6).count() as f64;
    let tail_m = corpus.iter().filter(|p| p.manually_reproduced > 6).count() as f64;
    let n = corpus.len() as f64;
    t.push(Row::new(
        ">6 systems",
        vec![("compared_%", 100.0 * tail_c / n), ("manual_%", 100.0 * tail_m / n)],
    ));
    emit(&t);

    let mut agg = Table::new("Figure 2 aggregates", "headline statistics vs the paper");
    agg.push(Row::new("compare >=2 (%)", vec![("measured", 100.0 * stats.pct_ge2_compared), ("paper", 59.68)]));
    agg.push(Row::new("manual mean (cond. >=1)", vec![("measured", stats.mean_manual_conditional), ("paper", 2.29)]));
    agg.push(Row::new("manual >=1 (%)", vec![("measured", 100.0 * stats.pct_ge1_manual), ("paper", 49.20)]));
    agg.push(Row::new("manual >=2 (%)", vec![("measured", 100.0 * stats.pct_ge2_manual), ("paper", 26.65)]));
    emit(&agg);
}
