//! Seeded FIB-dataset generation.
//!
//! The AP and APKeep evaluations use router configurations from real
//! networks (Internet2, Stanford, Purdue, …). Those datasets cannot be
//! redistributed, so this module synthesises FIBs of the same shape:
//! every device owns address prefixes, every other device installs
//! longest-prefix routes toward them along shortest paths, and an
//! optional fault rate injects more-specific rules that create the
//! loops and blackholes the verifiers are meant to find.

use crate::header::{HeaderLayout, Prefix};
use crate::network::{Action, Network, Rule};
use netrepro_graph::paths::dijkstra_path;
use netrepro_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct DatasetOpts {
    /// Prefixes owned per device (>= 1).
    pub prefixes_per_device: usize,
    /// Probability that a device gains a faulty more-specific rule.
    pub fault_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetOpts {
    fn default() -> Self {
        DatasetOpts { prefixes_per_device: 1, fault_rate: 0.0, seed: 0 }
    }
}

/// A generated dataset: the populated network plus each device's owned
/// prefixes (`owned[d]` are the prefixes delivered at device `d`).
#[derive(Debug, Clone)]
pub struct FibDataset {
    /// The populated data plane.
    pub network: Network,
    /// Owned prefixes per device.
    pub owned: Vec<Vec<Prefix>>,
}

/// Generate a dataset over `graph`. The header width must satisfy
/// `2^width >= num_nodes * prefixes_per_device * 2`.
pub fn generate(graph: DiGraph, layout: HeaderLayout, opts: &DatasetOpts) -> FibDataset {
    let n = graph.num_nodes();
    let total_prefixes = n * opts.prefixes_per_device;
    let id_bits = (usize::BITS - (total_prefixes - 1).leading_zeros()).max(1);
    assert!(
        id_bits <= layout.width,
        "header width {} too narrow for {} prefixes",
        layout.width,
        total_prefixes
    );
    let plen = id_bits as u8;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Owned prefixes: dense ids left-aligned into the header.
    let mut owned: Vec<Vec<Prefix>> = vec![Vec::new(); n];
    let mut next_id: u32 = 0;
    for prefixes in owned.iter_mut() {
        for _ in 0..opts.prefixes_per_device {
            let addr = next_id << (layout.width - plen as u32);
            prefixes.push(Prefix { addr, len: plen });
            next_id += 1;
        }
    }

    let mut net = Network::new(graph, layout);

    // Routes: for each destination device d and owned prefix p, every
    // other device forwards along its shortest path toward d.
    let nn = net.graph.num_nodes();
    let no_nodes = vec![false; nn];
    let no_edges = vec![false; net.graph.num_edges()];
    for (d, prefixes) in owned.iter().enumerate() {
        let dst = NodeId(d as u32);
        for &p in prefixes {
            net.devices[d].insert(Rule { prefix: p, priority: p.len as u32, action: Action::Deliver });
            for v in 0..n {
                if v == d {
                    continue;
                }
                let src = NodeId(v as u32);
                if let Some(path) = dijkstra_path(&net.graph, src, dst, &no_nodes, &no_edges) {
                    let first = path.edges[0];
                    net.devices[v].insert(Rule {
                        prefix: p,
                        priority: p.len as u32,
                        action: Action::Forward(first),
                    });
                }
            }
        }
    }

    // Fault injection: more-specific rules that deflect part of an owned
    // prefix to a random neighbour (possible loop) or drop it (blackhole).
    for v in 0..n {
        if rng.random::<f64>() >= opts.fault_rate {
            continue;
        }
        let victim_dev = rng.random_range(0..n);
        if victim_dev == v || owned[victim_dev].is_empty() {
            continue;
        }
        let base = owned[victim_dev][0];
        if (base.len as u32) + 1 > layout.width {
            continue;
        }
        // The lower half of the victim prefix.
        let spec = Prefix { addr: base.addr | (1 << (layout.width - base.len as u32 - 1)), len: base.len + 1 };
        let node = NodeId(v as u32);
        let out = net.graph.out_edges(node);
        let action = if out.is_empty() || rng.random::<f64>() < 0.5 {
            Action::Drop
        } else {
            Action::Forward(out[rng.random_range(0..out.len())])
        };
        net.devices[v].insert(Rule { prefix: spec, priority: spec.len as u32, action });
    }

    FibDataset { network: net, owned }
}

impl FibDataset {
    /// Deterministically corrupt up to `count` FIB rules (the
    /// fault-injection harness's "FIB corruption" site). Each victim
    /// rule's action is rewritten: forwards become drops or are
    /// redirected out a random port (misdelivery / potential loop),
    /// delivers become drops (blackhole). Returns how many rules were
    /// actually rewritten. Same `seed` ⇒ identical corruption.
    pub fn corrupt_fib(&mut self, count: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<(usize, usize)> = Vec::new();
        for (d, dev) in self.network.devices.iter().enumerate() {
            for r in 0..dev.rules.len() {
                sites.push((d, r));
            }
        }
        let mut corrupted = 0;
        for _ in 0..count.min(sites.len()) {
            let pick = rng.random_range(0..sites.len());
            let (d, r) = sites.swap_remove(pick);
            let node = NodeId(d as u32);
            let out = self.network.graph.out_edges(node);
            let rule = &mut self.network.devices[d].rules[r];
            rule.action = match rule.action {
                Action::Forward(_) if !out.is_empty() && rng.random::<f64>() < 0.5 => {
                    Action::Forward(out[rng.random_range(0..out.len())])
                }
                _ => Action::Drop,
            };
            corrupted += 1;
        }
        corrupted
    }

    /// Deterministically sever up to `count` links: every forwarding
    /// rule that uses a severed edge is rewritten to drop, modelling a
    /// link whose far end went dark without the FIB converging. Returns
    /// how many rules were rewritten. Same `seed` ⇒ identical corruption.
    pub fn corrupt_links(&mut self, count: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<netrepro_graph::EdgeId> = self.network.graph.edges().collect();
        let mut severed = Vec::new();
        for _ in 0..count.min(edges.len()) {
            let pick = rng.random_range(0..edges.len());
            severed.push(edges.swap_remove(pick));
        }
        let mut rewritten = 0;
        for dev in &mut self.network.devices {
            for rule in &mut dev.rules {
                if let Action::Forward(e) = rule.action {
                    if severed.contains(&e) {
                        rule.action = Action::Drop;
                        rewritten += 1;
                    }
                }
            }
        }
        rewritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_graph::gen::{ring, waxman, TopologySpec};

    fn small() -> FibDataset {
        generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default())
    }

    #[test]
    fn every_device_owns_prefixes() {
        let ds = small();
        assert_eq!(ds.owned.len(), 5);
        for o in &ds.owned {
            assert_eq!(o.len(), 1);
        }
    }

    #[test]
    fn owned_prefixes_are_disjoint() {
        let ds = small();
        let all: Vec<Prefix> = ds.owned.iter().flatten().copied().collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(!a.covers(b, 12) && !b.covers(a, 12), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn each_device_routes_to_every_prefix() {
        let ds = small();
        // 5 devices × 5 prefixes = 25 rules (deliver or forward each).
        assert_eq!(ds.network.num_rules(), 25);
    }

    #[test]
    fn owner_delivers_its_prefix() {
        let ds = small();
        for d in 0..5 {
            let p = ds.owned[d][0];
            let dev = &ds.network.devices[d];
            let action = dev.action_for(p.addr, 12);
            assert_eq!(action, Action::Deliver);
        }
    }

    #[test]
    fn faults_add_more_specific_rules() {
        let g = waxman(&TopologySpec::new("t", 12, 3));
        let clean = generate(g.clone(), HeaderLayout::new(16), &DatasetOpts::default());
        let faulty = generate(
            g,
            HeaderLayout::new(16),
            &DatasetOpts { fault_rate: 1.0, seed: 3, ..Default::default() },
        );
        assert!(faulty.network.num_rules() > clean.network.num_rules());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            generate(
                ring(6, 1.0),
                HeaderLayout::new(12),
                &DatasetOpts { fault_rate: 0.5, seed: 11, ..Default::default() },
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.network.num_rules(), b.network.num_rules());
    }

    #[test]
    fn corrupt_fib_is_deterministic_and_bounded() {
        let mk = || small();
        let mut a = mk();
        let mut b = mk();
        assert_eq!(a.corrupt_fib(3, 7), 3);
        assert_eq!(b.corrupt_fib(3, 7), 3);
        for (da, db) in a.network.devices.iter().zip(&b.network.devices) {
            assert_eq!(da.rules, db.rules, "same seed must corrupt identically");
        }
        // Rule count is untouched — corruption rewrites, never inserts.
        assert_eq!(a.network.num_rules(), mk().network.num_rules());
        // Asking for more corruptions than rules saturates.
        let mut c = mk();
        let total = c.network.num_rules();
        assert_eq!(c.corrupt_fib(10_000, 1), total);
    }

    #[test]
    fn corrupt_links_blackholes_forwarding_rules() {
        let mut ds = small();
        let before_drops: usize = ds
            .network
            .devices
            .iter()
            .flat_map(|d| &d.rules)
            .filter(|r| r.action == Action::Drop)
            .count();
        let rewritten = ds.corrupt_links(2, 42);
        assert!(rewritten > 0, "severing ring links must strand some routes");
        let after_drops: usize = ds
            .network
            .devices
            .iter()
            .flat_map(|d| &d.rules)
            .filter(|r| r.action == Action::Drop)
            .count();
        assert_eq!(after_drops, before_drops + rewritten);
    }

    #[test]
    fn multiple_prefixes_per_device() {
        let ds = generate(
            ring(4, 1.0),
            HeaderLayout::new(12),
            &DatasetOpts { prefixes_per_device: 3, ..Default::default() },
        );
        for o in &ds.owned {
            assert_eq!(o.len(), 3);
        }
        assert_eq!(ds.network.num_rules(), 4 * 12);
    }
}
