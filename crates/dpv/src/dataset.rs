//! Seeded FIB-dataset generation.
//!
//! The AP and APKeep evaluations use router configurations from real
//! networks (Internet2, Stanford, Purdue, …). Those datasets cannot be
//! redistributed, so this module synthesises FIBs of the same shape:
//! every device owns address prefixes, every other device installs
//! longest-prefix routes toward them along shortest paths, and an
//! optional fault rate injects more-specific rules that create the
//! loops and blackholes the verifiers are meant to find.

use crate::header::{HeaderLayout, Prefix};
use crate::network::{Action, Network, Rule};
use netrepro_graph::paths::dijkstra_path;
use netrepro_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`generate`].
#[derive(Debug, Clone)]
pub struct DatasetOpts {
    /// Prefixes owned per device (>= 1).
    pub prefixes_per_device: usize,
    /// Probability that a device gains a faulty more-specific rule.
    pub fault_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetOpts {
    fn default() -> Self {
        DatasetOpts { prefixes_per_device: 1, fault_rate: 0.0, seed: 0 }
    }
}

/// A generated dataset: the populated network plus each device's owned
/// prefixes (`owned[d]` are the prefixes delivered at device `d`).
#[derive(Debug, Clone)]
pub struct FibDataset {
    /// The populated data plane.
    pub network: Network,
    /// Owned prefixes per device.
    pub owned: Vec<Vec<Prefix>>,
}

/// Generate a dataset over `graph`. The header width must satisfy
/// `2^width >= num_nodes * prefixes_per_device * 2`.
pub fn generate(graph: DiGraph, layout: HeaderLayout, opts: &DatasetOpts) -> FibDataset {
    let n = graph.num_nodes();
    let total_prefixes = n * opts.prefixes_per_device;
    let id_bits = (usize::BITS - (total_prefixes - 1).leading_zeros()).max(1);
    assert!(
        id_bits <= layout.width,
        "header width {} too narrow for {} prefixes",
        layout.width,
        total_prefixes
    );
    let plen = id_bits as u8;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Owned prefixes: dense ids left-aligned into the header.
    let mut owned: Vec<Vec<Prefix>> = vec![Vec::new(); n];
    let mut next_id: u32 = 0;
    for d in 0..n {
        for _ in 0..opts.prefixes_per_device {
            let addr = next_id << (layout.width - plen as u32);
            owned[d].push(Prefix { addr, len: plen });
            next_id += 1;
        }
    }

    let mut net = Network::new(graph, layout);

    // Routes: for each destination device d and owned prefix p, every
    // other device forwards along its shortest path toward d.
    let nn = net.graph.num_nodes();
    let no_nodes = vec![false; nn];
    let no_edges = vec![false; net.graph.num_edges()];
    for d in 0..n {
        let dst = NodeId(d as u32);
        for &p in &owned[d] {
            net.devices[d].insert(Rule { prefix: p, priority: p.len as u32, action: Action::Deliver });
            for v in 0..n {
                if v == d {
                    continue;
                }
                let src = NodeId(v as u32);
                if let Some(path) = dijkstra_path(&net.graph, src, dst, &no_nodes, &no_edges) {
                    let first = path.edges[0];
                    net.devices[v].insert(Rule {
                        prefix: p,
                        priority: p.len as u32,
                        action: Action::Forward(first),
                    });
                }
            }
        }
    }

    // Fault injection: more-specific rules that deflect part of an owned
    // prefix to a random neighbour (possible loop) or drop it (blackhole).
    for v in 0..n {
        if rng.random::<f64>() >= opts.fault_rate {
            continue;
        }
        let victim_dev = rng.random_range(0..n);
        if victim_dev == v || owned[victim_dev].is_empty() {
            continue;
        }
        let base = owned[victim_dev][0];
        if (base.len as u32) + 1 > layout.width {
            continue;
        }
        // The lower half of the victim prefix.
        let spec = Prefix { addr: base.addr | (1 << (layout.width - base.len as u32 - 1)), len: base.len + 1 };
        let node = NodeId(v as u32);
        let out = net.graph.out_edges(node);
        let action = if out.is_empty() || rng.random::<f64>() < 0.5 {
            Action::Drop
        } else {
            Action::Forward(out[rng.random_range(0..out.len())])
        };
        net.devices[v].insert(Rule { prefix: spec, priority: spec.len as u32, action });
    }

    FibDataset { network: net, owned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_graph::gen::{ring, waxman, TopologySpec};

    fn small() -> FibDataset {
        generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default())
    }

    #[test]
    fn every_device_owns_prefixes() {
        let ds = small();
        assert_eq!(ds.owned.len(), 5);
        for o in &ds.owned {
            assert_eq!(o.len(), 1);
        }
    }

    #[test]
    fn owned_prefixes_are_disjoint() {
        let ds = small();
        let all: Vec<Prefix> = ds.owned.iter().flatten().copied().collect();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert!(!a.covers(b, 12) && !b.covers(a, 12), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn each_device_routes_to_every_prefix() {
        let ds = small();
        // 5 devices × 5 prefixes = 25 rules (deliver or forward each).
        assert_eq!(ds.network.num_rules(), 25);
    }

    #[test]
    fn owner_delivers_its_prefix() {
        let ds = small();
        for d in 0..5 {
            let p = ds.owned[d][0];
            let dev = &ds.network.devices[d];
            let action = dev.action_for(p.addr, 12);
            assert_eq!(action, Action::Deliver);
        }
    }

    #[test]
    fn faults_add_more_specific_rules() {
        let g = waxman(&TopologySpec::new("t", 12, 3));
        let clean = generate(g.clone(), HeaderLayout::new(16), &DatasetOpts::default());
        let faulty = generate(
            g,
            HeaderLayout::new(16),
            &DatasetOpts { fault_rate: 1.0, seed: 3, ..Default::default() },
        );
        assert!(faulty.network.num_rules() > clean.network.num_rules());
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            generate(
                ring(6, 1.0),
                HeaderLayout::new(12),
                &DatasetOpts { fault_rate: 0.5, seed: 11, ..Default::default() },
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.network.num_rules(), b.network.num_rules());
    }

    #[test]
    fn multiple_prefixes_per_device() {
        let ds = generate(
            ring(4, 1.0),
            HeaderLayout::new(12),
            &DatasetOpts { prefixes_per_device: 3, ..Default::default() },
        );
        for o in &ds.owned {
            assert_eq!(o.len(), 3);
        }
        assert_eq!(ds.network.num_rules(), 4 * 12);
    }
}
