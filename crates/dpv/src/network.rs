//! The data-plane model: devices with prioritised forwarding rules over
//! a [`netrepro_graph::DiGraph`] topology.
//!
//! Each graph node is a device; each directed edge is a port of its
//! source device, linked to the destination device. Two synthetic ports
//! exist per device: *deliver* (packets destined to locally owned
//! prefixes) and *drop* (the implicit default).

use crate::acl::AclTable;
use crate::header::{HeaderLayout, Prefix};
use netrepro_bdd::{BddManager, Ref, FALSE};
use netrepro_graph::{DiGraph, EdgeId, NodeId};
use std::collections::HashMap;

/// Forwarding action of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out of the given topology edge.
    Forward(EdgeId),
    /// Deliver locally (the destination is attached here).
    Deliver,
    /// Drop explicitly.
    Drop,
}

/// A prioritised longest-prefix rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rule {
    /// Match on the destination field.
    pub prefix: Prefix,
    /// Higher wins; by convention the prefix length.
    pub priority: u32,
    /// Action on match.
    pub action: Action,
}

/// A device: its rules, sorted by decreasing priority (insertion order
/// breaks ties, mirroring real FIB behaviour).
#[derive(Debug, Clone, Default)]
pub struct Device {
    /// Rules in decreasing-priority order.
    pub rules: Vec<Rule>,
}

impl Device {
    /// Insert a rule, keeping the decreasing-priority order (stable:
    /// equal priorities keep insertion order, later rules lose).
    pub fn insert(&mut self, rule: Rule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Remove the first rule equal to `rule`; returns whether found.
    pub fn remove(&mut self, rule: &Rule) -> bool {
        if let Some(pos) = self.rules.iter().position(|r| r == rule) {
            self.rules.remove(pos);
            true
        } else {
            false
        }
    }

    /// The action taken for a concrete address (linear scan oracle used
    /// by tests to validate the BDD pipeline).
    pub fn action_for(&self, addr: u32, width: u32) -> Action {
        for r in &self.rules {
            if r.prefix.contains(addr, width) {
                return r.action;
            }
        }
        Action::Drop
    }
}

/// A full data plane: topology + per-device FIBs + optional egress
/// ACLs + header layout.
#[derive(Debug, Clone)]
pub struct Network {
    /// The topology (nodes are devices, edges are ports).
    pub graph: DiGraph,
    /// Per-device forwarding tables, indexed by node.
    pub devices: Vec<Device>,
    /// Egress ACLs per port (absent = permit everything).
    pub egress_acls: HashMap<EdgeId, AclTable>,
    /// Header layout shared by every FIB.
    pub layout: HeaderLayout,
}

/// The compiled forwarding behaviour of one device: a predicate per
/// action, mutually disjoint and jointly covering the header space.
#[derive(Debug, Clone)]
pub struct PortPredicates {
    /// `(action, predicate)` pairs; `Drop` holds the residue.
    pub preds: Vec<(Action, Ref)>,
}

impl Network {
    /// An empty data plane over `graph`.
    pub fn new(graph: DiGraph, layout: HeaderLayout) -> Self {
        let devices = (0..graph.num_nodes()).map(|_| Device::default()).collect();
        Network { graph, devices, egress_acls: HashMap::new(), layout }
    }

    /// Attach (replace) the egress ACL of a port.
    pub fn set_egress_acl(&mut self, port: EdgeId, acl: AclTable) {
        self.egress_acls.insert(port, acl);
    }

    /// The device at `n`.
    pub fn device(&self, n: NodeId) -> &Device {
        &self.devices[n.index()]
    }

    /// Mutable device access.
    pub fn device_mut(&mut self, n: NodeId) -> &mut Device {
        &mut self.devices[n.index()]
    }

    /// Total rule count across all devices.
    pub fn num_rules(&self) -> usize {
        self.devices.iter().map(|d| d.rules.len()).sum()
    }

    /// Compile the device at `n` into per-action *hit* predicates:
    /// priority-ordered first-match semantics, i.e. each rule's hit is
    /// its match minus all higher-priority matches. The `Drop` entry
    /// accumulates both explicit drops and the unmatched residue.
    pub fn port_predicates(&self, m: &mut BddManager, n: NodeId) -> PortPredicates {
        let dev = &self.devices[n.index()];
        let mut preds: Vec<(Action, Ref)> = Vec::new();
        // `covered` = union of all higher-priority matches so far.
        let mut covered = FALSE;
        m.ref_inc(covered);
        for rule in &dev.rules {
            let matched = self.layout.prefix_pred(m, rule.prefix);
            m.ref_inc(matched);
            let hit = m.diff(matched, covered);
            m.ref_inc(hit);
            let new_covered = m.or(covered, matched);
            m.ref_inc(new_covered);
            m.ref_dec(covered);
            m.ref_dec(matched);
            covered = new_covered;
            if hit != FALSE {
                match preds.iter_mut().find(|(a, _)| *a == rule.action) {
                    Some((_, p)) => {
                        let np = m.or(*p, hit);
                        m.ref_inc(np);
                        m.ref_dec(*p);
                        *p = np;
                        m.ref_dec(hit);
                    }
                    None => preds.push((rule.action, hit)),
                }
            } else {
                m.ref_dec(hit);
            }
        }
        // Egress ACLs: the denied slice of each Forward predicate moves
        // to Drop (a packet matching the FIB but failing the port ACL is
        // discarded at the port).
        let mut moved_to_drop = FALSE;
        m.ref_inc(moved_to_drop);
        for (action, p) in preds.iter_mut() {
            let Action::Forward(e) = *action else { continue };
            let Some(acl) = self.egress_acls.get(&e) else { continue };
            let permit = acl.permit_pred(&self.layout, m); // holds one ref
            let allowed = m.and(*p, permit);
            m.ref_inc(allowed);
            let denied = m.diff(*p, permit);
            m.ref_inc(denied);
            if !permit.is_terminal() {
                m.ref_dec(permit);
            }
            if !p.is_terminal() {
                m.ref_dec(*p);
            }
            *p = allowed;
            let nm = m.or(moved_to_drop, denied);
            m.ref_inc(nm);
            m.ref_dec(moved_to_drop);
            m.ref_dec(denied);
            moved_to_drop = nm;
        }
        preds.retain(|&(_, p)| p != FALSE);

        // Residue goes to Drop.
        let residue0 = m.not(covered);
        m.ref_inc(residue0);
        let residue = m.or(residue0, moved_to_drop);
        m.ref_inc(residue);
        m.ref_dec(residue0);
        m.ref_dec(moved_to_drop);
        m.ref_dec(covered);
        if residue != FALSE {
            match preds.iter_mut().find(|(a, _)| *a == Action::Drop) {
                Some((_, p)) => {
                    let np = m.or(*p, residue);
                    m.ref_inc(np);
                    m.ref_dec(*p);
                    *p = np;
                    m.ref_dec(residue);
                }
                None => preds.push((Action::Drop, residue)),
            }
        } else {
            m.ref_dec(residue);
        }
        PortPredicates { preds }
    }
}

impl PortPredicates {
    /// Release this compilation's BDD references.
    pub fn release(self, m: &mut BddManager) {
        for (_, p) in self.preds {
            m.ref_dec(p);
        }
    }

    /// Predicate for a specific action (FALSE if absent).
    pub fn for_action(&self, a: Action) -> Ref {
        self.preds.iter().find(|(act, _)| *act == a).map(|&(_, p)| p).unwrap_or(FALSE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_bdd::EngineProfile;

    fn two_node_net(width: u32) -> (Network, NodeId, NodeId, EdgeId) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 1.0, 1.0);
        (Network::new(g, HeaderLayout::new(width)), a, b, e)
    }

    #[test]
    fn insert_keeps_priority_order() {
        let (mut net, a, _, e) = two_node_net(8);
        let dev = net.device_mut(a);
        dev.insert(Rule { prefix: Prefix { addr: 0, len: 1 }, priority: 1, action: Action::Forward(e) });
        dev.insert(Rule { prefix: Prefix { addr: 0, len: 3 }, priority: 3, action: Action::Drop });
        dev.insert(Rule { prefix: Prefix { addr: 0, len: 2 }, priority: 2, action: Action::Deliver });
        let prios: Vec<u32> = dev.rules.iter().map(|r| r.priority).collect();
        assert_eq!(prios, vec![3, 2, 1]);
    }

    #[test]
    fn equal_priority_keeps_insertion_order() {
        let (mut net, a, _, e) = two_node_net(8);
        let dev = net.device_mut(a);
        let r1 = Rule { prefix: Prefix { addr: 0b00000000, len: 2 }, priority: 2, action: Action::Forward(e) };
        let r2 = Rule { prefix: Prefix { addr: 0b0100_0000, len: 2 }, priority: 2, action: Action::Drop };
        dev.insert(r1);
        dev.insert(r2);
        assert_eq!(dev.rules[0], r1);
        assert_eq!(dev.rules[1], r2);
    }

    #[test]
    fn action_for_respects_priority() {
        let (mut net, a, _, e) = two_node_net(8);
        let dev = net.device_mut(a);
        dev.insert(Rule { prefix: Prefix { addr: 0, len: 0 }, priority: 0, action: Action::Forward(e) });
        dev.insert(Rule { prefix: Prefix { addr: 0b10000000, len: 1 }, priority: 1, action: Action::Drop });
        assert_eq!(dev.action_for(0b1100_0000, 8), Action::Drop);
        assert_eq!(dev.action_for(0b0100_0000, 8), Action::Forward(e));
    }

    #[test]
    fn port_predicates_partition_header_space() {
        let (mut net, a, _, e) = two_node_net(8);
        net.device_mut(a).insert(Rule {
            prefix: Prefix { addr: 0b10000000, len: 1 },
            priority: 1,
            action: Action::Forward(e),
        });
        let mut m = net.layout.manager(EngineProfile::Cached);
        let pp = net.port_predicates(&mut m, a);
        // Forward gets half the space, Drop the other half.
        let fwd = pp.for_action(Action::Forward(e));
        let drop = pp.for_action(Action::Drop);
        assert_eq!(m.sat_count(fwd), 128.0);
        assert_eq!(m.sat_count(drop), 128.0);
        assert_eq!(m.and(fwd, drop), FALSE);
        let all = m.or(fwd, drop);
        assert_eq!(m.sat_count(all), 256.0);
    }

    #[test]
    fn longest_prefix_shadows_shorter() {
        let (mut net, a, _, e) = two_node_net(8);
        let dev = net.device_mut(a);
        dev.insert(Rule { prefix: Prefix { addr: 0, len: 0 }, priority: 0, action: Action::Forward(e) });
        dev.insert(Rule {
            prefix: Prefix { addr: 0b10100000, len: 4 },
            priority: 4,
            action: Action::Drop,
        });
        let mut m = net.layout.manager(EngineProfile::Cached);
        let pp = net.port_predicates(&mut m, a);
        let fwd = pp.for_action(Action::Forward(e));
        // 256 - 16 shadowed by the /4 drop.
        assert_eq!(m.sat_count(fwd), 240.0);
        assert_eq!(m.sat_count(pp.for_action(Action::Drop)), 16.0);
    }

    #[test]
    fn pp_agrees_with_scan_oracle() {
        let (mut net, a, _, e) = two_node_net(6);
        let dev = net.device_mut(a);
        dev.insert(Rule { prefix: Prefix { addr: 0b100000, len: 1 }, priority: 1, action: Action::Forward(e) });
        dev.insert(Rule { prefix: Prefix { addr: 0b101000, len: 3 }, priority: 3, action: Action::Deliver });
        dev.insert(Rule { prefix: Prefix { addr: 0b000000, len: 2 }, priority: 2, action: Action::Drop });
        let mut m = net.layout.manager(EngineProfile::Cached);
        let pp = net.port_predicates(&mut m, a);
        for addr in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| (addr >> (5 - i)) & 1 == 1).collect();
            let oracle = net.device(a).action_for(addr, 6);
            let via_bdd = pp
                .preds
                .iter()
                .find(|&&(_, p)| m.eval(p, &bits) == Ok(true))
                .map(|&(act, _)| act)
                .unwrap_or(Action::Drop);
            assert_eq!(via_bdd, oracle, "addr {addr}");
        }
    }

    #[test]
    fn remove_rule() {
        let (mut net, a, _, e) = two_node_net(8);
        let r = Rule { prefix: Prefix { addr: 0, len: 1 }, priority: 1, action: Action::Forward(e) };
        net.device_mut(a).insert(r);
        assert!(net.device_mut(a).remove(&r));
        assert!(!net.device_mut(a).remove(&r));
        assert_eq!(net.num_rules(), 0);
    }
}
