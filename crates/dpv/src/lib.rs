//! `netrepro-dpv` — data-plane verification: the Atomic Predicates
//! verifier (Yang & Lam, ToN 2016) and APKeep (Zhang et al., NSDI
//! 2020), the two systems reproduced by participants D and C of the
//! HotNets'23 paper.
//!
//! The crate models a network data plane as per-device longest-prefix
//! forwarding tables, encodes header spaces as BDDs
//! ([`netrepro_bdd`]), and provides:
//!
//! * [`ap`] — atomic-predicate computation: the coarsest partition of
//!   header space under which every port predicate is a union of atoms;
//! * [`reach`] — reachability verification two ways: the **selective
//!   BFS traversal** the AP authors used in their prototype, and the
//!   **path-enumeration** strategy participant D reconstructed from the
//!   paper (the source of the up-to-10⁴× latency gap in §3.2);
//! * [`apkeep`] — APKeep's incremental model: per-rule insertion and
//!   deletion identify *changes* (Algorithm 1 of the APKeep paper, the
//!   very pseudocode reproduced in the HotNets paper's Figure 6) and
//!   update the port–predicate map;
//! * [`dataset`] — seeded FIB generators over [`netrepro_graph`]
//!   topologies, standing in for the papers' router configuration
//!   datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod ap;
pub mod apkeep;
pub mod atoms;
pub mod dataset;
pub mod fabric;
pub mod header;
pub mod network;
pub mod queries;
pub mod reach;
pub mod scale;
pub mod sim;

pub use header::{HeaderLayout, Prefix};
pub use network::{Action, Device, Network, Rule};
