//! Header-space encoding: destination-prefix matching over a fixed-width
//! header, compiled to BDDs.
//!
//! Both AP and APKeep verify forwarding (destination-IP) behaviour, so
//! the header is a single `width`-bit destination address field. The
//! layout is configurable because the benchmark datasets use narrower
//! addresses than IPv4 to keep test instances readable.

use netrepro_bdd::{BddManager, Ref};

/// An address prefix `addr/len` over a [`HeaderLayout`]'s width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// Address bits, left-aligned within the layout width.
    pub addr: u32,
    /// Prefix length in bits.
    pub len: u8,
}

impl Prefix {
    /// The all-matching prefix.
    pub const ANY: Prefix = Prefix { addr: 0, len: 0 };

    /// Does this prefix contain address `a` (over `width` bits)?
    pub fn contains(&self, a: u32, width: u32) -> bool {
        if self.len == 0 {
            return true;
        }
        let shift = width - self.len as u32;
        (a >> shift) == (self.addr >> shift)
    }

    /// Is `self` a (non-strict) superset of `other`?
    pub fn covers(&self, other: &Prefix, width: u32) -> bool {
        self.len <= other.len && other.contains_prefix_addr(self, width)
    }

    fn contains_prefix_addr(&self, sup: &Prefix, width: u32) -> bool {
        if sup.len == 0 {
            return true;
        }
        let shift = width - sup.len as u32;
        (self.addr >> shift) == (sup.addr >> shift)
    }
}

/// The header layout. The destination field (`width` bits at offset 0)
/// drives forwarding; optional source-address and destination-port
/// fields exist for ACL matching (zero-width when unused, so the
/// forwarding-only layouts stay exactly as small as before).
#[derive(Debug, Clone, Copy)]
pub struct HeaderLayout {
    /// Destination-address field width in bits (≤ 32), at offset 0.
    pub width: u32,
    /// Source-address field width (0 = absent), after the destination.
    pub src_width: u32,
    /// Destination-port field width (0 = absent), after the source.
    pub port_width: u32,
}

impl HeaderLayout {
    /// A forwarding-only layout with the given destination width.
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width));
        HeaderLayout { width, src_width: 0, port_width: 0 }
    }

    /// A layout with ACL fields: destination + source addresses and a
    /// destination port.
    pub fn with_acl_fields(width: u32, src_width: u32, port_width: u32) -> Self {
        assert!((1..=32).contains(&width) && src_width <= 32 && port_width <= 16);
        HeaderLayout { width, src_width, port_width }
    }

    /// The IPv4-sized forwarding-only layout.
    pub fn ipv4() -> Self {
        HeaderLayout::new(32)
    }

    /// Total header bits.
    pub fn total_bits(&self) -> u32 {
        self.width + self.src_width + self.port_width
    }

    /// Bit offset of the source field.
    pub fn src_base(&self) -> u32 {
        self.width
    }

    /// Bit offset of the destination-port field.
    pub fn port_base(&self) -> u32 {
        self.width + self.src_width
    }

    /// A fresh manager sized for this layout.
    pub fn manager(&self, profile: netrepro_bdd::EngineProfile) -> BddManager {
        BddManager::new(self.total_bits(), profile)
    }

    /// BDD predicate for a destination `prefix`.
    pub fn prefix_pred(&self, m: &mut BddManager, prefix: Prefix) -> Ref {
        assert!(prefix.len as u32 <= self.width);
        m.field_prefix(0, self.width, prefix.addr as u64, prefix.len as u32)
    }

    /// BDD predicate for a source-address prefix. Panics when the
    /// layout has no source field.
    pub fn src_prefix_pred(&self, m: &mut BddManager, prefix: Prefix) -> Ref {
        assert!(self.src_width > 0, "layout has no source field");
        assert!(prefix.len as u32 <= self.src_width);
        m.field_prefix(self.src_base(), self.src_width, prefix.addr as u64, prefix.len as u32)
    }

    /// BDD predicate for an inclusive destination-port range. Panics
    /// when the layout has no port field.
    pub fn port_range_pred(&self, m: &mut BddManager, lo: u16, hi: u16) -> Ref {
        assert!(self.port_width > 0, "layout has no port field");
        assert!(u32::from(hi) < (1u32 << self.port_width));
        m.field_range(self.port_base(), self.port_width, lo as u64, hi as u64)
    }

    /// BDD predicate for the exact destination address `a`.
    pub fn addr_pred(&self, m: &mut BddManager, a: u32) -> Ref {
        m.field_eq(0, self.width, a as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_bdd::EngineProfile;

    #[test]
    fn prefix_contains_addresses() {
        let p = Prefix { addr: 0b10100000, len: 4 };
        assert!(p.contains(0b1010_1111, 8));
        assert!(!p.contains(0b1011_0000, 8));
        assert!(Prefix::ANY.contains(123, 8));
    }

    #[test]
    fn covers_is_prefix_order() {
        let w = 8;
        let p4 = Prefix { addr: 0b10100000, len: 4 };
        let p6 = Prefix { addr: 0b1010_1000, len: 6 };
        assert!(p4.covers(&p6, w));
        assert!(!p6.covers(&p4, w));
        assert!(Prefix::ANY.covers(&p4, w));
        assert!(p4.covers(&p4, w));
    }

    #[test]
    fn prefix_pred_counts() {
        let layout = HeaderLayout::new(8);
        let mut m = layout.manager(EngineProfile::Cached);
        let p = layout.prefix_pred(&mut m, Prefix { addr: 0b1100_0000, len: 2 });
        assert_eq!(m.sat_count(p), 64.0);
    }

    #[test]
    fn pred_agrees_with_contains() {
        let layout = HeaderLayout::new(6);
        let mut m = layout.manager(EngineProfile::Cached);
        let p = Prefix { addr: 0b101000, len: 3 };
        let pred = layout.prefix_pred(&mut m, p);
        for a in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| (a >> (5 - i)) & 1 == 1).collect();
            assert_eq!(m.eval(pred, &bits), Ok(p.contains(a, 6)), "addr {a}");
        }
    }

    #[test]
    fn disjoint_prefixes_have_empty_intersection() {
        let layout = HeaderLayout::new(8);
        let mut m = layout.manager(EngineProfile::Cached);
        let a = layout.prefix_pred(&mut m, Prefix { addr: 0b0000_0000, len: 1 });
        let b = layout.prefix_pred(&mut m, Prefix { addr: 0b1000_0000, len: 1 });
        assert_eq!(m.and(a, b), netrepro_bdd::FALSE);
    }
}
