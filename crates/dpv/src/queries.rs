//! Higher-level verification queries over a compiled [`ApVerifier`]:
//! the all-pairs reachability matrix and slice-isolation checks — the
//! operator-facing questions the AP paper's evaluation answers
//! ("loop-free, blackhole-free reachability" across every pair).

use crate::ap::{ApVerifier, AtomSet};
use crate::reach::selective_bfs;
use netrepro_graph::NodeId;

/// The all-pairs delivery matrix: `delivered[s][d]` is the atom set
/// injected at `s` that gets delivered at `d`.
#[derive(Debug)]
pub struct ReachMatrix {
    n: usize,
    delivered: Vec<AtomSet>,
}

impl ReachMatrix {
    /// Compute the matrix with one selective-BFS sweep per source.
    pub fn compute(v: &ApVerifier) -> ReachMatrix {
        let n = v.tables.len();
        let mut delivered = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                // The diagonal is meaningful: a packet injected at its
                // own device's prefix delivers right there.
                delivered.push(selective_bfs(v, NodeId(s as u32), NodeId(d as u32)).delivered);
            }
        }
        ReachMatrix { n, delivered }
    }

    /// Delivered atoms from `s` to `d`.
    pub fn get(&self, s: NodeId, d: NodeId) -> &AtomSet {
        &self.delivered[s.index() * self.n + d.index()]
    }

    /// Number of ordered pairs with any delivery.
    pub fn connected_pairs(&self) -> usize {
        self.delivered.iter().filter(|s| !s.is_empty()).count()
    }

    /// Pairs `(s, d)` with no delivery at all (s ≠ d).
    pub fn unreachable_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d && self.get(NodeId(s as u32), NodeId(d as u32)).is_empty() {
                    out.push((NodeId(s as u32), NodeId(d as u32)));
                }
            }
        }
        out
    }
}

/// A slice-isolation violation: traffic from a device in slice `a`
/// reaches a device in slice `b`.
#[derive(Debug, Clone)]
pub struct IsolationViolation {
    /// Source device (in the first slice).
    pub src: NodeId,
    /// Destination device (in the second slice).
    pub dst: NodeId,
    /// The leaking atoms.
    pub atoms: AtomSet,
}

/// Check that two device sets are mutually isolated: nothing injected
/// at a device of `slice_a` may be delivered at a device of `slice_b`,
/// and vice versa. Returns every violation.
pub fn check_isolation(
    v: &ApVerifier,
    slice_a: &[NodeId],
    slice_b: &[NodeId],
) -> Vec<IsolationViolation> {
    let mut out = Vec::new();
    for (from, to) in [(slice_a, slice_b), (slice_b, slice_a)] {
        for &s in from {
            for &d in to {
                if s == d {
                    continue;
                }
                let r = selective_bfs(v, s, d);
                if !r.delivered.is_empty() {
                    out.push(IsolationViolation { src: s, dst: d, atoms: r.delivered });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetOpts};
    use crate::header::HeaderLayout;
    use crate::network::{Action, Network, Rule};
    use crate::Prefix;
    use netrepro_bdd::EngineProfile;
    use netrepro_graph::gen::ring;
    use netrepro_graph::DiGraph;

    #[test]
    fn clean_ring_is_fully_connected() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let m = ReachMatrix::compute(&v);
        // All ordered pairs including the diagonal (self-delivery of the
        // locally owned prefix).
        assert_eq!(m.connected_pairs(), 5 * 5);
        assert!(m.unreachable_pairs().is_empty());
    }

    #[test]
    fn matrix_matches_single_queries() {
        let ds = generate(ring(4, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let m = ReachMatrix::compute(&v);
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s == d {
                    continue;
                }
                let single = selective_bfs(&v, NodeId(s), NodeId(d)).delivered;
                assert_eq!(m.get(NodeId(s), NodeId(d)), &single);
            }
        }
    }

    /// Two pairs of devices with no routes between the pairs: isolated.
    fn two_islands() -> Network {
        let mut g = DiGraph::new();
        let a0 = g.add_node("a0");
        let a1 = g.add_node("a1");
        let b0 = g.add_node("b0");
        let b1 = g.add_node("b1");
        let (a01, a10) = g.add_bidi(a0, a1, 1.0, 1.0);
        let (b01, b10) = g.add_bidi(b0, b1, 1.0, 1.0);
        // Physical links exist across islands, but no routes use them.
        g.add_bidi(a1, b0, 1.0, 1.0);
        let mut net = Network::new(g, HeaderLayout::new(8));
        let pa = Prefix { addr: 0b0000_0000, len: 2 };
        let pb = Prefix { addr: 0b0100_0000, len: 2 };
        net.device_mut(a0).insert(Rule { prefix: pa, priority: 2, action: Action::Deliver });
        net.device_mut(a1).insert(Rule { prefix: pa, priority: 2, action: Action::Forward(a10) });
        net.device_mut(a1).insert(Rule {
            prefix: Prefix { addr: 0b0010_0000, len: 3 },
            priority: 3,
            action: Action::Deliver,
        });
        net.device_mut(a0).insert(Rule {
            prefix: Prefix { addr: 0b0010_0000, len: 3 },
            priority: 3,
            action: Action::Forward(a01),
        });
        net.device_mut(b0).insert(Rule { prefix: pb, priority: 2, action: Action::Deliver });
        net.device_mut(b1).insert(Rule { prefix: pb, priority: 2, action: Action::Forward(b10) });
        net.device_mut(b1).insert(Rule {
            prefix: Prefix { addr: 0b0110_0000, len: 3 },
            priority: 3,
            action: Action::Deliver,
        });
        net.device_mut(b0).insert(Rule {
            prefix: Prefix { addr: 0b0110_0000, len: 3 },
            priority: 3,
            action: Action::Forward(b01),
        });
        net
    }

    #[test]
    fn islands_are_isolated() {
        let net = two_islands();
        let v = ApVerifier::build(&net, EngineProfile::Cached);
        let a = [NodeId(0), NodeId(1)];
        let b = [NodeId(2), NodeId(3)];
        assert!(check_isolation(&v, &a, &b).is_empty());
    }

    #[test]
    fn leaking_route_breaks_isolation() {
        let mut net = two_islands();
        // a1 grows a route toward b0's prefix over the physical cross link.
        let cross = net.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        net.device_mut(NodeId(1)).insert(Rule {
            prefix: Prefix { addr: 0b0100_0000, len: 2 },
            priority: 2,
            action: Action::Forward(cross),
        });
        let v = ApVerifier::build(&net, EngineProfile::Cached);
        let a = [NodeId(0), NodeId(1)];
        let b = [NodeId(2), NodeId(3)];
        let violations = check_isolation(&v, &a, &b);
        assert!(!violations.is_empty(), "the leaked route must be detected");
        // Every leak flows a -> b (the sub-prefix 0110/3 travels one hop
        // further and also delivers at b1, so both b devices may appear).
        assert!(violations
            .iter()
            .all(|x| x.src.index() < 2 && x.dst.index() >= 2));
    }

    #[test]
    fn isolation_is_direction_sensitive() {
        let mut net = two_islands();
        let cross = net.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        net.device_mut(NodeId(1)).insert(Rule {
            prefix: Prefix { addr: 0b0100_0000, len: 2 },
            priority: 2,
            action: Action::Forward(cross),
        });
        let v = ApVerifier::build(&net, EngineProfile::Cached);
        // Only a -> b leaks; b -> a must stay clean.
        let violations = check_isolation(&v, &[NodeId(2), NodeId(3)], &[NodeId(0), NodeId(1)]);
        let b_to_a: Vec<_> = violations
            .iter()
            .filter(|x| x.src.index() >= 2 && x.dst.index() < 2)
            .collect();
        assert!(b_to_a.is_empty());
    }
}
