//! Hyper-scale DCN dataplanes: structured ECMP FIBs over k-ary
//! fat-trees, built without any all-pairs routing state.
//!
//! [`crate::dataset::generate`] runs a Dijkstra per (destination,
//! source) pair — fine for the paper's WAN-scale instances, hopeless at
//! 10k–100k devices. A fat-tree needs none of that: its routing is a
//! pure function of index arithmetic (Al-Fares et al.), so this module
//! emits each device's FIB directly from the topology coordinates, in
//! one streaming pass:
//!
//! * hosts get a dense, prefix-exact address block (`k/2` is a power of
//!   two, so every edge-switch block and pod is one exact prefix);
//! * downward routes are exact block prefixes;
//! * upward routes pick one of the `k/2` candidate uplinks by a
//!   deterministic seeded hash of `(seed, device, destination block)` —
//!   the usual hashed-ECMP model, collapsed to a single next hop so
//!   forwarding stays deterministic per header;
//! * optional `link_down` churn severs a seeded sample of links and
//!   rewrites the FIB rules that used them to [`Action::Drop`] — the
//!   blackhole scenario the partitioned verifier has to witness.

use crate::header::{HeaderLayout, Prefix};
use crate::network::{Action, Network, Rule};
use netrepro_graph::gen::{fat_tree, FatTree, FatTreeSpec};
use netrepro_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt for the churn RNG stream, so link_down sampling is independent
/// of the ECMP hash stream for the same seed.
const SALT_CHURN: u64 = 0x6c69_6e6b_646f_776e;

/// Specification of a verification fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricSpec {
    /// Fat-tree arity (even, `k/2` a power of two, `k >= 4`).
    pub k: usize,
    /// Seed for ECMP uplink choices and churn sampling.
    pub seed: u64,
    /// Number of links to sever (each direction counts separately).
    pub link_down: usize,
    /// Materialize hosts as devices. `false` models the switch-only
    /// dataplane (edge switches deliver their block), which is how the
    /// 100k-device scales stay memory-bounded.
    pub with_hosts: bool,
}

impl FabricSpec {
    /// A clean fabric (no churn) with hosts.
    pub fn new(k: usize, seed: u64) -> Self {
        FabricSpec { k, seed, link_down: 0, with_hosts: true }
    }
}

/// A built fabric: the populated dataplane plus the fat-tree index
/// arithmetic needed to address destinations.
#[derive(Debug)]
pub struct Fabric {
    /// The dataplane (topology + FIBs + layout).
    pub network: Network,
    /// Index arithmetic for the fat-tree. Its `graph` field is empty —
    /// the topology lives in `network.graph`; this value only serves
    /// the pure coordinate/id computations.
    pub tree: FatTree,
    /// Host-address bits (`log2(k³/4)`).
    pub host_bits: u32,
    /// The spec this fabric was built from.
    pub spec: FabricSpec,
}

impl Fabric {
    /// Number of verification devices (graph nodes).
    pub fn num_devices(&self) -> usize {
        self.network.graph.num_nodes()
    }

    /// Number of addressable destinations (always host-granular, even
    /// in switch-only fabrics).
    pub fn num_dests(&self) -> usize {
        self.tree.num_hosts()
    }

    /// The `(owner device, address prefix)` of destination `idx`
    /// (a dense host index in `0..num_dests()`). In switch-only
    /// fabrics the owner is the host's edge switch.
    pub fn dest(&self, idx: usize) -> (NodeId, Prefix) {
        let (p, e, h) = self.tree.host_coords(idx);
        let owner = if self.spec.with_hosts { self.tree.host(p, e, h) } else { self.tree.edge(p, e) };
        (owner, self.host_prefix(idx))
    }

    /// The exact prefix of host `idx`, left-aligned in the layout width.
    pub fn host_prefix(&self, idx: usize) -> Prefix {
        let shift = self.network.layout.width - self.host_bits;
        Prefix { addr: (idx as u32) << shift, len: self.host_bits as u8 }
    }
}

/// Deterministic ECMP choice: a splitmix64-style mix of the seed, the
/// choosing device, and the destination block, reduced mod `n`.
fn ecmp_pick(seed: u64, device: u32, key: u32, n: usize) -> usize {
    let mut z = seed ^ ((device as u64) << 32) ^ (key as u64);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % n as u64) as usize
}

/// Build the fabric: generate the fat-tree, emit every FIB from index
/// arithmetic, then apply churn. O(V + E + rules) time and memory.
pub fn build(spec: &FabricSpec) -> Fabric {
    let ft = fat_tree(&FatTreeSpec { k: spec.k, capacity: 40.0, with_hosts: spec.with_hosts });
    let half = ft.half();
    let m = half.trailing_zeros(); // log2(k/2)
    let host_bits = 3 * m + 1; // log2(k³/4) for k = 2^(m+1)
    let width = host_bits + 1; // one spare bit of unowned residue space
    assert!(width <= 32, "fat-tree arity too large for a 32-bit header");
    let layout = HeaderLayout::new(width);

    // Move the topology into the Network; keep an arithmetic-only tree.
    let FatTree { graph, k, with_hosts } = ft;
    let tree = FatTree { graph: DiGraph::new(), k, with_hosts };
    let mut net = Network::new(graph, layout);

    let shift = width - host_bits;
    let host_len = host_bits as u8; // /host prefix
    let eb_len = (host_bits - m) as u8; // /edge-block prefix
    let pb_len = (host_bits - 2 * m) as u8; // /pod prefix
    let host_pfx = |idx: usize| Prefix { addr: (idx as u32) << shift, len: host_len };
    let eb_pfx = |p: usize, e: usize| Prefix {
        addr: (((p * half + e) * half) as u32) << shift,
        len: eb_len,
    };
    let pod_pfx = |p: usize| Prefix { addr: ((p * half * half) as u32) << shift, len: pb_len };
    // Every link looked up here was just created by the generator; if
    // one were ever absent (a generator bug), the rule degrades to an
    // explicit drop — visible as a blackhole verdict — instead of
    // unwinding mid-build.
    let port = |g: &DiGraph, a: NodeId, b: NodeId| -> Action {
        match g.find_edge(a, b) {
            Some(e) => Action::Forward(e),
            None => Action::Drop,
        }
    };

    // Hosts: deliver own prefix, default-route everything up.
    if with_hosts {
        for p in 0..k {
            for e in 0..half {
                for h in 0..half {
                    let hn = tree.host(p, e, h);
                    let up = port(&net.graph, hn, tree.edge(p, e));
                    let dev = net.device_mut(hn);
                    dev.insert(Rule {
                        prefix: host_pfx(tree.host_index(p, e, h)),
                        priority: host_len as u32,
                        action: Action::Deliver,
                    });
                    dev.insert(Rule { prefix: Prefix::ANY, priority: 0, action: up });
                }
            }
        }
    }

    // Edge switches.
    for p in 0..k {
        for e in 0..half {
            let en = tree.edge(p, e);
            // Downward: own hosts (or deliver the whole block when the
            // hosts are not materialized).
            let mut rules: Vec<Rule> = Vec::new();
            if with_hosts {
                for h in 0..half {
                    let down = port(&net.graph, en, tree.host(p, e, h));
                    rules.push(Rule {
                        prefix: host_pfx(tree.host_index(p, e, h)),
                        priority: host_len as u32,
                        action: down,
                    });
                }
            } else {
                rules.push(Rule { prefix: eb_pfx(p, e), priority: eb_len as u32, action: Action::Deliver });
            }
            // Sideways: sibling edge blocks via a hashed agg uplink.
            for e2 in 0..half {
                if e2 == e {
                    continue;
                }
                let j = ecmp_pick(spec.seed, en.0, (p * half + e2) as u32, half);
                let up = port(&net.graph, en, tree.agg(p, j));
                rules.push(Rule { prefix: eb_pfx(p, e2), priority: eb_len as u32, action: up });
            }
            // Upward: remote pods via a hashed agg uplink.
            for q in 0..k {
                if q == p {
                    continue;
                }
                let j = ecmp_pick(spec.seed, en.0, (k * half + q) as u32, half);
                let up = port(&net.graph, en, tree.agg(p, j));
                rules.push(Rule { prefix: pod_pfx(q), priority: pb_len as u32, action: up });
            }
            let dev = net.device_mut(en);
            for r in rules {
                dev.insert(r);
            }
        }
    }

    // Aggregation switches.
    for p in 0..k {
        for j in 0..half {
            let an = tree.agg(p, j);
            let mut rules: Vec<Rule> = Vec::new();
            // Downward: every edge block of the pod.
            for e in 0..half {
                let down = port(&net.graph, an, tree.edge(p, e));
                rules.push(Rule { prefix: eb_pfx(p, e), priority: eb_len as u32, action: down });
            }
            // Upward: remote pods via a hashed core of group j.
            for q in 0..k {
                if q == p {
                    continue;
                }
                let c = j * half + ecmp_pick(spec.seed, an.0, q as u32, half);
                let up = port(&net.graph, an, tree.core(c));
                rules.push(Rule { prefix: pod_pfx(q), priority: pb_len as u32, action: up });
            }
            let dev = net.device_mut(an);
            for r in rules {
                dev.insert(r);
            }
        }
    }

    // Cores: one downward pod route each, toward the core's agg group.
    for c in 0..tree.num_cores() {
        let cn = tree.core(c);
        let g = c / half;
        let mut rules: Vec<Rule> = Vec::new();
        for p in 0..k {
            let down = port(&net.graph, cn, tree.agg(p, g));
            rules.push(Rule { prefix: pod_pfx(p), priority: pb_len as u32, action: down });
        }
        let dev = net.device_mut(cn);
        for r in rules {
            dev.insert(r);
        }
    }

    let mut fabric = Fabric { network: net, tree, host_bits, spec: *spec };
    if spec.link_down > 0 {
        apply_churn(&mut fabric);
    }
    fabric
}

/// Sever a seeded sample of `link_down` distinct directed links:
/// every FIB rule forwarding out of a severed link becomes an explicit
/// [`Action::Drop`] (the dead-port model, mirroring
/// [`crate::dataset::FibDataset::corrupt_links`]).
fn apply_churn(fabric: &mut Fabric) {
    let total = fabric.network.graph.num_edges();
    let want = fabric.spec.link_down.min(total);
    let mut rng = StdRng::seed_from_u64(fabric.spec.seed ^ SALT_CHURN);
    let mut severed = vec![false; total];
    let mut picked = 0;
    // Bounded rejection sampling keeps this deterministic and cheap.
    let mut tries = 0;
    while picked < want && tries < want * 64 + 64 {
        tries += 1;
        let e = rng.random_range(0..total as u32) as usize;
        if !severed[e] {
            severed[e] = true;
            picked += 1;
        }
    }
    for dev in fabric.network.devices.iter_mut() {
        for rule in dev.rules.iter_mut() {
            if let Action::Forward(e) = rule.action {
                if severed[e.index()] {
                    rule.action = Action::Drop;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, Packet, Verdict};

    #[test]
    fn fabric_shape_and_rule_counts() {
        let f = build(&FabricSpec::new(4, 7));
        assert_eq!(f.num_devices(), 20 + 16);
        assert_eq!(f.num_dests(), 16);
        assert_eq!(f.host_bits, 4);
        assert_eq!(f.network.layout.width, 5);
        // Every core: k pod routes; every agg: k/2 + (k-1); every edge:
        // k/2 hosts + (k/2 - 1) siblings + (k - 1) pods; hosts: 2.
        let k = 4;
        let half = 2;
        let expect = (half * half) * k
            + (k * half) * (half + k - 1)
            + (k * half) * (half + half - 1 + k - 1)
            + (k * half * half) * 2;
        assert_eq!(f.network.num_rules(), expect);
    }

    #[test]
    fn every_host_pair_delivers_on_clean_fabric() {
        let f = build(&FabricSpec::new(4, 3));
        let w = f.network.layout.width;
        for s in 0..f.num_dests() {
            for d in 0..f.num_dests() {
                let (src, _) = f.dest(s);
                let (dst, pfx) = f.dest(d);
                let addr = pfx.addr; // lowest address of the /host prefix
                let v = simulate(&f.network, src, Packet { dst: addr, src: 0, dport: 0 }, 64);
                match v {
                    Verdict::Delivered(at) => assert_eq!(at, dst, "{s}->{d} delivered at wrong device"),
                    other => panic!("{s}->{d} (addr {addr:#x}, width {w}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn switch_only_fabric_delivers_at_edge_switches() {
        let f = build(&FabricSpec { k: 4, seed: 3, link_down: 0, with_hosts: false });
        assert_eq!(f.num_devices(), 20);
        for s in [0usize, 5, 9] {
            for d in [2usize, 7, 15] {
                let (src, _) = f.dest(s);
                let (dst, pfx) = f.dest(d);
                let v = simulate(&f.network, src, Packet { dst: pfx.addr, src: 0, dport: 0 }, 64);
                assert_eq!(v, Verdict::Delivered(dst), "{s}->{d}");
            }
        }
    }

    #[test]
    fn fabric_is_deterministic_and_seed_sensitive() {
        let a = build(&FabricSpec::new(8, 11));
        let b = build(&FabricSpec::new(8, 11));
        let c = build(&FabricSpec::new(8, 12));
        let dump = |f: &Fabric| {
            f.network
                .devices
                .iter()
                .flat_map(|d| d.rules.iter().map(|r| (r.prefix, r.priority, r.action)))
                .collect::<Vec<_>>()
        };
        assert_eq!(dump(&a), dump(&b));
        assert_ne!(dump(&a), dump(&c), "ECMP choices must depend on the seed");
    }

    #[test]
    fn churn_introduces_drop_rules() {
        let clean = build(&FabricSpec { k: 8, seed: 5, link_down: 0, with_hosts: false });
        let churned = build(&FabricSpec { k: 8, seed: 5, link_down: 40, with_hosts: false });
        let drops = |f: &Fabric| {
            f.network
                .devices
                .iter()
                .flat_map(|d| d.rules.iter())
                .filter(|r| r.action == Action::Drop)
                .count()
        };
        assert_eq!(drops(&clean), 0);
        assert!(drops(&churned) > 0, "churn must convert forwards to drops");
        // Same seed, same churn: deterministic.
        let again = build(&FabricSpec { k: 8, seed: 5, link_down: 40, with_hosts: false });
        assert_eq!(drops(&churned), drops(&again));
    }
}
