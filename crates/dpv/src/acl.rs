//! Access-control lists on egress ports.
//!
//! The AP paper's evaluation networks carry ACLs alongside forwarding
//! tables; a packet leaves a port only if the port's ACL permits it.
//! An [`AclTable`] is a prioritised first-match list of permit/deny
//! rules over `(source prefix, destination prefix, destination-port
//! range)`, with a configurable default.

use crate::header::{HeaderLayout, Prefix};
use netrepro_bdd::{BddManager, Ref, FALSE};

/// One ACL entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AclRule {
    /// Source-address prefix (ANY when the layout has no source field).
    pub src: Prefix,
    /// Destination-address prefix.
    pub dst: Prefix,
    /// Inclusive destination-port range; `None` matches every port.
    pub dport: Option<(u16, u16)>,
    /// Permit (true) or deny (false) on match.
    pub permit: bool,
}

impl AclRule {
    /// A rule denying `src → dst` on every port.
    pub fn deny(src: Prefix, dst: Prefix) -> AclRule {
        AclRule { src, dst, dport: None, permit: false }
    }

    /// A rule permitting `src → dst` on every port.
    pub fn permit(src: Prefix, dst: Prefix) -> AclRule {
        AclRule { src, dst, dport: None, permit: true }
    }

    /// Match predicate of this rule.
    pub fn match_pred(&self, layout: &HeaderLayout, m: &mut BddManager) -> Ref {
        let mut pred = layout.prefix_pred(m, self.dst);
        if layout.src_width > 0 && self.src.len > 0 {
            m.ref_inc(pred);
            let sp = layout.src_prefix_pred(m, self.src);
            m.ref_inc(sp);
            let np = m.and(pred, sp);
            m.ref_dec(pred);
            m.ref_dec(sp);
            pred = np;
        }
        if let Some((lo, hi)) = self.dport {
            assert!(layout.port_width > 0, "port match on a layout without ports");
            m.ref_inc(pred);
            let pp = layout.port_range_pred(m, lo, hi);
            m.ref_inc(pp);
            let np = m.and(pred, pp);
            m.ref_dec(pred);
            m.ref_dec(pp);
            pred = np;
        }
        pred
    }
}

/// A first-match ACL with a default action.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AclTable {
    /// Rules, highest priority first.
    pub rules: Vec<AclRule>,
    /// Whether unmatched packets are denied (the common router default
    /// is permit-all when no ACL is configured, deny-all when one is).
    pub default_deny: bool,
}

impl AclTable {
    /// An empty permit-everything table.
    pub fn permit_all() -> AclTable {
        AclTable { rules: Vec::new(), default_deny: false }
    }

    /// A deny-by-default table with the given rules.
    pub fn deny_by_default(rules: Vec<AclRule>) -> AclTable {
        AclTable { rules, default_deny: true }
    }

    /// The permitted header space: first-match semantics compiled to a
    /// single predicate.
    pub fn permit_pred(&self, layout: &HeaderLayout, m: &mut BddManager) -> Ref {
        let mut permitted = FALSE;
        let mut covered = FALSE;
        m.ref_inc(permitted);
        m.ref_inc(covered);
        for rule in &self.rules {
            let matched = rule.match_pred(layout, m);
            m.ref_inc(matched);
            let hit = m.diff(matched, covered);
            m.ref_inc(hit);
            if rule.permit {
                let np = m.or(permitted, hit);
                m.ref_inc(np);
                m.ref_dec(permitted);
                permitted = np;
            }
            let nc = m.or(covered, matched);
            m.ref_inc(nc);
            m.ref_dec(covered);
            covered = nc;
            m.ref_dec(matched);
            m.ref_dec(hit);
        }
        if !self.default_deny {
            let residue = m.not(covered);
            m.ref_inc(residue);
            let np = m.or(permitted, residue);
            m.ref_inc(np);
            m.ref_dec(permitted);
            m.ref_dec(residue);
            permitted = np;
        }
        m.ref_dec(covered);
        // Leave exactly one protection on the result for the caller.
        permitted
    }

    /// Scan oracle: is a concrete packet permitted?
    pub fn permits(&self, layout: &HeaderLayout, src: u32, dst: u32, dport: u16) -> bool {
        for r in &self.rules {
            let src_ok = layout.src_width == 0 || r.src.len == 0 || r.src.contains(src, layout.src_width);
            let dst_ok = r.dst.contains(dst, layout.width);
            let port_ok = match r.dport {
                None => true,
                Some((lo, hi)) => (lo..=hi).contains(&dport),
            };
            if src_ok && dst_ok && port_ok {
                return r.permit;
            }
        }
        !self.default_deny
    }
}

/// Build the assignment bits for a concrete `(dst, src, dport)` packet
/// under `layout` (for evaluating compiled predicates in tests).
pub fn packet_bits(layout: &HeaderLayout, dst: u32, src: u32, dport: u16) -> Vec<bool> {
    let mut bits = Vec::with_capacity(layout.total_bits() as usize);
    for i in 0..layout.width {
        bits.push((dst >> (layout.width - 1 - i)) & 1 == 1);
    }
    for i in 0..layout.src_width {
        bits.push((src >> (layout.src_width - 1 - i)) & 1 == 1);
    }
    for i in 0..layout.port_width {
        bits.push((u32::from(dport) >> (layout.port_width - 1 - i)) & 1 == 1);
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_bdd::{EngineProfile, TRUE};

    fn layout() -> HeaderLayout {
        HeaderLayout::with_acl_fields(8, 8, 6)
    }

    #[test]
    fn permit_all_is_true() {
        let l = layout();
        let mut m = l.manager(EngineProfile::Cached);
        let t = AclTable::permit_all();
        assert_eq!(t.permit_pred(&l, &mut m), TRUE);
    }

    #[test]
    fn empty_deny_by_default_is_false() {
        let l = layout();
        let mut m = l.manager(EngineProfile::Cached);
        let t = AclTable::deny_by_default(vec![]);
        assert_eq!(t.permit_pred(&l, &mut m), FALSE);
    }

    #[test]
    fn first_match_wins() {
        let l = layout();
        let mut m = l.manager(EngineProfile::Cached);
        let dst = Prefix { addr: 0b1010_0000, len: 4 };
        // Deny the /4 first, then permit everything: the deny shadows.
        let t = AclTable {
            rules: vec![AclRule::deny(Prefix::ANY, dst), AclRule::permit(Prefix::ANY, Prefix::ANY)],
            default_deny: true,
        };
        let p = t.permit_pred(&l, &mut m);
        // Permitted space excludes the 16 dst addresses of the /4
        // (times full src/port space).
        let total = 2f64.powi(l.total_bits() as i32);
        assert_eq!(m.sat_count(p), total * (240.0 / 256.0));
    }

    #[test]
    fn compiled_pred_agrees_with_scan_oracle() {
        let l = layout();
        let mut m = l.manager(EngineProfile::Cached);
        let t = AclTable {
            rules: vec![
                AclRule {
                    src: Prefix { addr: 0b1100_0000, len: 2 },
                    dst: Prefix { addr: 0b0000_0000, len: 1 },
                    dport: Some((10, 20)),
                    permit: true,
                },
                AclRule::deny(Prefix { addr: 0b1100_0000, len: 2 }, Prefix::ANY),
                AclRule::permit(Prefix::ANY, Prefix::ANY),
            ],
            default_deny: true,
        };
        let p = t.permit_pred(&l, &mut m);
        // Exhaustive over a reduced sample grid.
        for src in (0u32..256).step_by(17) {
            for dst in (0u32..256).step_by(13) {
                for dport in [0u16, 9, 10, 15, 20, 21, 63] {
                    let bits = packet_bits(&l, dst, src, dport);
                    assert_eq!(
                        m.eval(p, &bits),
                        Ok(t.permits(&l, src, dst, dport)),
                        "src={src} dst={dst} dport={dport}"
                    );
                }
            }
        }
    }

    #[test]
    fn port_ranges_bind() {
        let l = layout();
        let mut m = l.manager(EngineProfile::Cached);
        let t = AclTable::deny_by_default(vec![AclRule {
            src: Prefix::ANY,
            dst: Prefix::ANY,
            dport: Some((5, 8)),
            permit: true,
        }]);
        let p = t.permit_pred(&l, &mut m);
        let total = 2f64.powi(l.total_bits() as i32);
        assert_eq!(m.sat_count(p), total * (4.0 / 64.0));
    }
}
