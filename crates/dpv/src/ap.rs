//! Atomic predicates (Yang & Lam, ToN 2016).
//!
//! Given the set of port predicates of a network, the *atomic
//! predicates* are the coarsest partition of header space such that
//! every port predicate is a union of atoms. Once computed, every
//! set operation on predicates collapses to cheap bit-set operations on
//! atom ids — the source of AP's real-time verification speed.

use crate::network::{Action, Network};
use netrepro_bdd::{BddError, BddManager, EngineProfile, Ref, FALSE, TRUE};
use netrepro_graph::NodeId;

/// A set of atom ids, stored as a bitmask.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomSet {
    words: Vec<u64>,
}

impl AtomSet {
    /// The empty set over a universe of `n` atoms.
    pub fn empty(n: usize) -> Self {
        AtomSet { words: vec![0; n.div_ceil(64)] }
    }

    /// The full set over a universe of `n` atoms.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Insert atom `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set union (sizes must match).
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        AtomSet { words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect() }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &AtomSet) -> AtomSet {
        AtomSet { words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect() }
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &AtomSet) -> AtomSet {
        AtomSet { words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect() }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of atoms in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over member atom ids.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w >> b & 1 == 1).map(move |b| wi * 64 + b)
        })
    }

    /// In-place union; returns whether `self` grew.
    pub fn union_in_place(&mut self, other: &AtomSet) -> bool {
        let mut grew = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | b;
            if n != *a {
                grew = true;
                *a = n;
            }
        }
        grew
    }
}

/// The computed atom universe.
#[derive(Debug)]
pub struct AtomicPredicates {
    /// Disjoint, jointly exhaustive predicates (each protected in the
    /// manager until dropped via [`AtomicPredicates::release`]).
    pub atoms: Vec<Ref>,
}

impl AtomicPredicates {
    /// Compute the atoms of `predicates` (the classic refinement loop:
    /// start with `{TRUE}` and split every atom by each predicate).
    pub fn compute(m: &mut BddManager, predicates: &[Ref]) -> Self {
        let mut atoms: Vec<Ref> = vec![TRUE];
        for &p in predicates {
            let mut next: Vec<Ref> = Vec::with_capacity(atoms.len() * 2);
            for &a in &atoms {
                let inside = m.and(a, p);
                let outside = m.diff(a, p);
                if inside != FALSE {
                    m.ref_inc(inside);
                    next.push(inside);
                }
                if outside != FALSE {
                    m.ref_inc(outside);
                    next.push(outside);
                }
            }
            for a in atoms {
                if !a.is_terminal() {
                    m.ref_dec(a);
                }
            }
            atoms = next;
        }
        AtomicPredicates { atoms }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True only for the degenerate single-atom universe.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Express `p` as the set of atoms it contains. `p` must be a union
    /// of atoms (true for any predicate fed into `compute`, or any
    /// boolean combination of them).
    pub fn represent(&self, m: &mut BddManager, p: Ref) -> AtomSet {
        let mut s = AtomSet::empty(self.atoms.len());
        for (i, &a) in self.atoms.iter().enumerate() {
            if m.and(a, p) != FALSE {
                debug_assert!(m.implies(a, p), "predicate is not a union of atoms");
                s.insert(i);
            }
        }
        s
    }

    /// The BDD for an atom set (union of its atoms).
    pub fn to_bdd(&self, m: &mut BddManager, s: &AtomSet) -> Ref {
        let mut acc = FALSE;
        for i in s.iter() {
            acc = m.or(acc, self.atoms[i]);
        }
        acc
    }

    /// Release the atom references.
    pub fn release(self, m: &mut BddManager) {
        for a in self.atoms {
            if !a.is_terminal() {
                m.ref_dec(a);
            }
        }
    }
}

/// A fully-built AP verifier: the atom universe plus every device's
/// forwarding table expressed as atom sets.
#[derive(Debug)]
pub struct ApVerifier {
    /// The shared BDD manager.
    pub manager: BddManager,
    /// The atom universe.
    pub atoms: AtomicPredicates,
    /// Per-device `(action, atom-set)` tables (disjoint per device).
    pub tables: Vec<Vec<(Action, AtomSet)>>,
    /// Number of source predicates the atoms were computed from.
    pub num_predicates: usize,
    /// Topology edge endpoints, copied so traversals need no graph.
    pub(crate) edge_endpoints: Vec<(NodeId, NodeId)>,
}

impl ApVerifier {
    /// Compile `net` under the given engine profile.
    ///
    /// This is the *predicate computation* phase whose latency Table D
    /// compares across BDD engine profiles (JDD vs JavaBDD stand-ins).
    pub fn build(net: &Network, profile: EngineProfile) -> Self {
        let m = net.layout.manager(profile);
        Self::build_in(m, net).unwrap_or_else(|_| {
            // Unreachable with an uncapped manager; degrade to an empty
            // verifier (single TRUE atom, no tables) rather than unwind.
            ApVerifier {
                manager: net.layout.manager(profile),
                atoms: AtomicPredicates { atoms: vec![TRUE] },
                tables: vec![Vec::new(); net.graph.num_nodes()],
                num_predicates: 0,
                edge_endpoints: Vec::new(),
            }
        })
    }

    /// Like [`ApVerifier::build`], but with a soft node-table cap: the
    /// compile aborts with [`BddError::TableExhausted`] (checked between
    /// device compiles and after the atom refinement) instead of growing
    /// without bound. Used by the fault-injection harness to model a
    /// BDD library running out of table space mid-verification.
    pub fn try_build(net: &Network, profile: EngineProfile, node_cap: usize) -> Result<Self, BddError> {
        let mut m = net.layout.manager(profile);
        m.set_node_cap(Some(node_cap));
        Self::build_in(m, net)
    }

    /// Growth-retry absorption: attempt [`ApVerifier::try_build`] with
    /// `initial_cap`, doubling the cap on each [`BddError::TableExhausted`]
    /// up to `max_doublings` times. Returns the verifier and how many
    /// doublings it took — a nonzero count means the fault was absorbed
    /// rather than avoided.
    pub fn build_with_growth(
        net: &Network,
        profile: EngineProfile,
        initial_cap: usize,
        max_doublings: u32,
    ) -> Result<(Self, u32), BddError> {
        let mut cap = initial_cap.max(1);
        let mut doublings = 0;
        loop {
            match Self::try_build(net, profile, cap) {
                Ok(v) => return Ok((v, doublings)),
                Err(BddError::TableExhausted { .. }) if doublings < max_doublings => {
                    cap *= 2;
                    doublings += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn build_in(mut m: BddManager, net: &Network) -> Result<Self, BddError> {
        // Compile every device, keeping the per-action predicates.
        let mut compiled: Vec<Vec<(Action, Ref)>> = Vec::with_capacity(net.graph.num_nodes());
        for v in net.graph.nodes() {
            let pp = net.port_predicates(&mut m, v);
            compiled.push(pp.preds);
            m.check_capacity()?;
        }
        // Atoms from all forwarding/deliver predicates (drop residues are
        // complements of per-device unions, so they refine nothing new,
        // but including them matches the published system).
        let sources: Vec<Ref> = compiled
            .iter()
            .flatten()
            .map(|&(_, p)| p)
            .filter(|p| !p.is_terminal())
            .collect();
        let num_predicates = sources.len();
        let atoms = AtomicPredicates::compute(&mut m, &sources);
        m.check_capacity()?;
        let tables: Vec<Vec<(Action, AtomSet)>> = compiled
            .iter()
            .map(|preds| {
                preds
                    .iter()
                    .map(|&(a, p)| (a, atoms.represent(&mut m, p)))
                    .collect()
            })
            .collect();
        for preds in compiled {
            for (_, p) in preds {
                if !p.is_terminal() {
                    m.ref_dec(p);
                }
            }
        }
        m.check_capacity()?;
        let edge_endpoints = net.graph.edges().map(|e| net.graph.endpoints(e)).collect();
        Ok(ApVerifier { manager: m, atoms, tables, num_predicates, edge_endpoints })
    }

    /// Number of atomic predicates (the headline metric of Tables C/D).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// The atom set forwarded by device `v` out of topology edge `e`.
    pub fn forward_set(&self, v: NodeId, e: netrepro_graph::EdgeId) -> AtomSet {
        self.tables[v.index()]
            .iter()
            .find(|(a, _)| *a == Action::Forward(e))
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| AtomSet::empty(self.atoms.len()))
    }

    /// The atom set delivered locally at `v`.
    pub fn deliver_set(&self, v: NodeId) -> AtomSet {
        self.tables[v.index()]
            .iter()
            .find(|(a, _)| *a == Action::Deliver)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| AtomSet::empty(self.atoms.len()))
    }

    /// The atom set dropped at `v`.
    pub fn drop_set(&self, v: NodeId) -> AtomSet {
        self.tables[v.index()]
            .iter()
            .find(|(a, _)| *a == Action::Drop)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| AtomSet::empty(self.atoms.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetOpts};
    use crate::header::HeaderLayout;
    use netrepro_graph::gen::ring;

    #[test]
    fn atomset_basic_ops() {
        let mut a = AtomSet::empty(100);
        a.insert(3);
        a.insert(70);
        assert!(a.contains(3) && a.contains(70) && !a.contains(4));
        assert_eq!(a.len(), 2);
        let mut b = AtomSet::empty(100);
        b.insert(70);
        b.insert(99);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.minus(&b).len(), 1);
        assert!(AtomSet::empty(10).is_empty());
        assert_eq!(AtomSet::full(65).len(), 65);
    }

    #[test]
    fn atomset_iter_roundtrip() {
        let mut a = AtomSet::empty(130);
        for i in [0, 63, 64, 129] {
            a.insert(i);
        }
        let got: Vec<usize> = a.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 129]);
    }

    #[test]
    fn union_in_place_reports_growth() {
        let mut a = AtomSet::empty(10);
        a.insert(1);
        let mut b = AtomSet::empty(10);
        b.insert(2);
        assert!(a.union_in_place(&b));
        assert!(!a.union_in_place(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn atoms_of_no_predicates_is_true() {
        let mut m = BddManager::new(4, EngineProfile::Cached);
        let ap = AtomicPredicates::compute(&mut m, &[]);
        assert_eq!(ap.len(), 1);
        assert_eq!(ap.atoms[0], TRUE);
    }

    #[test]
    fn atoms_partition_space() {
        let mut m = BddManager::new(4, EngineProfile::Cached);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let ap = AtomicPredicates::compute(&mut m, &[a, ab]);
        // Atoms: a&b, a&!b, !a -> 3 atoms.
        assert_eq!(ap.len(), 3);
        // Disjoint and exhaustive.
        let mut total = 0.0;
        for (i, &x) in ap.atoms.iter().enumerate() {
            total += m.sat_count(x);
            for &y in &ap.atoms[i + 1..] {
                assert_eq!(m.and(x, y), FALSE);
            }
        }
        assert_eq!(total, 16.0);
    }

    #[test]
    fn represent_and_back_is_identity() {
        let mut m = BddManager::new(4, EngineProfile::Cached);
        let a = m.var(0);
        let b = m.var(1);
        let ap = AtomicPredicates::compute(&mut m, &[a, b]);
        let s = ap.represent(&mut m, a);
        let back = ap.to_bdd(&mut m, &s);
        assert_eq!(back, a);
        // Boolean ops commute with atom-set ops.
        let sb = ap.represent(&mut m, b);
        let ab = m.and(a, b);
        assert_eq!(ap.represent(&mut m, ab), s.intersect(&sb));
    }

    #[test]
    fn verifier_counts_are_profile_independent() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let fast = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let slow = ApVerifier::build(&ds.network, EngineProfile::Uncached);
        assert_eq!(fast.num_atoms(), slow.num_atoms());
        assert!(fast.num_atoms() >= 5, "at least one atom per owned prefix");
    }

    #[test]
    fn try_build_reports_exhaustion_on_tiny_cap() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let err = ApVerifier::try_build(&ds.network, EngineProfile::Cached, 4).unwrap_err();
        assert!(matches!(err, BddError::TableExhausted { cap: 4, .. }), "got {err:?}");
    }

    #[test]
    fn try_build_with_ample_cap_matches_build() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let plain = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let capped = ApVerifier::try_build(&ds.network, EngineProfile::Cached, 1 << 20).unwrap();
        assert_eq!(plain.num_atoms(), capped.num_atoms());
    }

    #[test]
    fn growth_retry_absorbs_exhaustion() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let plain = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let (v, doublings) =
            ApVerifier::build_with_growth(&ds.network, EngineProfile::Cached, 4, 20).unwrap();
        assert!(doublings > 0, "tiny initial cap must force at least one doubling");
        assert_eq!(v.num_atoms(), plain.num_atoms(), "absorbed build must agree");
        // Exhausting the retry budget surfaces the typed error instead.
        let err = ApVerifier::build_with_growth(&ds.network, EngineProfile::Cached, 1, 1)
            .unwrap_err();
        assert!(matches!(err, BddError::TableExhausted { .. }));
    }

    #[test]
    fn tables_partition_per_device() {
        let ds = generate(ring(4, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let universe = AtomSet::full(v.num_atoms());
        for t in &v.tables {
            let mut acc = AtomSet::empty(v.num_atoms());
            for (i, (_, s)) in t.iter().enumerate() {
                for (_, s2) in &t[i + 1..] {
                    assert!(s.intersect(s2).is_empty(), "device table overlaps");
                }
                acc = acc.union(s);
            }
            assert_eq!(acc, universe, "device table not exhaustive");
        }
    }
}
