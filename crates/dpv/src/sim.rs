//! A concrete packet-forwarding simulator — the ground-truth oracle.
//!
//! Symbolic verifiers are only trustworthy relative to something that
//! executes the data plane literally. This module walks one concrete
//! packet through the network, rule by rule and ACL by ACL, with a TTL
//! to cut loops. The property suite then checks, for random packets on
//! random datasets, that the simulator's verdict matches the atomic-
//! predicates pipeline bit for bit — the strongest end-to-end check in
//! the crate.

use crate::network::{Action, Network};
use netrepro_graph::NodeId;

/// A concrete packet (fields beyond the layout's widths are ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination address.
    pub dst: u32,
    /// Source address (used only by layouts with a source field).
    pub src: u32,
    /// Destination port (used only by layouts with a port field).
    pub dport: u16,
}

/// Where a simulated packet ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Delivered at this device.
    Delivered(NodeId),
    /// Dropped at this device (no matching rule, explicit drop, ACL
    /// deny, or downed port semantics).
    Dropped(NodeId),
    /// The TTL expired: the packet is looping. The device where the
    /// TTL ran out is reported.
    Looping(NodeId),
}

/// Walk `packet` from `start` through `net`. `ttl` bounds the hop count
/// (any value above the device count detects every persistent loop).
pub fn simulate(net: &Network, start: NodeId, packet: Packet, ttl: usize) -> Verdict {
    let width = net.layout.width;
    let mut here = start;
    for _ in 0..ttl {
        let action = net.device(here).action_for(packet.dst, width);
        match action {
            Action::Deliver => return Verdict::Delivered(here),
            Action::Drop => return Verdict::Dropped(here),
            Action::Forward(e) => {
                // Egress ACL check.
                if let Some(acl) = net.egress_acls.get(&e) {
                    if !acl.permits(&net.layout, packet.src, packet.dst, packet.dport) {
                        return Verdict::Dropped(here);
                    }
                }
                here = net.graph.endpoints(e).1;
            }
        }
    }
    Verdict::Looping(here)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{AclRule, AclTable};
    use crate::dataset::{generate, DatasetOpts};
    use crate::header::HeaderLayout;
    use crate::network::Rule;
    use crate::Prefix;
    use netrepro_graph::gen::ring;
    use netrepro_graph::DiGraph;

    #[test]
    fn delivers_owned_prefix_on_clean_ring() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        for d in 0..5usize {
            let addr = ds.owned[d][0].addr;
            let v = simulate(
                &ds.network,
                NodeId(0),
                Packet { dst: addr, src: 0, dport: 0 },
                32,
            );
            assert_eq!(v, Verdict::Delivered(NodeId(d as u32)));
        }
    }

    #[test]
    fn unowned_space_drops() {
        // 5 devices need 3 id bits, so ids 5-7 are unowned; 0xFFF sits
        // in id 7's slice. (With a power-of-two device count the owned
        // prefixes would cover the whole space.)
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let v = simulate(&ds.network, NodeId(0), Packet { dst: 0xFFF, src: 0, dport: 0 }, 32);
        assert!(matches!(v, Verdict::Dropped(_)), "got {v:?}");
    }

    #[test]
    fn detects_ping_pong_loop() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let (ab, ba) = g.add_bidi(a, b, 1.0, 1.0);
        let mut net = Network::new(g, HeaderLayout::new(8));
        let p = Prefix { addr: 0b1000_0000, len: 1 };
        net.device_mut(a).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ab) });
        net.device_mut(b).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ba) });
        let v = simulate(&net, a, Packet { dst: 0b1010_0000, src: 0, dport: 0 }, 16);
        assert!(matches!(v, Verdict::Looping(_)));
    }

    #[test]
    fn acl_deny_drops_at_the_filtering_device() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let ab = g.add_edge(a, b, 1.0, 1.0);
        let layout = HeaderLayout::with_acl_fields(8, 4, 0);
        let mut net = Network::new(g, layout);
        let p = Prefix { addr: 0b1000_0000, len: 1 };
        net.device_mut(a).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ab) });
        net.device_mut(b).insert(Rule { prefix: p, priority: 1, action: Action::Deliver });
        net.set_egress_acl(
            ab,
            AclTable::deny_by_default(vec![AclRule::permit(
                Prefix { addr: 0b1000, len: 1 }, // src 1xxx only
                Prefix::ANY,
            )]),
        );
        let blocked = simulate(&net, a, Packet { dst: 0b1100_0000, src: 0b0010, dport: 0 }, 8);
        assert_eq!(blocked, Verdict::Dropped(a));
        let allowed = simulate(&net, a, Packet { dst: 0b1100_0000, src: 0b1010, dport: 0 }, 8);
        assert_eq!(allowed, Verdict::Delivered(b));
    }
}
