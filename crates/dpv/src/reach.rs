//! Reachability verification — two ways.
//!
//! The AP paper describes, for a *given* path, how to compute the
//! predicates reaching `d` from `s`, but (as the HotNets paper's
//! participant D discovered) omits how its prototype finds all
//! predicates over *any* path: a selective BFS traversal. Participant D
//! instead enumerated paths, which is exponential. Both strategies live
//! here so Table D can measure the gap:
//!
//! * [`selective_bfs`] — the open-source prototype's approach: a
//!   monotone fixpoint over per-device reached atom sets, O(V·E)
//!   atom-set operations.
//! * [`path_enumeration`] — participant D's approach: DFS over simple
//!   paths, intersecting BDD predicates edge by edge, with a safety cap.

use crate::ap::{ApVerifier, AtomSet};
use crate::network::Action;
use netrepro_bdd::{Ref, FALSE};
use netrepro_graph::NodeId;

/// Result of a reachability query.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// Atoms that, injected at the source, arrive at the destination.
    pub arrived: AtomSet,
    /// Atoms that additionally get *delivered* at the destination.
    pub delivered: AtomSet,
}

/// Selective BFS: propagate reached atom sets along forwarding edges to
/// a fixpoint, then read off what arrives at `dst`.
pub fn selective_bfs(v: &ApVerifier, src: NodeId, dst: NodeId) -> ReachResult {
    let n = v.tables.len();
    let universe = v.num_atoms();
    let mut reached: Vec<AtomSet> = (0..n).map(|_| AtomSet::empty(universe)).collect();
    reached[src.index()] = AtomSet::full(universe);
    let mut work = vec![src];
    while let Some(u) = work.pop() {
        let here = reached[u.index()].clone();
        for (action, set) in &v.tables[u.index()] {
            if let Action::Forward(e) = action {
                let out = here.intersect(set);
                if out.is_empty() {
                    continue;
                }
                // Forwarding cannot deliver to self-loops; the topology
                // edge tells us the next device.
                let next = edge_dst(v, *e);
                if reached[next.index()].union_in_place(&out) && next != src {
                    work.push(next);
                }
            }
        }
    }
    let arrived = reached[dst.index()].clone();
    let delivered = arrived.intersect(&v.deliver_set(dst));
    ReachResult { arrived, delivered }
}

fn edge_dst(v: &ApVerifier, e: netrepro_graph::EdgeId) -> NodeId {
    v.graph_endpoints(e).1
}

impl ApVerifier {
    /// Endpoints of a topology edge (helper for the traversals).
    pub fn graph_endpoints(&self, e: netrepro_graph::EdgeId) -> (NodeId, NodeId) {
        // The tables were built from the same graph, so edge ids align.
        self.edge_endpoints[e.index()]
    }
}

/// Outcome of the path-enumeration strategy.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// BDD of headers delivered at the destination over the explored paths.
    pub delivered: Ref,
    /// Simple paths explored.
    pub paths_explored: u64,
    /// Whether the exploration hit the path cap (result then a lower
    /// bound — exactly the failure mode of participant D's version).
    pub truncated: bool,
}

/// Path enumeration, as participant D built it from the paper (§3.2):
/// the paper gives an algorithm that, *for a given path*, computes the
/// predicates reaching `d` from `s`; it does not describe how the
/// prototype searches paths (a selective BFS). D therefore enumerated
/// every simple topological path and ran the per-path algorithm on each
/// — exponential in the path count, because the search does **not**
/// prune by intermediate predicate emptiness.
///
/// `max_paths` caps the number of complete paths processed (participant
/// D's runs, too, only finished because the datasets were finite); when
/// the cap fires, `truncated` is set and the result is a lower bound.
///
/// Boundary semantics (fixed after an audit of the cap arithmetic):
/// `truncated` is set **iff at least one complete path was actually
/// skipped**. Earlier the cap was tested on *entry to every search
/// node*, so a search that found exactly `max_paths` paths — or even
/// one that found none at all under `max_paths == 0` — reported
/// `truncated` just because the DFS still had dead-end branches to
/// visit. Now a run whose path count genuinely fits the cap reports
/// `truncated == false` and is exact, and `paths_explored` never
/// exceeds `max_paths`.
pub fn path_enumeration(
    v: &mut ApVerifier,
    src: NodeId,
    dst: NodeId,
    max_paths: u64,
) -> EnumResult {
    struct Dfs<'a> {
        v: &'a mut ApVerifier,
        dst: NodeId,
        max_paths: u64,
        paths: u64,
        truncated: bool,
        delivered: Ref,
        on_path: Vec<bool>,
        path_edges: Vec<netrepro_graph::EdgeId>,
    }
    impl Dfs<'_> {
        /// The paper's given-path algorithm: intersect the port
        /// predicates along the path, then the deliver predicate at the
        /// destination.
        fn check_path(&mut self) {
            let mut pred = netrepro_bdd::TRUE;
            self.v.manager.ref_inc(pred);
            for i in 0..self.path_edges.len() {
                let e = self.path_edges[i];
                let (hop_src, _) = self.v.graph_endpoints(e);
                let set = self
                    .v
                    .tables[hop_src.index()]
                    .iter()
                    .find_map(|(a, s)| match a {
                        Action::Forward(pe) if *pe == e => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| AtomSet::empty(self.v.num_atoms()));
                let port_bdd = self.v.atoms.to_bdd(&mut self.v.manager, &set);
                let next = self.v.manager.and(pred, port_bdd);
                self.v.manager.ref_inc(next);
                self.v.manager.ref_dec(pred);
                pred = next;
                if pred == FALSE {
                    break;
                }
            }
            if pred != FALSE {
                let deliver = self
                    .v
                    .tables[self.dst.index()]
                    .iter()
                    .find(|(a, _)| *a == Action::Deliver)
                    .map(|(_, s)| s.clone());
                if let Some(s) = deliver {
                    let dp = self.v.atoms.to_bdd(&mut self.v.manager, &s);
                    let got = self.v.manager.and(pred, dp);
                    let nd = self.v.manager.or(self.delivered, got);
                    self.v.manager.ref_inc(nd);
                    if !self.delivered.is_terminal() {
                        self.v.manager.ref_dec(self.delivered);
                    }
                    self.delivered = nd;
                }
            }
            self.v.manager.ref_dec(pred);
        }

        fn go(&mut self, u: NodeId) {
            if self.truncated {
                return; // a path has been skipped; unwind
            }
            if u == self.dst {
                // The cap is charged only when a *complete* path is
                // found past it — dead-end branches never trip it.
                if self.paths >= self.max_paths {
                    self.truncated = true;
                    return;
                }
                self.paths += 1;
                self.check_path();
                return;
            }
            self.on_path[u.index()] = true;
            // Follow the forwarding adjacency (every port some rule
            // forwards to), with NO pruning by the predicate collected
            // so far — that is exactly the mistake the missing detail
            // caused.
            let hops: Vec<netrepro_graph::EdgeId> = self.v.tables[u.index()]
                .iter()
                .filter_map(|(a, s)| match a {
                    Action::Forward(e) if !s.is_empty() => Some(*e),
                    _ => None,
                })
                .collect();
            for e in hops {
                let next = self.v.graph_endpoints(e).1;
                if self.on_path[next.index()] {
                    continue; // simple paths only
                }
                self.path_edges.push(e);
                self.go(next);
                self.path_edges.pop();
            }
            self.on_path[u.index()] = false;
        }
    }

    let n = v.tables.len();
    let mut dfs = Dfs {
        v,
        dst,
        max_paths,
        paths: 0,
        truncated: false,
        delivered: FALSE,
        on_path: vec![false; n],
        path_edges: Vec::new(),
    };
    dfs.go(src);
    EnumResult {
        delivered: dfs.delivered,
        paths_explored: dfs.paths,
        truncated: dfs.truncated,
    }
}

/// A forwarding loop witness: the repeated device and the atoms caught
/// in the cycle.
#[derive(Debug, Clone)]
pub struct LoopWitness {
    /// The device the packet revisits.
    pub device: NodeId,
    /// Atoms that traverse the cycle.
    pub atoms: AtomSet,
}

/// Detect forwarding loops: DFS from every device tracking the atom set
/// alive on the current path; a non-empty revisit is a loop. Returns at
/// most `cap` witnesses — one per looping device, in ascending device
/// order, with the atoms unioned over every cycle through that device.
///
/// Cap semantics (fixed after an audit of the boundary arithmetic):
/// `cap` bounds *distinct looping devices*. Earlier the cap counted raw
/// DFS back-edge hits before a post-hoc dedup-by-device, so a single
/// device with several cycles could eat the whole budget and the caller
/// got fewer distinct witnesses than `cap` even though more looping
/// devices existed. Now `find_loops(v, c)` is exactly the first `c`
/// entries of `find_loops(v, usize::MAX)` — a prefix property the
/// proptests lock in.
pub fn find_loops(v: &ApVerifier, cap: usize) -> Vec<LoopWitness> {
    let n = v.tables.len();
    let universe = v.num_atoms();
    let mut out: Vec<LoopWitness> = Vec::new();
    for start in 0..n {
        if out.len() >= cap {
            break;
        }
        let mut on_path = vec![false; n];
        let mut atoms = AtomSet::empty(universe);
        dfs_loops(
            v,
            NodeId(start as u32),
            NodeId(start as u32),
            &AtomSet::full(universe),
            &mut on_path,
            &mut atoms,
            0,
        );
        if !atoms.is_empty() {
            out.push(LoopWitness { device: NodeId(start as u32), atoms });
        }
    }
    out
}

fn dfs_loops(
    v: &ApVerifier,
    start: NodeId,
    u: NodeId,
    alive: &AtomSet,
    on_path: &mut [bool],
    acc: &mut AtomSet,
    depth: usize,
) {
    if depth > v.tables.len() {
        return;
    }
    on_path[u.index()] = true;
    for (action, set) in &v.tables[u.index()] {
        if let Action::Forward(e) = action {
            let next = v.graph_endpoints(*e).1;
            let surviving = alive.intersect(set);
            if surviving.is_empty() {
                continue;
            }
            if next == start {
                acc.union_in_place(&surviving);
                continue;
            }
            if !on_path[next.index()] {
                dfs_loops(v, start, next, &surviving, on_path, acc, depth + 1);
            }
        }
    }
    on_path[u.index()] = false;
}

/// Blackhole report: atoms injected at `src` that arrive at some device
/// and are dropped there (explicitly or by the default residue).
pub fn blackholes(v: &ApVerifier, src: NodeId) -> Vec<(NodeId, AtomSet)> {
    let n = v.tables.len();
    let universe = v.num_atoms();
    let mut reached: Vec<AtomSet> = (0..n).map(|_| AtomSet::empty(universe)).collect();
    reached[src.index()] = AtomSet::full(universe);
    let mut work = vec![src];
    while let Some(u) = work.pop() {
        let here = reached[u.index()].clone();
        for (action, set) in &v.tables[u.index()] {
            if let Action::Forward(e) = action {
                let out = here.intersect(set);
                if out.is_empty() {
                    continue;
                }
                let next = v.graph_endpoints(*e).1;
                if reached[next.index()].union_in_place(&out) && next != src {
                    work.push(next);
                }
            }
        }
    }
    let mut result = Vec::new();
    for (u, arrived) in reached.iter().enumerate().take(n) {
        let dropped = arrived.intersect(&v.drop_set(NodeId(u as u32)));
        if !dropped.is_empty() {
            result.push((NodeId(u as u32), dropped));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::ApVerifier;
    use crate::dataset::{generate, DatasetOpts};
    use crate::header::HeaderLayout;
    use crate::network::{Network, Rule};
    use crate::Prefix;
    use netrepro_bdd::EngineProfile;
    use netrepro_graph::gen::ring;
    use netrepro_graph::DiGraph;

    fn ring_ds(n: usize) -> crate::dataset::FibDataset {
        generate(ring(n, 1.0), HeaderLayout::new(12), &DatasetOpts::default())
    }

    #[test]
    fn bfs_finds_owned_prefix_reachability() {
        let ds = ring_ds(5);
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        for s in 0..5u32 {
            for d in 0..5u32 {
                if s == d {
                    continue;
                }
                let r = selective_bfs(&v, NodeId(s), NodeId(d));
                assert!(
                    !r.delivered.is_empty(),
                    "expected {s}->{d} to deliver d's prefix"
                );
            }
        }
    }

    #[test]
    fn bfs_and_enumeration_agree_on_small_net() {
        let ds = ring_ds(5);
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        for (s, d) in [(0u32, 2u32), (1, 4), (3, 0)] {
            let bfs = selective_bfs(&v, NodeId(s), NodeId(d));
            let bfs_bdd = v.atoms.to_bdd(&mut v.manager, &bfs.delivered);
            let en = path_enumeration(&mut v, NodeId(s), NodeId(d), 1_000_000);
            assert!(!en.truncated);
            assert_eq!(
                bfs_bdd, en.delivered,
                "strategies disagree on {s}->{d}"
            );
        }
    }

    #[test]
    fn truncated_enumeration_is_lower_bound() {
        let ds = ring_ds(6);
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let full = path_enumeration(&mut v, NodeId(0), NodeId(3), 1_000_000);
        let capped = path_enumeration(&mut v, NodeId(0), NodeId(3), 1);
        assert!(capped.truncated || capped.paths_explored <= 1);
        // The capped result must imply the full one.
        assert!(v.manager.implies(capped.delivered, full.delivered));
    }

    #[test]
    fn enumeration_at_exactly_cap_is_exact_not_truncated() {
        // Regression for the entry-check off-by-one: a run that finds
        // exactly `max_paths` complete paths (with dead-end branches
        // still pending) used to report `truncated`.
        let ds = ring_ds(6);
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let full = path_enumeration(&mut v, NodeId(0), NodeId(3), 1_000_000);
        assert!(!full.truncated);
        let exact = path_enumeration(&mut v, NodeId(0), NodeId(3), full.paths_explored);
        assert!(!exact.truncated, "exactly-cap run must not report truncation");
        assert_eq!(exact.paths_explored, full.paths_explored);
        assert_eq!(exact.delivered, full.delivered);
    }

    #[test]
    fn enumeration_cap_zero_without_paths_is_exact() {
        // cap=0 between disconnected devices: nothing is skipped, so
        // the result is exact, not truncated.
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let _b = g.add_node("b");
        let net = Network::new(g, HeaderLayout::new(8));
        let mut v = ApVerifier::build(&net, EngineProfile::Cached);
        let r = path_enumeration(&mut v, a, NodeId(1), 0);
        assert!(!r.truncated);
        assert_eq!(r.paths_explored, 0);
        assert_eq!(r.delivered, FALSE);
        // cap=0 where a path *does* exist must still flag truncation.
        let ds = ring_ds(4);
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let r = path_enumeration(&mut v, NodeId(0), NodeId(2), 0);
        assert!(r.truncated);
        assert_eq!(r.paths_explored, 0);
    }

    /// Inject seeded ping-pong loops between `pairs` adjacent ring
    /// devices, giving each pair its own full-length prefix.
    fn inject_ring_loops(ds: &mut crate::dataset::FibDataset, n: usize, seed: u64, pairs: usize) {
        for i in 0..pairs {
            let a = ((seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % n;
            let b = (a + 1) % n;
            let (na, nb) = (NodeId(a as u32), NodeId(b as u32));
            let ab = ds.network.graph.find_edge(na, nb).expect("ring edge");
            let ba = ds.network.graph.find_edge(nb, na).expect("ring edge");
            // Full-length prefix unique to the pair (12-bit layout).
            let p = Prefix { addr: ((seed.wrapping_add(i as u64 * 131)) % 4096) as u32, len: 12 };
            ds.network.device_mut(na).insert(Rule { prefix: p, priority: 13, action: Action::Forward(ab) });
            ds.network.device_mut(nb).insert(Rule { prefix: p, priority: 13, action: Action::Forward(ba) });
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// `find_loops(cap)` is exactly the `cap`-prefix of the uncapped
        /// witness list, for every cap — including 0 and exactly-cap.
        #[test]
        fn loop_cap_is_exact_prefix(seed in 0u64..1000, n in 4usize..8, pairs in 1usize..4) {
            let mut ds = ring_ds(n);
            inject_ring_loops(&mut ds, n, seed, pairs);
            let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
            let full = find_loops(&v, usize::MAX);
            proptest::prop_assert!(!full.is_empty(), "injected loops must be found");
            for cap in 0..=full.len() + 2 {
                let capped = find_loops(&v, cap);
                proptest::prop_assert_eq!(capped.len(), full.len().min(cap));
                for (got, want) in capped.iter().zip(full.iter()) {
                    proptest::prop_assert_eq!(got.device, want.device);
                    proptest::prop_assert_eq!(&got.atoms, &want.atoms);
                }
            }
        }

        /// The truncated-enumeration-is-lower-bound invariant, over every
        /// cap from 0 past the true path count, on seeded faulty rings.
        #[test]
        fn enumeration_lower_bound_over_all_caps(seed in 0u64..1000, n in 4usize..8) {
            let ds = generate(
                ring(n, 1.0),
                HeaderLayout::new(12),
                &DatasetOpts { prefixes_per_device: 1, fault_rate: 0.25, seed },
            );
            let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
            let (src, dst) = (NodeId(0), NodeId((n / 2) as u32));
            let full = path_enumeration(&mut v, src, dst, 1 << 40);
            proptest::prop_assert!(!full.truncated);
            for cap in 0..=full.paths_explored + 1 {
                let capped = path_enumeration(&mut v, src, dst, cap);
                // Never over-counts, and the result is a lower bound.
                proptest::prop_assert!(capped.paths_explored <= cap);
                proptest::prop_assert!(v.manager.implies(capped.delivered, full.delivered));
                if cap >= full.paths_explored {
                    // The whole path set fits: exact, not truncated.
                    proptest::prop_assert!(!capped.truncated);
                    proptest::prop_assert_eq!(capped.paths_explored, full.paths_explored);
                    proptest::prop_assert_eq!(capped.delivered, full.delivered);
                } else {
                    // Something was skipped: must say so.
                    proptest::prop_assert!(capped.truncated);
                    proptest::prop_assert_eq!(capped.paths_explored, cap);
                }
            }
        }
    }

    #[test]
    fn clean_dataset_has_no_loops() {
        let ds = ring_ds(6);
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        assert!(find_loops(&v, 10).is_empty());
    }

    #[test]
    fn injected_loop_is_detected() {
        // Two devices forwarding a prefix at each other.
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let (ab, ba) = g.add_bidi(a, b, 1.0, 1.0);
        let mut net = Network::new(g, HeaderLayout::new(8));
        let p = Prefix { addr: 0b1000_0000, len: 1 };
        net.device_mut(a).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ab) });
        net.device_mut(b).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ba) });
        let v = ApVerifier::build(&net, EngineProfile::Cached);
        let loops = find_loops(&v, 10);
        assert!(!loops.is_empty(), "ping-pong loop not found");
    }

    #[test]
    fn blackholes_on_clean_ring_are_residue_only() {
        let ds = ring_ds(4);
        let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        // Only the unowned residue of the address space may blackhole at
        // the source itself; owned prefixes must not appear.
        let bh = blackholes(&v, NodeId(0));
        for (dev, atoms) in bh {
            let deliver = v.deliver_set(dev);
            assert!(atoms.intersect(&deliver).is_empty());
        }
    }

    #[test]
    fn explicit_drop_creates_blackhole() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let (ab, _) = g.add_bidi(a, b, 1.0, 1.0);
        let mut net = Network::new(g, HeaderLayout::new(8));
        let p = Prefix { addr: 0b1000_0000, len: 1 };
        // a forwards p to b; b drops everything (no rules).
        net.device_mut(a).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ab) });
        let v = ApVerifier::build(&net, EngineProfile::Cached);
        let bh = blackholes(&v, a);
        let at_b: Vec<_> = bh.iter().filter(|(d, _)| *d == b).collect();
        assert_eq!(at_b.len(), 1);
        assert!(!at_b[0].1.is_empty());
    }
}
