//! APKeep (Zhang et al., NSDI 2020): real-time incremental data-plane
//! verification.
//!
//! APKeep maintains, per device, the *hit* predicate of every rule (its
//! match minus all higher-priority matches) and a port–predicate map
//! (PPM). A rule insertion or deletion is processed by identifying the
//! *changes* it causes — header spaces that move between ports — and
//! applying only those to the PPM. The insertion routine below is the
//! pseudocode the HotNets'23 paper reproduces as its Figure 6
//! (`IdentifyChangesInsert`), including the `bddEngine.diff`/`deRef`
//! reference-count discipline of the Java original.

use crate::ap::{AtomicPredicates, ApVerifier, AtomSet};
use crate::atoms::DynamicAtoms;
use crate::header::HeaderLayout;
use crate::network::{Action, Network, Rule};
use netrepro_bdd::{BddManager, EngineProfile, Ref, FALSE, TRUE};
use netrepro_graph::NodeId;

/// A behaviour change: header space `hs` moves from port `from` to
/// port `to` on one device.
#[derive(Debug, Clone, Copy)]
pub struct Change {
    /// The moved header space.
    pub hs: Ref,
    /// Previous action.
    pub from: Action,
    /// New action.
    pub to: Action,
}

#[derive(Debug, Clone)]
struct ApkRule {
    rule: Rule,
    /// The rule's hit: match minus all higher-priority matches.
    hit: Ref,
}

#[derive(Debug)]
struct ApkDevice {
    /// Decreasing priority; ties broken by insertion order (earlier wins).
    rules: Vec<ApkRule>,
    /// Hit of the implicit lowest-priority default-drop rule.
    default_hit: Ref,
}

/// The incremental verifier state.
#[derive(Debug)]
pub struct ApKeep {
    /// The BDD engine (JDD stand-in by default, per the paper both the
    /// open-source and reproduced APKeep use JDD).
    pub manager: BddManager,
    layout: HeaderLayout,
    devices: Vec<ApkDevice>,
    /// PPM: per device, `(action, predicate)` — disjoint, covers TRUE.
    ppm: Vec<Vec<(Action, Ref)>>,
    /// Real-time atomic predicates, maintained by split/merge on every
    /// change (APKeep's core structure; see [`crate::atoms`]).
    pub atoms: DynamicAtoms,
    /// Ports currently down (their traffic shows as dropped in the PPM).
    downed: std::collections::HashSet<netrepro_graph::EdgeId>,
    edge_endpoints: Vec<(NodeId, NodeId)>,
    /// Total changes identified so far (workload metric).
    pub changes_applied: u64,
}

impl ApKeep {
    /// An APKeep instance over the (rule-less) topology of `net`. Rules
    /// are fed through [`ApKeep::insert`] / [`ApKeep::remove`].
    pub fn new(net: &Network, profile: EngineProfile) -> Self {
        let mut manager = net.layout.manager(profile);
        let n = net.graph.num_nodes();
        let devices = (0..n)
            .map(|_| ApkDevice { rules: Vec::new(), default_hit: TRUE })
            .collect();
        let ppm = (0..n)
            .map(|_| {
                let p = vec![(Action::Drop, TRUE)];
                p
            })
            .collect();
        let _ = &mut manager;
        ApKeep {
            manager,
            layout: net.layout,
            devices,
            ppm,
            atoms: DynamicAtoms::new(n),
            downed: std::collections::HashSet::new(),
            edge_endpoints: net.graph.edges().map(|e| net.graph.endpoints(e)).collect(),
            changes_applied: 0,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Total installed rules (excluding the implicit defaults).
    pub fn num_rules(&self) -> usize {
        self.devices.iter().map(|d| d.rules.len()).sum()
    }

    /// Insert `rule` at `device`: identify the changes (Algorithm 1 /
    /// the HotNets paper's Figure 6) and apply them to the PPM.
    /// Returns the number of changes.
    pub fn insert(&mut self, device: NodeId, rule: Rule) -> usize {
        let m = &mut self.manager;
        let dev = &mut self.devices[device.index()];

        // r.hit <- r.match
        let matched = self.layout.prefix_pred(m, rule.prefix);
        let mut hit = matched;
        m.ref_inc(hit);

        let mut changes: Vec<Change> = Vec::new();

        // Pass 1: subtract every higher-priority hit (>= : existing
        // rules win priority ties, matching FIB insertion semantics).
        for r in dev.rules.iter().filter(|r| r.rule.priority >= rule.priority) {
            let inter = m.and(hit, r.hit);
            if inter != FALSE {
                let new_hit = m.diff(hit, r.hit);
                m.ref_inc(new_hit);
                m.ref_dec(hit);
                hit = new_hit;
                if hit == FALSE {
                    break;
                }
            }
        }

        // Pass 2: steal from lower-priority hits, emitting changes where
        // the egress differs (Figure 6's second branch).
        if hit != FALSE {
            for r in dev.rules.iter_mut().filter(|r| r.rule.priority < rule.priority) {
                let inter = m.and(hit, r.hit);
                if inter != FALSE {
                    if r.rule.action != rule.action {
                        m.ref_inc(inter);
                        changes.push(Change { hs: inter, from: r.rule.action, to: rule.action });
                    }
                    let new_hit = m.diff(r.hit, hit);
                    m.ref_inc(new_hit);
                    m.ref_dec(r.hit);
                    r.hit = new_hit;
                }
            }
            // Remainder comes from the default-drop rule.
            let from_default = m.and(hit, dev.default_hit);
            if from_default != FALSE {
                if rule.action != Action::Drop {
                    m.ref_inc(from_default);
                    changes.push(Change { hs: from_default, from: Action::Drop, to: rule.action });
                }
                let nd = m.diff(dev.default_hit, hit);
                m.ref_inc(nd);
                if !dev.default_hit.is_terminal() {
                    m.ref_dec(dev.default_hit);
                }
                dev.default_hit = nd;
            }
        }

        // Insert r into R (decreasing priority, stable).
        let pos = dev.rules.partition_point(|r| r.rule.priority >= rule.priority);
        dev.rules.insert(pos, ApkRule { rule, hit });

        let n = changes.len();
        self.apply_changes(device, changes);
        n
    }

    /// What-if analysis: the changes `rule` *would* cause at `device`,
    /// without mutating any state. Operators use this to vet an update
    /// before committing it (APKeep's change-identification is pure up
    /// to the hit bookkeeping, so the preview recomputes hits locally).
    /// Returns `(from, to, moved-fraction-of-header-space)` triples.
    pub fn preview_insert(&mut self, device: NodeId, rule: Rule) -> Vec<(Action, Action, f64)> {
        let m = &mut self.manager;
        let dev = &self.devices[device.index()];
        let matched = self.layout.prefix_pred(m, rule.prefix);
        let mut hit = matched;
        for r in dev.rules.iter().filter(|r| r.rule.priority >= rule.priority) {
            hit = m.diff(hit, r.hit);
            if hit == FALSE {
                break;
            }
        }
        let mut out = Vec::new();
        if hit != FALSE {
            for r in dev.rules.iter().filter(|r| r.rule.priority < rule.priority) {
                if r.rule.action != rule.action {
                    let inter = m.and(hit, r.hit);
                    if inter != FALSE {
                        out.push((r.rule.action, rule.action, m.sat_fraction(inter)));
                    }
                }
            }
            if rule.action != Action::Drop {
                let from_default = m.and(hit, self.devices[device.index()].default_hit);
                if from_default != FALSE {
                    out.push((Action::Drop, rule.action, m.sat_fraction(from_default)));
                }
            }
        }
        out
    }

    /// Remove the first installed rule equal to `rule`, redistributing
    /// its hit downward. Returns the number of changes, or `None` if the
    /// rule was not installed.
    pub fn remove(&mut self, device: NodeId, rule: &Rule) -> Option<usize> {
        let dev_idx = device.index();
        let pos = self.devices[dev_idx].rules.iter().position(|r| r.rule == *rule)?;
        let removed = self.devices[dev_idx].rules.remove(pos);
        let m = &mut self.manager;

        let mut remaining = removed.hit;
        let mut changes: Vec<Change> = Vec::new();

        // Lower-priority rules reclaim the freed space in priority order.
        for r in self.devices[dev_idx].rules[pos..].iter_mut() {
            if remaining == FALSE {
                break;
            }
            let rmatch = self.layout.prefix_pred(m, r.rule.prefix);
            let moved = m.and(remaining, rmatch);
            if moved != FALSE {
                if r.rule.action != removed.rule.action {
                    m.ref_inc(moved);
                    changes.push(Change { hs: moved, from: removed.rule.action, to: r.rule.action });
                }
                let nh = m.or(r.hit, moved);
                m.ref_inc(nh);
                m.ref_dec(r.hit);
                r.hit = nh;
                let nr = m.diff(remaining, rmatch);
                m.ref_inc(nr);
                m.ref_dec(remaining);
                remaining = nr;
            }
        }
        // Whatever is left falls back to default drop.
        if remaining != FALSE {
            if removed.rule.action != Action::Drop {
                m.ref_inc(remaining);
                changes.push(Change { hs: remaining, from: removed.rule.action, to: Action::Drop });
            }
            let dev = &mut self.devices[dev_idx];
            let nd = m.or(dev.default_hit, remaining);
            m.ref_inc(nd);
            if !dev.default_hit.is_terminal() {
                m.ref_dec(dev.default_hit);
            }
            dev.default_hit = nd;
            m.ref_dec(remaining);
        }

        let n = changes.len();
        self.apply_changes(device, changes);
        Some(n)
    }

    fn apply_changes(&mut self, device: NodeId, changes: Vec<Change>) {
        // A downed port behaves as Drop in the PPM (the FIB still names
        // it; see link_down/link_up), so translate before applying.
        let mut translated = Vec::with_capacity(changes.len());
        for mut ch in changes {
            if let Action::Forward(e) = ch.from {
                if self.downed.contains(&e) {
                    ch.from = Action::Drop;
                }
            }
            if let Action::Forward(e) = ch.to {
                if self.downed.contains(&e) {
                    ch.to = Action::Drop;
                }
            }
            if ch.from == ch.to {
                if !ch.hs.is_terminal() {
                    self.manager.ref_dec(ch.hs);
                }
                continue;
            }
            translated.push(ch);
        }
        self.apply_changes_raw(device, translated);
    }

    /// Take a port down: every header space the owning device currently
    /// forwards out of `edge` behaves as dropped until [`ApKeep::link_up`].
    /// Returns the number of changes (0 or 1). Idempotent.
    pub fn link_down(&mut self, edge: netrepro_graph::EdgeId) -> usize {
        if !self.downed.insert(edge) {
            return 0;
        }
        let device = self.edge_endpoints[edge.index()].0;
        let moved = self.union_of_hits(device, edge);
        if moved == FALSE {
            return 0;
        }
        // union_of_hits left one protection on `moved`.
        let changes = vec![Change { hs: moved, from: Action::Forward(edge), to: Action::Drop }];
        // apply_changes translates `to`; `from` must stay the live port,
        // so temporarily... the translation maps Forward(downed) -> Drop
        // on BOTH sides; bypass it by applying directly.
        self.apply_changes_raw(device, changes);
        1
    }

    /// Bring a port back: the forwarding space returns from Drop.
    /// Returns the number of changes (0 or 1). Idempotent.
    pub fn link_up(&mut self, edge: netrepro_graph::EdgeId) -> usize {
        if !self.downed.remove(&edge) {
            return 0;
        }
        let device = self.edge_endpoints[edge.index()].0;
        let moved = self.union_of_hits(device, edge);
        if moved == FALSE {
            return 0;
        }
        let changes = vec![Change { hs: moved, from: Action::Drop, to: Action::Forward(edge) }];
        self.apply_changes_raw(device, changes);
        1
    }

    /// Whether a port is currently down.
    pub fn is_down(&self, edge: netrepro_graph::EdgeId) -> bool {
        self.downed.contains(&edge)
    }

    /// Union of the hits of every installed rule forwarding out of
    /// `edge` on `device`; the result carries one protection.
    fn union_of_hits(&mut self, device: NodeId, edge: netrepro_graph::EdgeId) -> Ref {
        let m = &mut self.manager;
        let mut acc = FALSE;
        m.ref_inc(acc);
        for r in &self.devices[device.index()].rules {
            if r.rule.action == Action::Forward(edge) {
                let na = m.or(acc, r.hit);
                m.ref_inc(na);
                m.ref_dec(acc);
                acc = na;
            }
        }
        acc
    }

    /// Apply changes without the downed-port translation (used by the
    /// link events themselves, whose `from`/`to` are already final).
    fn apply_changes_raw(&mut self, device: NodeId, changes: Vec<Change>) {
        let m = &mut self.manager;
        let ppm = &mut self.ppm[device.index()];
        for ch in changes {
            self.atoms.apply_change(m, device.index(), ch.hs, ch.from, ch.to);
            if let Some(entry) = ppm.iter_mut().find(|(a, _)| *a == ch.from) {
                let np = m.diff(entry.1, ch.hs);
                m.ref_inc(np);
                if !entry.1.is_terminal() {
                    m.ref_dec(entry.1);
                }
                entry.1 = np;
            }
            match ppm.iter_mut().find(|(a, _)| *a == ch.to) {
                Some(entry) => {
                    let np = m.or(entry.1, ch.hs);
                    m.ref_inc(np);
                    if !entry.1.is_terminal() {
                        m.ref_dec(entry.1);
                    }
                    entry.1 = np;
                }
                None => {
                    m.ref_inc(ch.hs);
                    ppm.push((ch.to, ch.hs));
                }
            }
            if !ch.hs.is_terminal() {
                m.ref_dec(ch.hs);
            }
            self.changes_applied += 1;
        }
    }

    /// The PPM predicate for `(device, action)` (FALSE if absent).
    pub fn ppm_pred(&self, device: NodeId, action: Action) -> Ref {
        self.ppm[device.index()]
            .iter()
            .find(|(a, _)| *a == action)
            .map(|&(_, p)| p)
            .unwrap_or(FALSE)
    }

    /// Number of atomic predicates — O(1), read off the real-time
    /// [`DynamicAtoms`] structure. The headline metric Table C compares
    /// against the batch AP verifier.
    pub fn num_atomic_predicates(&mut self) -> usize {
        self.atoms.len()
    }

    /// Recompute the atom count from scratch by refining the PPM
    /// predicates (the batch algorithm). Used to cross-validate the
    /// incremental maintenance; tests assert it always equals
    /// [`ApKeep::num_atomic_predicates`].
    pub fn recount_atomic_predicates(&mut self) -> usize {
        let sources: Vec<Ref> = self
            .ppm
            .iter()
            .flatten()
            .map(|&(_, p)| p)
            .filter(|p| !p.is_terminal())
            .collect();
        let atoms = AtomicPredicates::compute(&mut self.manager, &sources);
        let n = atoms.len();
        atoms.release(&mut self.manager);
        n
    }

    /// Snapshot the PPM into atom-set tables compatible with the
    /// [`crate::reach`] traversals (loop / blackhole checks).
    pub fn snapshot(mut self) -> ApVerifier {
        let sources: Vec<Ref> = self
            .ppm
            .iter()
            .flatten()
            .map(|&(_, p)| p)
            .filter(|p| !p.is_terminal())
            .collect();
        let num_predicates = sources.len();
        let atoms = AtomicPredicates::compute(&mut self.manager, &sources);
        let tables: Vec<Vec<(Action, AtomSet)>> = self
            .ppm
            .iter()
            .map(|preds| {
                preds
                    .iter()
                    .map(|&(a, p)| (a, atoms.represent(&mut self.manager, p)))
                    .collect()
            })
            .collect();
        ApVerifier {
            manager: self.manager,
            atoms,
            tables,
            num_predicates,
            edge_endpoints: self.edge_endpoints.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetOpts};
    use crate::header::Prefix;
    use crate::network::Network;
    use netrepro_graph::gen::ring;
    use netrepro_graph::DiGraph;

    fn two_nodes(width: u32) -> (Network, NodeId, NodeId, netrepro_graph::EdgeId) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 1.0, 1.0);
        g.add_edge(b, a, 1.0, 1.0);
        (Network::new(g, HeaderLayout::new(width)), a, b, e)
    }

    #[test]
    fn insert_moves_space_from_default() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        let n = k.insert(a, Rule {
            prefix: Prefix { addr: 0b1000_0000, len: 1 },
            priority: 1,
            action: Action::Forward(e),
        });
        assert_eq!(n, 1, "one change: half the space leaves default-drop");
        let fwd = k.ppm_pred(a, Action::Forward(e));
        assert_eq!(k.manager.sat_count(fwd), 128.0);
        let drop = k.ppm_pred(a, Action::Drop);
        assert_eq!(k.manager.sat_count(drop), 128.0);
    }

    #[test]
    fn shadowed_insert_causes_no_change() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        k.insert(a, Rule { prefix: Prefix { addr: 0, len: 0 }, priority: 5, action: Action::Forward(e) });
        // Lower-priority rule entirely shadowed: zero changes.
        let n = k.insert(a, Rule { prefix: Prefix { addr: 0b1100_0000, len: 2 }, priority: 2, action: Action::Drop });
        assert_eq!(n, 0);
    }

    #[test]
    fn same_action_movement_is_not_a_change() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        k.insert(a, Rule { prefix: Prefix { addr: 0, len: 1 }, priority: 1, action: Action::Forward(e) });
        // Higher-priority rule to the same port: space moves between
        // rules but behaviour is unchanged -> no change emitted.
        let n = k.insert(a, Rule { prefix: Prefix { addr: 0b0100_0000, len: 2 }, priority: 2, action: Action::Forward(e) });
        assert_eq!(n, 0);
        let fwd = k.ppm_pred(a, Action::Forward(e));
        assert_eq!(k.manager.sat_count(fwd), 128.0);
    }

    #[test]
    fn remove_restores_previous_behaviour() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        let r = Rule { prefix: Prefix { addr: 0b1000_0000, len: 1 }, priority: 1, action: Action::Forward(e) };
        k.insert(a, r);
        let n = k.remove(a, &r).expect("installed");
        assert_eq!(n, 1);
        assert_eq!(k.ppm_pred(a, Action::Forward(e)), FALSE);
        assert_eq!(k.manager.sat_count(k.ppm_pred(a, Action::Drop)), 256.0);
    }

    #[test]
    fn remove_uncovers_shadowed_rule() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        let low = Rule { prefix: Prefix { addr: 0b1000_0000, len: 1 }, priority: 1, action: Action::Forward(e) };
        let high = Rule { prefix: Prefix { addr: 0b1100_0000, len: 2 }, priority: 2, action: Action::Drop };
        k.insert(a, low);
        k.insert(a, high);
        k.remove(a, &high).unwrap();
        // The /2 slice returns to the low rule's port.
        let fwd = k.ppm_pred(a, Action::Forward(e));
        assert_eq!(k.manager.sat_count(fwd), 128.0);
    }

    #[test]
    fn remove_missing_rule_is_none() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        let r = Rule { prefix: Prefix { addr: 0, len: 1 }, priority: 1, action: Action::Forward(e) };
        assert!(k.remove(a, &r).is_none());
    }

    #[test]
    fn incremental_ppm_matches_batch_compilation() {
        // Feed a whole dataset through APKeep; the resulting PPM must
        // equal the batch-compiled port predicates of the network.
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts { fault_rate: 0.5, seed: 7, ..Default::default() });
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        for v in ds.network.graph.nodes() {
            let pp = ds.network.port_predicates(&mut k.manager, v);
            for &(action, batch_pred) in &pp.preds {
                let incr = k.ppm_pred(v, action);
                assert_eq!(incr, batch_pred, "device {v:?} action {action:?} differs");
            }
        }
    }

    #[test]
    fn atom_count_matches_ap_verifier() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        let ap = ApVerifier::build(&ds.network, EngineProfile::Cached);
        assert_eq!(k.num_atomic_predicates(), ap.num_atoms());
    }

    #[test]
    fn snapshot_supports_reachability() {
        let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        let v = k.snapshot();
        let r = crate::reach::selective_bfs(&v, NodeId(0), NodeId(2));
        assert!(!r.delivered.is_empty());
    }

    #[test]
    fn preview_matches_actual_insert() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        k.insert(a, Rule { prefix: Prefix { addr: 0, len: 1 }, priority: 1, action: Action::Forward(e) });
        let candidate = Rule { prefix: Prefix { addr: 0, len: 0 }, priority: 0, action: Action::Drop };
        // Preview: nothing moves (the /1 shadows half, default drop owns
        // the rest, and the candidate is itself a drop).
        let preview = k.preview_insert(a, candidate);
        assert!(preview.is_empty(), "{preview:?}");
        let n = k.insert(a, candidate);
        assert_eq!(n, 0, "actual insert must match the preview");
    }

    #[test]
    fn preview_reports_moved_fractions_without_mutating() {
        let (net, a, _, e) = two_nodes(8);
        let mut k = ApKeep::new(&net, EngineProfile::Cached);
        let candidate = Rule { prefix: Prefix { addr: 0b1000_0000, len: 1 }, priority: 1, action: Action::Forward(e) };
        let preview = k.preview_insert(a, candidate);
        assert_eq!(preview.len(), 1);
        let (from, to, frac) = preview[0];
        assert_eq!(from, Action::Drop);
        assert_eq!(to, Action::Forward(e));
        assert!((frac - 0.5).abs() < 1e-12);
        // State untouched: still zero rules, full drop, one atom.
        assert_eq!(k.num_rules(), 0);
        assert_eq!(k.num_atomic_predicates(), 1);
        // Committing produces exactly the previewed change.
        assert_eq!(k.insert(a, candidate), 1);
    }

    #[test]
    fn insert_then_remove_round_trips_everything() {
        let ds = generate(ring(4, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
        let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.insert(v, *r);
            }
        }
        for v in ds.network.graph.nodes() {
            for r in &ds.network.device(v).rules {
                k.remove(v, r).expect("was installed");
            }
        }
        assert_eq!(k.num_rules(), 0);
        for v in ds.network.graph.nodes() {
            assert_eq!(k.manager.sat_count(k.ppm_pred(v, Action::Drop)), 2f64.powi(12));
        }
        assert_eq!(k.num_atomic_predicates(), 1);
    }
}
