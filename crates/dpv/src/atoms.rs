//! Dynamic atomic-predicate maintenance — APKeep's core data structure.
//!
//! APKeep keeps the network's atomic predicates *incrementally*: each
//! behaviour change `(device, header space, from-port, to-port)` splits
//! the atoms that straddle the moved space and merges atoms that become
//! behaviourally indistinguishable. Because every device's PPM
//! partitions the header space, an atom is fully described by its
//! *signature* — the action it receives at each device — and two atoms
//! merge exactly when their signatures coincide.

use crate::network::Action;
use netrepro_bdd::{BddManager, Ref, FALSE, TRUE};
use std::collections::HashMap;

/// One atom: its header space and per-device action signature.
#[derive(Debug, Clone)]
struct Atom {
    pred: Ref,
    signature: Vec<Action>,
}

/// The dynamically maintained atom set.
#[derive(Debug)]
pub struct DynamicAtoms {
    atoms: Vec<Atom>,
    /// Signature → atom index (kept in sync for eager merging).
    index: HashMap<Vec<Action>, usize>,
    /// Split/merge counters for the workload metrics.
    pub splits: u64,
    /// Number of merges performed.
    pub merges: u64,
}

impl DynamicAtoms {
    /// The initial single atom: everything dropped everywhere.
    pub fn new(num_devices: usize) -> Self {
        let signature = vec![Action::Drop; num_devices];
        let mut index = HashMap::new();
        index.insert(signature.clone(), 0);
        DynamicAtoms {
            atoms: vec![Atom { pred: TRUE, signature }],
            index,
            splits: 0,
            merges: 0,
        }
    }

    /// Current number of atomic predicates.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True only before the first atom exists (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Apply one behaviour change: on `device`, header space `hs` moves
    /// from action `from` to action `to`.
    pub fn apply_change(
        &mut self,
        m: &mut BddManager,
        device: usize,
        hs: Ref,
        from: Action,
        to: Action,
    ) {
        debug_assert_ne!(from, to, "not a behaviour change");
        let mut touched: Vec<Atom> = Vec::new();
        let mut i = 0;
        while i < self.atoms.len() {
            if self.atoms[i].signature[device] != from {
                i += 1;
                continue;
            }
            let inter = m.and(self.atoms[i].pred, hs);
            if inter == FALSE {
                i += 1;
                continue;
            }
            // Remove the atom (swap_remove keeps the scan O(n)).
            self.index.remove(&self.atoms[i].signature);
            let atom = self.atoms.swap_remove(i);
            if let Some(moved) = self.atoms.get(i) {
                self.index.insert(moved.signature.clone(), i);
            }
            let outside = m.diff(atom.pred, hs);
            if outside != FALSE {
                // Straddling atom: split.
                self.splits += 1;
                m.ref_inc(outside);
                touched.push(Atom { pred: outside, signature: atom.signature.clone() });
            }
            m.ref_inc(inter);
            let mut sig = atom.signature;
            sig[device] = to;
            touched.push(Atom { pred: inter, signature: sig });
            if !atom.pred.is_terminal() {
                m.ref_dec(atom.pred);
            }
            // Do not advance: swap_remove placed a new atom at `i`.
        }
        // Re-insert, merging into existing atoms with equal signatures.
        for atom in touched {
            match self.index.get(&atom.signature) {
                Some(&idx) => {
                    self.merges += 1;
                    let merged = m.or(self.atoms[idx].pred, atom.pred);
                    m.ref_inc(merged);
                    if !self.atoms[idx].pred.is_terminal() {
                        m.ref_dec(self.atoms[idx].pred);
                    }
                    if !atom.pred.is_terminal() {
                        m.ref_dec(atom.pred);
                    }
                    self.atoms[idx].pred = merged;
                }
                None => {
                    self.index.insert(atom.signature.clone(), self.atoms.len());
                    self.atoms.push(atom);
                }
            }
        }
    }

    /// Sanity invariants: atoms are disjoint, exhaustive, non-empty and
    /// uniquely signed. Used by tests; O(n²) BDD work.
    pub fn check_invariants(&self, m: &mut BddManager) -> Result<(), String> {
        let mut union = FALSE;
        for (i, a) in self.atoms.iter().enumerate() {
            if a.pred == FALSE {
                return Err(format!("atom {i} is empty"));
            }
            for (j, b) in self.atoms.iter().enumerate().skip(i + 1) {
                if m.and(a.pred, b.pred) != FALSE {
                    return Err(format!("atoms {i} and {j} overlap"));
                }
                if a.signature == b.signature {
                    return Err(format!("atoms {i} and {j} share a signature (unmerged)"));
                }
            }
            union = m.or(union, a.pred);
        }
        if union != TRUE {
            return Err("atoms do not cover the header space".to_string());
        }
        if self.index.len() != self.atoms.len() {
            return Err("signature index out of sync".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_bdd::EngineProfile;
    use netrepro_graph::EdgeId;

    fn fwd(e: u32) -> Action {
        Action::Forward(EdgeId(e))
    }

    #[test]
    fn starts_as_one_atom() {
        let d = DynamicAtoms::new(3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn change_splits_the_universe() {
        let mut m = BddManager::new(8, EngineProfile::Cached);
        let mut d = DynamicAtoms::new(2);
        let half = m.field_prefix(0, 8, 0b1000_0000, 1);
        m.ref_inc(half);
        d.apply_change(&mut m, 0, half, Action::Drop, fwd(0));
        assert_eq!(d.len(), 2);
        d.check_invariants(&mut m).unwrap();
    }

    #[test]
    fn inverse_change_merges_back() {
        let mut m = BddManager::new(8, EngineProfile::Cached);
        let mut d = DynamicAtoms::new(2);
        let half = m.field_prefix(0, 8, 0b1000_0000, 1);
        m.ref_inc(half);
        d.apply_change(&mut m, 0, half, Action::Drop, fwd(0));
        assert_eq!(d.len(), 2);
        d.apply_change(&mut m, 0, half, fwd(0), Action::Drop);
        assert_eq!(d.len(), 1, "undo must merge the atoms back");
        assert!(d.merges >= 1);
        d.check_invariants(&mut m).unwrap();
    }

    #[test]
    fn changes_on_different_devices_compose() {
        let mut m = BddManager::new(8, EngineProfile::Cached);
        let mut d = DynamicAtoms::new(2);
        let left = m.field_prefix(0, 8, 0b1000_0000, 1);
        m.ref_inc(left);
        let quarter = m.field_prefix(0, 8, 0b1100_0000, 2);
        m.ref_inc(quarter);
        d.apply_change(&mut m, 0, left, Action::Drop, fwd(0));
        d.apply_change(&mut m, 1, quarter, Action::Drop, fwd(1));
        // Atoms: left∖quarter, quarter, complement-of-left -> 3.
        assert_eq!(d.len(), 3);
        d.check_invariants(&mut m).unwrap();
    }

    #[test]
    fn overlapping_change_splits_straddlers() {
        let mut m = BddManager::new(8, EngineProfile::Cached);
        let mut d = DynamicAtoms::new(1);
        let left = m.field_prefix(0, 8, 0b0000_0000, 1);
        m.ref_inc(left);
        d.apply_change(&mut m, 0, left, Action::Drop, fwd(0));
        // Middle range straddles both current atoms.
        let middle = m.field_range(0, 7, 32, 96); // uses low 7 bits... keep within vars
        m.ref_inc(middle);
        d.apply_change(&mut m, 0, middle, Action::Drop, fwd(1));
        d.check_invariants(&mut m).unwrap();
        assert!(d.splits >= 1);
    }
}
