//! Partitioned hyper-scale verification: per-destination reachability,
//! blackhole and loop verdicts over disjoint destination chunks, each
//! chunk served by its **own** [`BddManager`].
//!
//! The global atomic-predicates pipeline ([`crate::ap`]) computes one
//! shared atom universe — inherently serial and quadratic-ish in rule
//! diversity, fine at WAN scale, hopeless on a 10k-device DCN. This
//! module takes the HeTu-style route instead: verification decomposes
//! *by destination prefix*. For one destination `p` every device's
//! behaviour collapses to a tiny LPM-restricted predicate table, and a
//! backward fixpoint over the forwarding adjacency classifies every
//! injector exactly:
//!
//! * `D(v)` — headers in `p` injected at `v` that are eventually
//!   delivered (least fixpoint seeded by the owner's deliver rule);
//! * `B(v)` — headers that eventually hit an explicit drop or the
//!   unmatched residue (blackholes);
//! * `p ∖ D(v) ∖ B(v)` — headers that never terminate: a forwarding
//!   loop, exact because LPM forwarding is deterministic per header.
//!
//! Destinations are independent, so any partition of the destination
//! list into chunks — each verified by a private manager — yields the
//! *same* verdicts as one serial manager: a [`DestVerdict`] contains
//! only semantic data (device counts, exact header counts, sorted
//! device ids), never manager state. That is the determinism argument
//! the partition/merge layer in `core` and the byte-identity proptests
//! rest on; [`render`] fixes the byte encoding.

use crate::header::Prefix;
use crate::network::{Action, Network};
use netrepro_bdd::{BddError, BddManager, EngineProfile, Ref, FALSE};
use netrepro_graph::NodeId;
use std::collections::VecDeque;
use std::ops::Range;

/// Errors surfaced by the partitioned verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleError {
    /// The chunk's BDD manager exhausted its node budget (or another
    /// typed BDD fault). The worker is intact; the coordinator decides
    /// whether to retry with a larger budget.
    Bdd(BddError),
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleError::Bdd(e) => write!(f, "scale verification failed: {e}"),
        }
    }
}

impl std::error::Error for ScaleError {}

impl From<BddError> for ScaleError {
    fn from(e: BddError) -> Self {
        ScaleError::Bdd(e)
    }
}

/// Options shared by the serial and partitioned verifiers.
#[derive(Debug, Clone, Copy)]
pub struct ScaleOpts {
    /// Engine profile for every chunk manager.
    pub profile: EngineProfile,
    /// Hard per-manager node budget (see [`BddManager::try_and`]);
    /// `None` = unbounded.
    pub node_cap: Option<usize>,
}

impl Default for ScaleOpts {
    fn default() -> Self {
        ScaleOpts { profile: EngineProfile::Cached, node_cap: None }
    }
}

/// Manager-independent verdict for one destination prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestVerdict {
    /// Owner device of the destination prefix.
    pub dest: u32,
    /// The destination prefix.
    pub prefix: Prefix,
    /// Devices whose entire `p`-space is delivered (`D(v) = p`).
    pub full: u32,
    /// Devices with partial delivery (`∅ ⊂ D(v) ⊂ p`).
    pub partial: u32,
    /// Devices delivering nothing (`D(v) = ∅`).
    pub none: u32,
    /// Exact delivered header count, summed over devices (`Σ |D(v)|`).
    pub delivered_headers: u64,
    /// Devices that locally drop some `p`-header.
    pub bh_local: u32,
    /// Devices from which some `p`-header eventually blackholes.
    pub bh_devices: u32,
    /// Exact blackholed header count, summed over devices (`Σ |B(v)|`).
    pub bh_headers: u64,
    /// Devices (ascending) from which some `p`-header loops forever.
    pub loop_devices: Vec<u32>,
}

/// Split `n` items into `parts` contiguous, near-equal, canonical
/// ranges (the first `n % parts` ranges are one longer). `parts` is
/// clamped to at least 1; ranges past `n` come back empty.
pub fn partition_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Verify a slice of destinations with one private manager. This is
/// both the chunk worker (callers partition `dests` and call this per
/// chunk) and, over the full list, the serial reference verifier.
///
/// The manager is garbage-collected between destinations whenever the
/// table outgrows a threshold, so memory stays bounded by the largest
/// single destination, not the chunk length. GC timing never affects
/// verdicts — they are extracted as plain counts before the next
/// destination begins.
pub fn verify_destinations(
    net: &Network,
    dests: &[(NodeId, Prefix)],
    opts: &ScaleOpts,
) -> Result<Vec<DestVerdict>, ScaleError> {
    let mut mgr = match opts.node_cap {
        Some(cap) => BddManager::with_node_cap(net.layout.total_bits(), opts.profile, cap),
        None => net.layout.manager(opts.profile),
    };
    // GC once the table holds more garbage than half the budget (or a
    // fixed high-water mark when unbounded).
    let gc_mark = opts.node_cap.map_or(1 << 16, |c| (c / 2).max(1));
    let mut out = Vec::with_capacity(dests.len());
    for &(owner, prefix) in dests {
        out.push(verify_one(net, &mut mgr, owner, prefix)?);
        if mgr.node_count() > gc_mark {
            // Nothing is protected between destinations: a full sweep.
            mgr.gc();
        }
    }
    Ok(out)
}

/// One destination: LPM-restrict every device to `p`, run the backward
/// delivery and blackhole fixpoints, classify every injector.
fn verify_one(
    net: &Network,
    m: &mut BddManager,
    owner: NodeId,
    prefix: Prefix,
) -> Result<DestVerdict, ScaleError> {
    let n = net.graph.num_nodes();
    let width = net.layout.width;
    let p = net.layout.prefix_pred(m, prefix);

    // Per-device forwarding adjacency and local deliver/drop predicates,
    // all restricted to `p` under first-match LPM semantics.
    let mut fwd: Vec<Vec<(u32, Ref)>> = vec![Vec::new(); n];
    let mut deliver: Vec<Ref> = vec![FALSE; n];
    let mut local_drop: Vec<Ref> = vec![FALSE; n];
    for (v, dev) in net.devices.iter().enumerate() {
        let mut covered = FALSE; // within p
        for rule in &dev.rules {
            // Prefixes that do not overlap `p` contribute nothing to
            // the restriction; skip them without any BDD work.
            if !(rule.prefix.covers(&prefix, width) || prefix.covers(&rule.prefix, width)) {
                continue;
            }
            let matched_raw = net.layout.prefix_pred(m, rule.prefix);
            let matched = m.try_and(matched_raw, p)?;
            let hit = m.try_diff(matched, covered)?;
            covered = m.try_or(covered, matched)?;
            if hit == FALSE {
                continue;
            }
            match rule.action {
                Action::Forward(e) => {
                    let next = net.graph.endpoints(e).1;
                    fwd[v].push((next.0, hit));
                }
                Action::Deliver => deliver[v] = m.try_or(deliver[v], hit)?,
                Action::Drop => local_drop[v] = m.try_or(local_drop[v], hit)?,
            }
            if covered == p {
                break; // everything in p is matched; rest is shadowed
            }
        }
        // Unmatched residue within p drops implicitly.
        let residue = m.try_diff(p, covered)?;
        if residue != FALSE {
            local_drop[v] = m.try_or(local_drop[v], residue)?;
        }
    }

    // Reverse adjacency for the backward fixpoints.
    let mut radj: Vec<Vec<(u32, Ref)>> = vec![Vec::new(); n];
    for (v, outs) in fwd.iter().enumerate() {
        for &(next, pred) in outs {
            radj[next as usize].push((v as u32, pred));
        }
    }

    let delivered = backward_fixpoint(m, &deliver, &radj)?;
    let blackholed = backward_fixpoint(m, &local_drop, &radj)?;

    let mut verdict = DestVerdict {
        dest: owner.0,
        prefix,
        full: 0,
        partial: 0,
        none: 0,
        delivered_headers: 0,
        bh_local: 0,
        bh_devices: 0,
        bh_headers: 0,
        loop_devices: Vec::new(),
    };
    for v in 0..n {
        let d = delivered[v];
        if d == p {
            verdict.full += 1;
        } else if d == FALSE {
            verdict.none += 1;
        } else {
            verdict.partial += 1;
        }
        // Header widths stay ≤ 32 bits, so sat counts are exact in f64
        // and fit u64.
        verdict.delivered_headers += m.sat_count(d) as u64;
        if local_drop[v] != FALSE {
            verdict.bh_local += 1;
        }
        let b = blackholed[v];
        if b != FALSE {
            verdict.bh_devices += 1;
            verdict.bh_headers += m.sat_count(b) as u64;
        }
        let term = m.try_or(d, b)?;
        let looping = m.try_diff(p, term)?;
        if looping != FALSE {
            verdict.loop_devices.push(v as u32);
        }
    }
    Ok(verdict)
}

/// Least fixpoint of `X(v) = base(v) ∨ ⋁ {pred ∧ X(next)}` computed
/// backward over the reverse adjacency with a worklist. Monotone over a
/// finite lattice, so termination is structural; the worklist order
/// only affects intermediate work, never the result.
fn backward_fixpoint(
    m: &mut BddManager,
    base: &[Ref],
    radj: &[Vec<(u32, Ref)>],
) -> Result<Vec<Ref>, ScaleError> {
    let n = base.len();
    let mut x: Vec<Ref> = base.to_vec();
    let mut queued = vec![false; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for v in 0..n {
        if x[v] != FALSE {
            queue.push_back(v as u32);
            queued[v] = true;
        }
    }
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let xu = x[u as usize];
        for &(v, pred) in &radj[u as usize] {
            let contrib = m.try_and(pred, xu)?;
            if contrib == FALSE {
                continue;
            }
            let nv = m.try_or(x[v as usize], contrib)?;
            if nv != x[v as usize] {
                x[v as usize] = nv;
                if !queued[v as usize] {
                    queue.push_back(v);
                    queued[v as usize] = true;
                }
            }
        }
    }
    Ok(x)
}

/// Canonical byte rendering of a verdict slice: one fixed-format line
/// per destination. Byte-identity of partitioned vs serial verification
/// is asserted over exactly this encoding (plus [`digest`] of it).
pub fn render(verdicts: &[DestVerdict]) -> String {
    let mut s = String::with_capacity(verdicts.len() * 96 + 16);
    for v in verdicts {
        s.push_str(&format!(
            "dest={} prefix={:x}/{} full={} partial={} none={} delivered={} bh_local={} bh_dev={} bh_headers={} loops={}",
            v.dest,
            v.prefix.addr,
            v.prefix.len,
            v.full,
            v.partial,
            v.none,
            v.delivered_headers,
            v.bh_local,
            v.bh_devices,
            v.bh_headers,
            v.loop_devices.len(),
        ));
        for (i, d) in v.loop_devices.iter().take(8).enumerate() {
            s.push_str(if i == 0 { "[" } else { "," });
            s.push_str(&d.to_string());
        }
        if !v.loop_devices.is_empty() {
            s.push(']');
        }
        s.push('\n');
    }
    s
}

/// Deterministically sample `queries` distinct destination indices out
/// of `total` (everything, when `queries >= total`), returned
/// **ascending** so the sampled list is itself canonical. A seeded
/// partial Fisher–Yates shuffle: O(total) memory, O(queries) swaps.
pub fn sample_dests(total: usize, queries: usize, seed: u64) -> Vec<usize> {
    if queries >= total {
        return (0..total).collect();
    }
    let mut idx: Vec<usize> = (0..total).collect();
    let mut state = seed ^ 0x5ca1_e0de_5eed_0001;
    for i in 0..queries {
        // splitmix64 step — the same generator the fabric's ECMP hash
        // uses, so sampling stays dependency-free and reproducible.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let j = i + (z as usize % (total - i));
        idx.swap(i, j);
    }
    let mut out = idx[..queries].to_vec();
    out.sort_unstable();
    out
}

/// FNV-1a 64 digest of a rendered verdict block — a compact fingerprint
/// for journals and bench reports.
pub fn digest(rendered: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{build, FabricSpec};
    use crate::network::Rule;
    use crate::sim::{simulate, Packet, Verdict};

    fn fabric_dests(f: &crate::fabric::Fabric) -> Vec<(NodeId, Prefix)> {
        (0..f.num_dests()).map(|i| f.dest(i)).collect()
    }

    #[test]
    fn clean_fabric_is_fully_reachable() {
        let f = build(&FabricSpec::new(4, 9));
        let dests = fabric_dests(&f);
        let verdicts = verify_destinations(&f.network, &dests, &ScaleOpts::default()).expect("verify");
        let devs = f.num_devices() as u32;
        for v in &verdicts {
            // Every device — hosts default-route upward too — delivers
            // the whole host prefix on an unfaulted fabric.
            assert_eq!(v.full, devs, "dest {}: {v:?}", v.dest);
            assert_eq!(v.partial, 0);
            assert_eq!(v.none, 0);
            assert_eq!(v.bh_devices, 0);
            assert!(v.loop_devices.is_empty());
            // Each of the `devs` devices delivers the full /host block
            // (2 headers wide at k=4: 5-bit space, 4-bit prefix).
            assert_eq!(v.delivered_headers, u64::from(devs) * 2);
        }
    }

    #[test]
    fn chunked_equals_serial_on_clean_and_churned_fabrics() {
        for link_down in [0usize, 12] {
            let f = build(&FabricSpec { k: 4, seed: 21, link_down, with_hosts: true });
            let dests = fabric_dests(&f);
            let serial = verify_destinations(&f.network, &dests, &ScaleOpts::default()).expect("serial");
            for parts in [1usize, 2, 4, 8] {
                let mut chunked = Vec::new();
                for r in partition_ranges(dests.len(), parts) {
                    let chunk =
                        verify_destinations(&f.network, &dests[r], &ScaleOpts::default()).expect("chunk");
                    chunked.extend(chunk);
                }
                assert_eq!(chunked, serial, "P={parts} link_down={link_down}");
                assert_eq!(render(&chunked), render(&serial));
            }
        }
    }

    #[test]
    fn churn_produces_blackholes_agreeing_with_simulation() {
        let f = build(&FabricSpec { k: 4, seed: 2, link_down: 10, with_hosts: true });
        let dests = fabric_dests(&f);
        let verdicts = verify_destinations(&f.network, &dests, &ScaleOpts::default()).expect("verify");
        assert!(
            verdicts.iter().any(|v| v.bh_devices > 0),
            "10 severed links on a k=4 fabric must blackhole something"
        );
        // Cross-check every verdict class against the packet simulator.
        for (i, v) in verdicts.iter().enumerate() {
            let (_, pfx) = f.dest(i);
            let lo = pfx.addr; // lowest address in the block
            for dev in 0..f.num_devices() {
                let sim = simulate(&f.network, NodeId(dev as u32), Packet { dst: lo, src: 0, dport: 0 }, 256);
                let delivered = matches!(sim, Verdict::Delivered(at) if at.0 == v.dest);
                if v.full == f.num_devices() as u32 {
                    assert!(delivered, "dest {i} dev {dev}: verdict says full but sim {sim:?}");
                }
                if v.delivered_headers == 0 {
                    assert!(!delivered, "dest {i} dev {dev}: verdict says none but sim delivered");
                }
            }
        }
    }

    #[test]
    fn injected_ping_pong_loop_is_witnessed_exactly() {
        let mut f = build(&FabricSpec { k: 4, seed: 5, link_down: 0, with_hosts: false });
        // Make edge(0,0) and agg(0,1) ping-pong a remote pod's prefix
        // with rules more specific than anything the fabric installed.
        let dest_idx = f.num_dests() - 1; // a pod-3 host
        let (owner, pfx) = f.dest(dest_idx);
        let e00 = f.tree.edge(0, 0);
        let a01 = f.tree.agg(0, 1);
        let up = f.network.graph.find_edge(e00, a01).expect("edge↔agg");
        let down = f.network.graph.find_edge(a01, e00).expect("agg↔edge");
        let hot = Rule { prefix: pfx, priority: pfx.len as u32, action: Action::Forward(up) };
        f.network.device_mut(e00).insert(hot);
        f.network
            .device_mut(a01)
            .insert(Rule { prefix: pfx, priority: pfx.len as u32, action: Action::Forward(down) });
        let verdicts =
            verify_destinations(&f.network, &[(owner, pfx)], &ScaleOpts::default()).expect("verify");
        let v = &verdicts[0];
        assert!(
            v.loop_devices.contains(&e00.0) && v.loop_devices.contains(&a01.0),
            "cycle members must be loop devices: {v:?}"
        );
        // The simulator agrees the loop exists.
        let sim = simulate(&f.network, e00, Packet { dst: pfx.addr, src: 0, dport: 0 }, 512);
        assert!(matches!(sim, Verdict::Looping(_)), "sim says {sim:?}");
    }

    #[test]
    fn node_cap_exhaustion_is_typed_and_chunk_scoped() {
        let f = build(&FabricSpec::new(4, 1));
        // Fabric rules align exactly with host blocks, so per-host
        // destinations hash-cons into already-minted predicate nodes.
        // The ANY destination forces unions of *disjoint* host blocks —
        // genuinely new nodes — which a tight cap must refuse.
        let any = vec![(f.dest(0).0, Prefix::ANY)];
        let tight = ScaleOpts { profile: EngineProfile::Cached, node_cap: Some(8) };
        match verify_destinations(&f.network, &any, &tight) {
            Err(ScaleError::Bdd(BddError::TableExhausted { nodes, cap })) => {
                // `prefix_pred` builds base predicates with infallible
                // (soft-cap) ops, so `nodes` may already sit above the
                // cap; the typed refusal is what matters here.
                assert_eq!(cap, 8);
                assert!(nodes >= cap, "refusal fires only at or above the cap");
            }
            other => panic!("expected TableExhausted, got {other:?}"),
        }
        // A sane budget verifies the same query and the whole fabric.
        let roomy = ScaleOpts { profile: EngineProfile::Cached, node_cap: Some(1 << 16) };
        assert!(verify_destinations(&f.network, &any, &roomy).is_ok());
        assert!(verify_destinations(&f.network, &fabric_dests(&f), &roomy).is_ok());
    }

    #[test]
    fn profiles_agree_on_verdicts() {
        let f = build(&FabricSpec { k: 4, seed: 13, link_down: 6, with_hosts: true });
        let dests = fabric_dests(&f);
        let cached = verify_destinations(
            &f.network,
            &dests,
            &ScaleOpts { profile: EngineProfile::Cached, node_cap: None },
        )
        .expect("cached");
        let uncached = verify_destinations(
            &f.network,
            &dests,
            &ScaleOpts { profile: EngineProfile::Uncached, node_cap: None },
        )
        .expect("uncached");
        assert_eq!(cached, uncached);
    }

    #[test]
    fn partition_ranges_are_contiguous_and_exhaustive() {
        for n in [0usize, 1, 7, 16, 129] {
            for parts in [1usize, 2, 3, 4, 8, 200] {
                let ranges = partition_ranges(n, parts);
                assert_eq!(ranges.len(), parts.max(1));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, n);
                let (a, b) = (ranges[0].len(), ranges[ranges.len() - 1].len());
                assert!(a >= b && a - b <= 1, "near-equal chunks: {a} vs {b}");
            }
        }
    }

    #[test]
    fn render_is_stable() {
        let v = DestVerdict {
            dest: 3,
            prefix: Prefix { addr: 0x18, len: 4 },
            full: 30,
            partial: 2,
            none: 4,
            delivered_headers: 66,
            bh_local: 1,
            bh_devices: 5,
            bh_headers: 9,
            loop_devices: vec![7, 9],
        };
        assert_eq!(
            render(&[v]),
            "dest=3 prefix=18/4 full=30 partial=2 none=4 delivered=66 bh_local=1 bh_dev=5 bh_headers=9 loops=2[7,9]\n"
        );
    }
}
