//! APKeep link up/down events: topology changes must flow through the
//! PPM and the dynamic atoms exactly like rule changes do.

use netrepro_bdd::EngineProfile;
use netrepro_dpv::apkeep::ApKeep;
use netrepro_dpv::dataset::{generate, DatasetOpts};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::network::Action;
use netrepro_dpv::reach::selective_bfs;
use netrepro_graph::gen::ring;
use netrepro_graph::NodeId;

fn loaded_apkeep() -> (ApKeep, netrepro_dpv::dataset::FibDataset) {
    let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
    let mut k = ApKeep::new(&ds.network, EngineProfile::Cached);
    for v in ds.network.graph.nodes() {
        for r in &ds.network.device(v).rules {
            k.insert(v, *r);
        }
    }
    (k, ds)
}

#[test]
fn link_down_moves_traffic_to_drop() {
    let (mut k, ds) = loaded_apkeep();
    let e = ds.network.graph.out_edges(NodeId(0))[0];
    let before = k.manager.sat_count(k.ppm_pred(NodeId(0), Action::Forward(e)));
    assert!(before > 0.0);
    assert_eq!(k.link_down(e), 1);
    assert_eq!(k.manager.sat_count(k.ppm_pred(NodeId(0), Action::Forward(e))), 0.0);
    let invariant = k.atoms.check_invariants(&mut k.manager);
    assert!(invariant.is_ok(), "{invariant:?}");
}

#[test]
fn link_up_restores_exactly() {
    let (mut k, ds) = loaded_apkeep();
    let e = ds.network.graph.out_edges(NodeId(0))[0];
    let before = k.ppm_pred(NodeId(0), Action::Forward(e));
    let atoms_before = k.num_atomic_predicates();
    k.link_down(e);
    k.link_up(e);
    assert_eq!(k.ppm_pred(NodeId(0), Action::Forward(e)), before);
    assert_eq!(k.num_atomic_predicates(), atoms_before);
    assert_eq!(k.num_atomic_predicates(), k.recount_atomic_predicates());
}

#[test]
fn link_events_are_idempotent() {
    let (mut k, ds) = loaded_apkeep();
    let e = ds.network.graph.out_edges(NodeId(1))[0];
    assert_eq!(k.link_down(e), 1);
    assert_eq!(k.link_down(e), 0);
    assert!(k.is_down(e));
    assert_eq!(k.link_up(e), 1);
    assert_eq!(k.link_up(e), 0);
    assert!(!k.is_down(e));
}

#[test]
fn insert_while_down_lands_in_drop() {
    let (mut k, ds) = loaded_apkeep();
    // Take down every out-edge of device 3, then insert a fresh rule
    // forwarding out of one of them: the PPM must show it as dropped.
    let dev = NodeId(3);
    let e = ds.network.graph.out_edges(dev)[0];
    k.link_down(e);
    let fresh = netrepro_dpv::network::Rule {
        prefix: netrepro_dpv::Prefix { addr: 0xF00, len: 12 },
        priority: 12,
        action: Action::Forward(e),
    };
    k.insert(dev, fresh);
    assert_eq!(
        k.manager.sat_count(k.ppm_pred(dev, Action::Forward(e))),
        0.0,
        "space routed to a downed port must read as Drop"
    );
    // Bringing the link back exposes the rule.
    k.link_up(e);
    assert!(k.manager.sat_count(k.ppm_pred(dev, Action::Forward(e))) > 0.0);
    assert_eq!(k.num_atomic_predicates(), k.recount_atomic_predicates());
}

#[test]
fn reachability_reflects_failures() {
    let (mut k, ds) = loaded_apkeep();
    // Ring: cutting both of node 0's out-edges isolates it as a source.
    let edges: Vec<_> = ds.network.graph.out_edges(NodeId(0)).to_vec();
    for e in &edges {
        k.link_down(*e);
    }
    let v = k.snapshot();
    let r = selective_bfs(&v, NodeId(0), NodeId(2));
    assert!(r.delivered.is_empty(), "no path may survive total egress failure");
}
