//! ACLs end-to-end: egress filters must change reachability exactly as
//! the scan oracle predicts, for both verifiers and both engines.

use netrepro_bdd::EngineProfile;
use netrepro_dpv::acl::{AclRule, AclTable};
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::dataset::{generate, DatasetOpts};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::network::{Action, Network, Rule};
use netrepro_dpv::reach::selective_bfs;
use netrepro_dpv::Prefix;
use netrepro_graph::gen::ring;
use netrepro_graph::{DiGraph, NodeId};

/// a -> b -> c chain; b's egress toward c denies one half of c's prefix.
fn chain_with_acl() -> (Network, NodeId, NodeId, NodeId) {
    let mut g = DiGraph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let ab = g.add_edge(a, b, 1.0, 1.0);
    let bc = g.add_edge(b, c, 1.0, 1.0);
    let layout = HeaderLayout::with_acl_fields(8, 4, 0);
    let mut net = Network::new(g, layout);
    let c_prefix = Prefix { addr: 0b1000_0000, len: 1 };
    net.device_mut(a).insert(Rule { prefix: c_prefix, priority: 1, action: Action::Forward(ab) });
    net.device_mut(b).insert(Rule { prefix: c_prefix, priority: 1, action: Action::Forward(bc) });
    net.device_mut(c).insert(Rule { prefix: c_prefix, priority: 1, action: Action::Deliver });
    // Deny the lower half of c's prefix at b's egress.
    let denied = Prefix { addr: 0b1000_0000, len: 2 };
    net.set_egress_acl(
        bc,
        AclTable {
            rules: vec![AclRule::deny(Prefix::ANY, denied), AclRule::permit(Prefix::ANY, Prefix::ANY)],
            default_deny: true,
        },
    );
    (net, a, b, c)
}

#[test]
fn acl_cuts_reachability_in_half() {
    let (net, a, _b, c) = chain_with_acl();
    let mut v = ApVerifier::build(&net, EngineProfile::Cached);
    let r = selective_bfs(&v, a, c);
    let delivered = v.atoms.to_bdd(&mut v.manager, &r.delivered);
    // Without the ACL, 1/2 of the space (the /1) would arrive; the ACL
    // removes the /2 inside it, leaving 1/4.
    assert!((v.manager.sat_fraction(delivered) - 0.25).abs() < 1e-12);
}

#[test]
fn acl_denied_space_becomes_blackhole_at_the_filtering_hop() {
    let (net, a, b, _c) = chain_with_acl();
    let v = ApVerifier::build(&net, EngineProfile::Cached);
    let bh = netrepro_dpv::reach::blackholes(&v, a);
    let at_b: Vec<_> = bh.into_iter().filter(|(d, _)| *d == b).collect();
    assert_eq!(at_b.len(), 1, "the denied slice must drop at b");
    assert!(!at_b[0].1.is_empty());
}

#[test]
fn profiles_agree_with_acls() {
    let (net, a, _b, c) = chain_with_acl();
    let fast = ApVerifier::build(&net, EngineProfile::Cached);
    let slow = ApVerifier::build(&net, EngineProfile::Uncached);
    assert_eq!(fast.num_atoms(), slow.num_atoms());
    let rf = selective_bfs(&fast, a, c);
    let rs = selective_bfs(&slow, a, c);
    assert_eq!(rf.delivered, rs.delivered);
}

#[test]
fn source_scoped_acl_filters_by_source() {
    // Same chain, but the ACL denies only one source /1.
    let mut g = DiGraph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let ab = g.add_edge(a, b, 1.0, 1.0);
    let layout = HeaderLayout::with_acl_fields(6, 6, 0);
    let mut net = Network::new(g, layout);
    let p = Prefix { addr: 0b100000, len: 1 };
    net.device_mut(a).insert(Rule { prefix: p, priority: 1, action: Action::Forward(ab) });
    net.device_mut(b).insert(Rule { prefix: p, priority: 1, action: Action::Deliver });
    let bad_src = Prefix { addr: 0b110000, len: 2 };
    net.set_egress_acl(
        ab,
        AclTable {
            rules: vec![AclRule::deny(bad_src, Prefix::ANY), AclRule::permit(Prefix::ANY, Prefix::ANY)],
            default_deny: true,
        },
    );
    let mut v = ApVerifier::build(&net, EngineProfile::Cached);
    let r = selective_bfs(&v, a, b);
    let delivered = v.atoms.to_bdd(&mut v.manager, &r.delivered);
    // Delivered fraction: dst in /1 (1/2) × src not in /2 (3/4) = 3/8.
    assert!((v.manager.sat_fraction(delivered) - 0.375).abs() < 1e-12);
}

#[test]
fn permit_all_acl_changes_nothing() {
    let ds = generate(ring(5, 1.0), HeaderLayout::new(12), &DatasetOpts::default());
    let base = ApVerifier::build(&ds.network, EngineProfile::Cached);
    let mut with_acl = ds.network.clone();
    for e in with_acl.graph.edges().collect::<Vec<_>>() {
        with_acl.set_egress_acl(e, AclTable::permit_all());
    }
    let v = ApVerifier::build(&with_acl, EngineProfile::Cached);
    assert_eq!(base.num_atoms(), v.num_atoms());
    for s in 0..5u32 {
        for d in 0..5u32 {
            if s == d {
                continue;
            }
            let rb = selective_bfs(&base, NodeId(s), NodeId(d));
            let rv = selective_bfs(&v, NodeId(s), NodeId(d));
            assert_eq!(rb.delivered, rv.delivered, "{s}->{d}");
        }
    }
}
