//! The strongest end-to-end check in the crate: for random datasets
//! and random concrete packets, the symbolic pipeline (atomic
//! predicates + selective BFS) must agree with the literal
//! packet-walking simulator on where every packet is delivered.

use netrepro_bdd::EngineProfile;
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::dataset::{generate, DatasetOpts};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::queries::ReachMatrix;
use netrepro_dpv::sim::{simulate, Packet, Verdict};
use netrepro_graph::gen::{waxman, TopologySpec};
use netrepro_graph::NodeId;
use proptest::prelude::*;

const WIDTH: u32 = 12;

fn packet_bits(addr: u32) -> Vec<bool> {
    (0..WIDTH).map(|i| (addr >> (WIDTH - 1 - i)) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulator_agrees_with_symbolic_reachability(
        seed in 0u64..400,
        nodes in 5usize..11,
        faults in 0.0f64..0.7,
        addrs in prop::collection::vec(0u32..(1 << WIDTH), 8),
    ) {
        let graph = waxman(&TopologySpec::new("oracle", nodes, seed));
        let ds = generate(
            graph,
            HeaderLayout::new(WIDTH),
            &DatasetOpts { prefixes_per_device: 1, fault_rate: faults, seed },
        );
        let mut v = ApVerifier::build(&ds.network, EngineProfile::Cached);
        let matrix = ReachMatrix::compute(&v);

        for &addr in &addrs {
            for s in 0..nodes {
                let verdict = simulate(
                    &ds.network,
                    NodeId(s as u32),
                    Packet { dst: addr, src: 0, dport: 0 },
                    4 * nodes,
                );
                match verdict {
                    Verdict::Delivered(at) => {
                        // The symbolic matrix must contain this packet in
                        // exactly the (s, at) delivered set.
                        for d in 0..nodes {
                            let set = matrix.get(NodeId(s as u32), NodeId(d as u32));
                            let bdd = v.atoms.to_bdd(&mut v.manager, set);
                            let member = v.manager.eval(bdd, &packet_bits(addr)) == Ok(true);
                            prop_assert_eq!(
                                member,
                                d == at.index(),
                                "packet {:#x} from {} delivered at {} but symbolic set of {} says {}",
                                addr, s, at.index(), d, member
                            );
                        }
                    }
                    Verdict::Dropped(_) | Verdict::Looping(_) => {
                        // The packet must appear in no delivered set from s.
                        for d in 0..nodes {
                            let set = matrix.get(NodeId(s as u32), NodeId(d as u32));
                            let bdd = v.atoms.to_bdd(&mut v.manager, set);
                            prop_assert!(
                                v.manager.eval(bdd, &packet_bits(addr)) != Ok(true),
                                "dropped/looping packet {:#x} from {} appears delivered at {}",
                                addr, s, d
                            );
                        }
                    }
                }
            }
        }
    }
}
