//! Property tests over the graph substrate: path algorithms, max-flow
//! bounds, partitioning and cut structure on random Waxman WANs.

use netrepro_graph::cuts::cut_structure;
use netrepro_graph::gen::{waxman, TopologySpec};
use netrepro_graph::maxflow::max_flow_value;
use netrepro_graph::partition::partition;
use netrepro_graph::paths::{bfs_path, dijkstra_path, k_shortest_paths};
use netrepro_graph::NodeId;
use proptest::prelude::*;

fn wan(nodes: usize, seed: u64) -> netrepro_graph::DiGraph {
    waxman(&TopologySpec::new("prop", nodes, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dijkstra_is_never_longer_than_any_k_path(seed in 0u64..1000, nodes in 6usize..24) {
        let g = wan(nodes, seed);
        let (s, d) = (NodeId(0), NodeId((nodes - 1) as u32));
        let best = dijkstra_path(&g, s, d, &vec![false; nodes], &vec![false; g.num_edges()]);
        let ks = k_shortest_paths(&g, s, d, 4);
        if let Some(best) = best {
            prop_assert!(!ks.is_empty());
            for p in &ks {
                prop_assert!(best.cost <= p.cost + 1e-12);
            }
            // Yen's output is sorted by cost.
            for w in ks.windows(2) {
                prop_assert!(w[0].cost <= w[1].cost + 1e-12);
            }
        } else {
            prop_assert!(ks.is_empty());
        }
    }

    #[test]
    fn k_paths_are_simple_and_distinct(seed in 0u64..1000, nodes in 6usize..20) {
        let g = wan(nodes, seed);
        let ks = k_shortest_paths(&g, NodeId(0), NodeId((nodes / 2) as u32), 5);
        for (i, p) in ks.iter().enumerate() {
            let nodes_on = p.nodes(&g);
            let mut dedup = nodes_on.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), nodes_on.len(), "path {} revisits a node", i);
            for q in &ks[i + 1..] {
                prop_assert_ne!(&p.edges, &q.edges, "duplicate path");
            }
        }
    }

    #[test]
    fn bfs_hop_count_is_minimal(seed in 0u64..500, nodes in 6usize..20) {
        let g = wan(nodes, seed);
        let (s, d) = (NodeId(1), NodeId((nodes - 2) as u32));
        if let Some(p) = bfs_path(&g, s, d, false) {
            // No k-shortest (by hops = uniform weights) path can be shorter.
            let mut uniform = g.clone();
            let _ = &mut uniform; // weights already positive; use dijkstra on hop metric
            // Build a hop-metric check: any dijkstra path with weight=1 per
            // edge has cost >= bfs hops. Approximate by comparing edge counts
            // of the dijkstra path on the real metric.
            let dj = dijkstra_path(&g, s, d, &vec![false; nodes], &vec![false; g.num_edges()]);
            if let Some(dj) = dj {
                prop_assert!(p.len() <= dj.len() || p.len() <= dj.edges.len());
            }
        }
    }

    #[test]
    fn maxflow_bounded_by_source_and_sink_capacity(seed in 0u64..500, nodes in 6usize..20) {
        let g = wan(nodes, seed);
        let (s, d) = (NodeId(0), NodeId((nodes - 1) as u32));
        let f = max_flow_value(&g, s, d);
        prop_assert!(f >= 0.0);
        prop_assert!(f <= g.out_capacity(s) + 1e-9);
        let in_cap: f64 = g.in_edges(d).iter().map(|&e| g.capacity(e)).sum();
        prop_assert!(f <= in_cap + 1e-9);
    }

    #[test]
    fn removing_a_bridge_really_disconnects(seed in 0u64..300, nodes in 6usize..18) {
        let g = wan(nodes, seed);
        let cs = cut_structure(&g);
        for &bridge in cs.bridges.iter().take(2) {
            let (s, d) = g.endpoints(bridge);
            let mut cut = g.clone();
            cut.set_capacity(bridge, 0.0);
            let (a, b) = (s, d);
            let rev = cut.find_edge(b, a);
            if let Some(r) = rev {
                cut.set_capacity(r, 0.0);
            }
            // With both directions of the bridge at zero capacity, no
            // capacity-respecting path crosses it.
            let p = bfs_path(&cut, a, b, true);
            prop_assert!(
                p.is_none(),
                "bridge {:?} removal left a path {:?}",
                bridge,
                p.map(|p| p.nodes(&cut))
            );
        }
    }

    #[test]
    fn partition_covers_and_is_deterministic(seed in 0u64..500, nodes in 4usize..30, k in 1usize..6) {
        let g = wan(nodes, seed);
        let p1 = partition(&g, k);
        let p2 = partition(&g, k);
        prop_assert_eq!(&p1.cluster_of, &p2.cluster_of);
        let total: usize = p1.members.iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, nodes);
        for (i, &c) in p1.cluster_of.iter().enumerate() {
            prop_assert!(p1.members[c].contains(&NodeId(i as u32)));
        }
    }
}
