//! Dinic's maximum-flow algorithm.
//!
//! Used as ground truth by the TE harness: NCFlow's objective on a
//! single commodity can never exceed the max-flow value, and the
//! baselines report their optimality gap against it.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// A max-flow instance built from a [`DiGraph`]'s capacities.
#[derive(Debug)]
pub struct MaxFlow {
    arcs: Vec<Arc>,
    head: Vec<Vec<usize>>,
}

impl MaxFlow {
    /// Build from a graph, using each edge's current capacity.
    pub fn from_graph(g: &DiGraph) -> Self {
        let mut mf = MaxFlow { arcs: Vec::new(), head: vec![Vec::new(); g.num_nodes()] };
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            mf.add_arc(s.index(), d.index(), g.capacity(e));
        }
        mf
    }

    /// Add a directed arc with capacity `cap`.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: f64) {
        let a = self.arcs.len();
        self.arcs.push(Arc { to, cap, rev: a + 1 });
        self.arcs.push(Arc { to: from, cap: 0.0, rev: a });
        self.head[from].push(a);
        self.head[to].push(a + 1);
    }

    /// Maximum s→t flow value. Mutates internal residual capacities, so
    /// call once per instance.
    pub fn run(&mut self, s: NodeId, t: NodeId) -> f64 {
        let (s, t) = (s.index(), t.index());
        if s == t {
            return 0.0;
        }
        let mut flow = 0.0;
        loop {
            let level = self.bfs_levels(s);
            if level[t].is_none() {
                return flow;
            }
            let mut it = vec![0usize; self.head.len()];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= 1e-12 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn bfs_levels(&self, s: usize) -> Vec<Option<u32>> {
        let mut level = vec![None; self.head.len()];
        level[s] = Some(0);
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            // Queued nodes always carry a level; skip defensively if not.
            let Some(du) = level[u] else { continue };
            for &ai in &self.head[u] {
                let a = &self.arcs[ai];
                if a.cap > 1e-12 && level[a.to].is_none() {
                    level[a.to] = Some(du + 1);
                    q.push_back(a.to);
                }
            }
        }
        level
    }

    fn dfs(&mut self, u: usize, t: usize, limit: f64, level: &[Option<u32>], it: &mut [usize]) -> f64 {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let ai = self.head[u][it[u]];
            let (to, cap) = {
                let a = &self.arcs[ai];
                (a.to, a.cap)
            };
            let ok = cap > 1e-12
                && matches!((level[u], level[to]), (Some(lu), Some(lt)) if lt == lu + 1);
            if ok {
                let pushed = self.dfs(to, t, limit.min(cap), level, it);
                if pushed > 1e-12 {
                    self.arcs[ai].cap -= pushed;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0.0
    }
}

/// Convenience: max-flow value from `s` to `t` on `g`.
pub fn max_flow_value(g: &DiGraph, s: NodeId, t: NodeId) -> f64 {
    MaxFlow::from_graph(g).run(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 7.0, 1.0);
        assert_eq!(max_flow_value(&g, a, b), 7.0);
    }

    #[test]
    fn series_takes_bottleneck() {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 3);
        g.add_edge(ns[0], ns[1], 7.0, 1.0);
        g.add_edge(ns[1], ns[2], 3.0, 1.0);
        assert_eq!(max_flow_value(&g, ns[0], ns[2]), 3.0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 4);
        g.add_edge(ns[0], ns[1], 4.0, 1.0);
        g.add_edge(ns[1], ns[3], 4.0, 1.0);
        g.add_edge(ns[0], ns[2], 5.0, 1.0);
        g.add_edge(ns[2], ns[3], 5.0, 1.0);
        assert_eq!(max_flow_value(&g, ns[0], ns[3]), 9.0);
    }

    #[test]
    fn classic_crossover_network() {
        // CLRS figure: max flow 23.
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 6); // s,v1,v2,v3,v4,t
        let (s, v1, v2, v3, v4, t) = (ns[0], ns[1], ns[2], ns[3], ns[4], ns[5]);
        g.add_edge(s, v1, 16.0, 1.0);
        g.add_edge(s, v2, 13.0, 1.0);
        g.add_edge(v1, v3, 12.0, 1.0);
        g.add_edge(v2, v1, 4.0, 1.0);
        g.add_edge(v2, v4, 14.0, 1.0);
        g.add_edge(v3, v2, 9.0, 1.0);
        g.add_edge(v3, t, 20.0, 1.0);
        g.add_edge(v4, v3, 7.0, 1.0);
        g.add_edge(v4, t, 4.0, 1.0);
        assert_eq!(max_flow_value(&g, s, t), 23.0);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert_eq!(max_flow_value(&g, a, b), 0.0);
    }

    #[test]
    fn zero_when_src_is_dst() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        assert_eq!(max_flow_value(&g, a, a), 0.0);
    }
}
