//! Traffic-matrix generators.
//!
//! NCFlow's evaluation uses gravity-model and Poisson-ish demand
//! matrices over its WANs; ARROW's uses scaled production matrices. We
//! provide seeded gravity, uniform and bimodal generators — the three
//! shapes the TE literature standardises on.

use crate::digraph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense traffic matrix: `demand[s][d]` in Gbps, zero on the diagonal.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// A zero matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix { n, demand: vec![0.0; n * n] }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `d`.
    pub fn get(&self, s: NodeId, d: NodeId) -> f64 {
        self.demand[s.index() * self.n + d.index()]
    }

    /// Set the demand from `s` to `d`.
    pub fn set(&mut self, s: NodeId, d: NodeId, v: f64) {
        assert!(s != d || v == 0.0, "diagonal demand must stay zero");
        self.demand[s.index() * self.n + d.index()] = v;
    }

    /// Sum of all demands.
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Nonzero `(src, dst, demand)` triples, row-major order.
    pub fn commodities(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                let v = self.demand[s * self.n + d];
                if v > 0.0 {
                    out.push((NodeId(s as u32), NodeId(d as u32), v));
                }
            }
        }
        out
    }

    /// Multiply every demand by `f`.
    pub fn scale(&mut self, f: f64) {
        for v in &mut self.demand {
            *v *= f;
        }
    }
}

/// Gravity model: each node gets a random "mass"; demand between two
/// nodes is proportional to the product of their masses, normalised so
/// the matrix total equals `total_demand`.
pub fn gravity(g: &DiGraph, total_demand: f64, seed: u64) -> TrafficMatrix {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    // Pareto-ish masses: a few heavy sites, many light ones.
    let mass: Vec<f64> = (0..n).map(|_| rng.random::<f64>().powi(2) + 0.01).collect();
    let mut tm = TrafficMatrix::zeros(n);
    let mut raw_total = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                raw_total += mass[s] * mass[d];
            }
        }
    }
    for s in 0..n {
        for d in 0..n {
            if s != d {
                let v = total_demand * mass[s] * mass[d] / raw_total;
                tm.demand[s * n + d] = v;
            }
        }
    }
    tm
}

/// Uniform model: every ordered pair gets `total_demand / (n·(n−1))`.
pub fn uniform(g: &DiGraph, total_demand: f64) -> TrafficMatrix {
    let n = g.num_nodes();
    let per = total_demand / (n * (n - 1)) as f64;
    let mut tm = TrafficMatrix::zeros(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                tm.demand[s * n + d] = per;
            }
        }
    }
    tm
}

/// Bimodal model: a fraction `heavy_frac` of pairs carry `heavy_ratio`×
/// the demand of the rest (normalised to `total_demand`).
pub fn bimodal(
    g: &DiGraph,
    total_demand: f64,
    heavy_frac: f64,
    heavy_ratio: f64,
    seed: u64,
) -> TrafficMatrix {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = vec![0.0; n * n];
    let mut raw = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                let w = if rng.random::<f64>() < heavy_frac { heavy_ratio } else { 1.0 };
                weights[s * n + d] = w;
                raw += w;
            }
        }
    }
    let mut tm = TrafficMatrix::zeros(n);
    for (cell, &w) in tm.demand.iter_mut().zip(&weights) {
        *cell = total_demand * w / raw;
    }
    tm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ring;

    #[test]
    fn gravity_total_is_normalised() {
        let g = ring(8, 1.0);
        let tm = gravity(&g, 100.0, 1);
        assert!((tm.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_diagonal_is_zero() {
        let g = ring(8, 1.0);
        let tm = gravity(&g, 100.0, 1);
        for n in g.nodes() {
            assert_eq!(tm.get(n, n), 0.0);
        }
    }

    #[test]
    fn gravity_is_deterministic() {
        let g = ring(8, 1.0);
        let a = gravity(&g, 100.0, 5);
        let b = gravity(&g, 100.0, 5);
        assert_eq!(a.demand, b.demand);
    }

    #[test]
    fn uniform_is_even() {
        let g = ring(5, 1.0);
        let tm = uniform(&g, 20.0);
        assert!((tm.get(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((tm.total() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bimodal_has_two_levels() {
        let g = ring(10, 1.0);
        let tm = bimodal(&g, 90.0, 0.2, 10.0, 3);
        assert!((tm.total() - 90.0).abs() < 1e-9);
        let mut values: Vec<f64> = tm.commodities().iter().map(|&(_, _, v)| v).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(values.len(), 2, "expected exactly two demand levels");
    }

    #[test]
    fn commodities_match_matrix() {
        let _g = ring(4, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set(NodeId(0), NodeId(2), 5.0);
        tm.set(NodeId(3), NodeId(1), 2.0);
        let c = tm.commodities();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&(NodeId(0), NodeId(2), 5.0)));
        assert!(c.contains(&(NodeId(3), NodeId(1), 2.0)));
    }

    #[test]
    fn scale_multiplies() {
        let g = ring(4, 1.0);
        let mut tm = uniform(&g, 12.0);
        tm.scale(0.5);
        assert!((tm.total() - 6.0).abs() < 1e-9);
    }
}
