//! Seeded synthetic topology generators.
//!
//! The paper's participants evaluated on real datasets (NCFlow's 13 TE
//! instances over Topology-Zoo WANs, the DPV papers' Internet2/Stanford/
//! Purdue-style router configurations). Those datasets are not
//! redistributable, so — per the substitution rule in `DESIGN.md` — this
//! module generates *seeded synthetic stand-ins of the same scale*:
//! Waxman-style random WANs with the node counts of the named originals.
//! Every relative comparison in the paper (reproduced vs open-source
//! prototype on the *same* instance) is preserved because both sides
//! always see identical instances.

use crate::digraph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a synthetic WAN.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Display name (e.g. the Topology-Zoo WAN it stands in for).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Waxman α (edge-probability scale; higher → denser).
    pub alpha: f64,
    /// Waxman β (distance decay; higher → longer links likelier).
    pub beta: f64,
    /// Capacity of every link, in Gbps.
    pub capacity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TopologySpec {
    /// A spec with WAN-ish defaults.
    pub fn new(name: &str, nodes: usize, seed: u64) -> Self {
        TopologySpec {
            name: name.to_string(),
            nodes,
            alpha: 0.4,
            beta: 0.25,
            capacity: 100.0,
            seed,
        }
    }
}

/// Generate a connected Waxman WAN: nodes are placed uniformly in the
/// unit square; each unordered pair gains a bidirectional link with
/// probability `α·exp(−d/(β·√2))`; a deterministic spanning chain over
/// the random placement guarantees connectivity. Link weights are the
/// Euclidean distances (so Dijkstra behaves like latency-based routing).
pub fn waxman(spec: &TopologySpec) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut g = DiGraph::new();
    let nodes = g.add_nodes(&format!("{}-", spec.name), spec.nodes);
    let pos: Vec<(f64, f64)> = (0..spec.nodes)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };

    // Spanning chain in x-order keeps the graph connected.
    let mut order: Vec<usize> = (0..spec.nodes).collect();
    order.sort_by(|&a, &b| pos[a].0.total_cmp(&pos[b].0));
    let mut connected = vec![vec![false; spec.nodes]; spec.nodes];
    for w in order.windows(2) {
        let (a, b) = (w[0], w[1]);
        g.add_bidi(nodes[a], nodes[b], spec.capacity, dist(a, b).max(1e-3));
        connected[a][b] = true;
        connected[b][a] = true;
    }

    let l = 2f64.sqrt();
    for a in 0..spec.nodes {
        for b in a + 1..spec.nodes {
            if connected[a][b] {
                continue;
            }
            let d = dist(a, b);
            let p = spec.alpha * (-d / (spec.beta * l)).exp();
            if rng.random::<f64>() < p {
                g.add_bidi(nodes[a], nodes[b], spec.capacity, d.max(1e-3));
            }
        }
    }
    g
}

/// The catalogue of stand-in instances used by the experiment harness.
/// Node counts mirror the Topology-Zoo WANs the NCFlow evaluation used;
/// the first few double as the DPV topologies (the AP/APKeep papers'
/// datasets are of comparable scale).
pub fn catalogue(seed: u64) -> Vec<TopologySpec> {
    let sized = [
        ("Abilene", 11),
        ("B4", 12),
        ("CRL", 33),
        ("GEANT", 40),
        ("Uninett", 74),
        ("Deltacom", 113),
        ("IonDeltacom", 125),
        ("TataNld", 145),
        ("UsCarrier", 158),
        ("Cogentco", 197),
        ("Colt", 153),
        ("GtsCe", 149),
        ("Kdl", 754),
    ];
    sized
        .iter()
        .enumerate()
        .map(|(i, (name, n))| TopologySpec::new(name, *n, seed.wrapping_add(i as u64)))
        .collect()
}

/// A simple bidirectional ring (useful in unit tests and examples).
pub fn ring(n: usize, capacity: f64) -> DiGraph {
    let mut g = DiGraph::new();
    let ns = g.add_nodes("r", n);
    for i in 0..n {
        g.add_bidi(ns[i], ns[(i + 1) % n], capacity, 1.0);
    }
    g
}

/// An `rows × cols` bidirectional grid.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> DiGraph {
    let mut g = DiGraph::new();
    let ns = g.add_nodes("g", rows * cols);
    let at = |r: usize, c: usize| ns[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_bidi(at(r, c), at(r, c + 1), capacity, 1.0);
            }
            if r + 1 < rows {
                g.add_bidi(at(r, c), at(r + 1, c), capacity, 1.0);
            }
        }
    }
    g
}

/// Pick `count` distinct node pairs, uniformly, deterministically.
pub fn sample_pairs(g: &DiGraph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();
    assert!(n >= 2);
    let mut out = Vec::with_capacity(count);
    let mut tries = 0;
    while out.len() < count && tries < count * 50 {
        tries += 1;
        let a = NodeId(rng.random_range(0..n as u32));
        let b = NodeId(rng.random_range(0..n as u32));
        if a != b && !out.contains(&(a, b)) {
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_sized() {
        for seed in 0..5 {
            let g = waxman(&TopologySpec::new("t", 40, seed));
            assert_eq!(g.num_nodes(), 40);
            assert!(g.is_connected(), "seed {seed} produced a disconnected WAN");
        }
    }

    #[test]
    fn waxman_is_deterministic() {
        let a = waxman(&TopologySpec::new("t", 25, 7));
        let b = waxman(&TopologySpec::new("t", 25, 7));
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = waxman(&TopologySpec::new("t", 30, 1));
        let b = waxman(&TopologySpec::new("t", 30, 2));
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn waxman_edges_are_symmetric() {
        let g = waxman(&TopologySpec::new("t", 20, 3));
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            assert!(g.find_edge(d, s).is_some(), "missing reverse of {s:?}->{d:?}");
        }
    }

    #[test]
    fn catalogue_has_thirteen_te_instances() {
        let c = catalogue(42);
        assert_eq!(c.len(), 13);
        assert_eq!(c[0].name, "Abilene");
        assert_eq!(c[12].nodes, 754);
    }

    #[test]
    fn ring_and_grid_shapes() {
        let r = ring(6, 10.0);
        assert_eq!(r.num_edges(), 12);
        assert!(r.is_connected());
        let g = grid(3, 4, 10.0);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));
        assert!(g.is_connected());
    }

    #[test]
    fn sample_pairs_distinct() {
        let g = ring(10, 1.0);
        let ps = sample_pairs(&g, 20, 9);
        assert_eq!(ps.len(), 20);
        let mut seen = ps.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 20);
        for (a, b) in ps {
            assert_ne!(a, b);
        }
    }
}
