//! Seeded synthetic topology generators.
//!
//! The paper's participants evaluated on real datasets (NCFlow's 13 TE
//! instances over Topology-Zoo WANs, the DPV papers' Internet2/Stanford/
//! Purdue-style router configurations). Those datasets are not
//! redistributable, so — per the substitution rule in `DESIGN.md` — this
//! module generates *seeded synthetic stand-ins of the same scale*:
//! Waxman-style random WANs with the node counts of the named originals.
//! Every relative comparison in the paper (reproduced vs open-source
//! prototype on the *same* instance) is preserved because both sides
//! always see identical instances.

use crate::digraph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a synthetic WAN.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Display name (e.g. the Topology-Zoo WAN it stands in for).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Waxman α (edge-probability scale; higher → denser).
    pub alpha: f64,
    /// Waxman β (distance decay; higher → longer links likelier).
    pub beta: f64,
    /// Capacity of every link, in Gbps.
    pub capacity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TopologySpec {
    /// A spec with WAN-ish defaults.
    pub fn new(name: &str, nodes: usize, seed: u64) -> Self {
        TopologySpec {
            name: name.to_string(),
            nodes,
            alpha: 0.4,
            beta: 0.25,
            capacity: 100.0,
            seed,
        }
    }
}

/// Generate a connected Waxman WAN: nodes are placed uniformly in the
/// unit square; each unordered pair gains a bidirectional link with
/// probability `α·exp(−d/(β·√2))`; a deterministic spanning chain over
/// the random placement guarantees connectivity. Link weights are the
/// Euclidean distances (so Dijkstra behaves like latency-based routing).
pub fn waxman(spec: &TopologySpec) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut g = DiGraph::new();
    let nodes = g.add_nodes(&format!("{}-", spec.name), spec.nodes);
    let pos: Vec<(f64, f64)> = (0..spec.nodes)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        (dx * dx + dy * dy).sqrt()
    };

    // Spanning chain in x-order keeps the graph connected.
    let mut order: Vec<usize> = (0..spec.nodes).collect();
    order.sort_by(|&a, &b| pos[a].0.total_cmp(&pos[b].0));
    let mut connected = vec![vec![false; spec.nodes]; spec.nodes];
    for w in order.windows(2) {
        let (a, b) = (w[0], w[1]);
        g.add_bidi(nodes[a], nodes[b], spec.capacity, dist(a, b).max(1e-3));
        connected[a][b] = true;
        connected[b][a] = true;
    }

    let l = 2f64.sqrt();
    for a in 0..spec.nodes {
        for b in a + 1..spec.nodes {
            if connected[a][b] {
                continue;
            }
            let d = dist(a, b);
            let p = spec.alpha * (-d / (spec.beta * l)).exp();
            if rng.random::<f64>() < p {
                g.add_bidi(nodes[a], nodes[b], spec.capacity, d.max(1e-3));
            }
        }
    }
    g
}

/// The catalogue of stand-in instances used by the experiment harness.
/// Node counts mirror the Topology-Zoo WANs the NCFlow evaluation used;
/// the first few double as the DPV topologies (the AP/APKeep papers'
/// datasets are of comparable scale).
pub fn catalogue(seed: u64) -> Vec<TopologySpec> {
    let sized = [
        ("Abilene", 11),
        ("B4", 12),
        ("CRL", 33),
        ("GEANT", 40),
        ("Uninett", 74),
        ("Deltacom", 113),
        ("IonDeltacom", 125),
        ("TataNld", 145),
        ("UsCarrier", 158),
        ("Cogentco", 197),
        ("Colt", 153),
        ("GtsCe", 149),
        ("Kdl", 754),
    ];
    sized
        .iter()
        .enumerate()
        .map(|(i, (name, n))| TopologySpec::new(name, *n, seed.wrapping_add(i as u64)))
        .collect()
}

/// A simple bidirectional ring (useful in unit tests and examples).
pub fn ring(n: usize, capacity: f64) -> DiGraph {
    let mut g = DiGraph::new();
    let ns = g.add_nodes("r", n);
    for i in 0..n {
        g.add_bidi(ns[i], ns[(i + 1) % n], capacity, 1.0);
    }
    g
}

/// An `rows × cols` bidirectional grid.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> DiGraph {
    let mut g = DiGraph::new();
    let ns = g.add_nodes("g", rows * cols);
    let at = |r: usize, c: usize| ns[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_bidi(at(r, c), at(r, c + 1), capacity, 1.0);
            }
            if r + 1 < rows {
                g.add_bidi(at(r, c), at(r + 1, c), capacity, 1.0);
            }
        }
    }
    g
}

/// Specification of a k-ary fat-tree data-center fabric.
#[derive(Debug, Clone, Copy)]
pub struct FatTreeSpec {
    /// Arity `k`: `k` pods, each with `k/2` edge and `k/2` aggregation
    /// switches, `(k/2)²` core switches, and `k³/4` hosts. Must be even
    /// with `k/2` a power of two (so host addressing is prefix-exact).
    pub k: usize,
    /// Capacity of every link, in Gbps.
    pub capacity: f64,
    /// Whether hosts are materialized as graph nodes. Switch-only
    /// fabrics (`false`) model the verification dataplane at k=64+
    /// without paying for 65k+ host nodes.
    pub with_hosts: bool,
}

impl FatTreeSpec {
    /// A spec with DCN-ish defaults (hosts included).
    pub fn new(k: usize) -> Self {
        FatTreeSpec { k, capacity: 40.0, with_hosts: true }
    }
}

/// A generated fat-tree with its canonical index arithmetic.
///
/// Node ids are assigned in one fixed order — cores, then aggregation
/// switches pod-major, then edge switches pod-major, then hosts
/// `(pod, edge)`-major — so every consumer (FIB construction, the
/// partitioned verifier, render code) can translate between roles and
/// ids without storing per-node metadata. Construction is streaming:
/// O(V+E) memory, no all-pairs or routing state.
#[derive(Debug)]
pub struct FatTree {
    /// The topology. Link weights are 1 (hop-count routing).
    pub graph: DiGraph,
    /// The arity this tree was built with.
    pub k: usize,
    /// Whether hosts exist as graph nodes.
    pub with_hosts: bool,
}

impl FatTree {
    /// Half-arity `k/2` (uplinks per switch, hosts per edge switch).
    pub fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of core switches, `(k/2)²`.
    pub fn num_cores(&self) -> usize {
        self.half() * self.half()
    }

    /// Number of aggregation switches, `k·k/2`.
    pub fn num_aggs(&self) -> usize {
        self.k * self.half()
    }

    /// Number of edge switches, `k·k/2`.
    pub fn num_edge_switches(&self) -> usize {
        self.k * self.half()
    }

    /// Number of switches (the verification "devices" at scale).
    pub fn num_switches(&self) -> usize {
        self.num_cores() + self.num_aggs() + self.num_edge_switches()
    }

    /// Number of hosts, `k³/4` (whether or not materialized).
    pub fn num_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Node id of core switch `i` (`i < (k/2)²`). Core `i` belongs to
    /// group `i / (k/2)`: aggregation switch `j` of every pod uplinks
    /// to exactly the cores of group `j`.
    pub fn core(&self, i: usize) -> NodeId {
        debug_assert!(i < self.num_cores());
        NodeId(i as u32)
    }

    /// Node id of aggregation switch `j` of pod `p`.
    pub fn agg(&self, p: usize, j: usize) -> NodeId {
        debug_assert!(p < self.k && j < self.half());
        NodeId((self.num_cores() + p * self.half() + j) as u32)
    }

    /// Node id of edge switch `e` of pod `p`.
    pub fn edge(&self, p: usize, e: usize) -> NodeId {
        debug_assert!(p < self.k && e < self.half());
        NodeId((self.num_cores() + self.num_aggs() + p * self.half() + e) as u32)
    }

    /// Node id of host `h` under edge switch `e` of pod `p` (requires
    /// `with_hosts`).
    pub fn host(&self, p: usize, e: usize, h: usize) -> NodeId {
        debug_assert!(self.with_hosts);
        debug_assert!(p < self.k && e < self.half() && h < self.half());
        let flat = (p * self.half() + e) * self.half() + h;
        NodeId((self.num_switches() + flat) as u32)
    }

    /// Dense host index (`0..k³/4`) of host `(p, e, h)` — the address
    /// the FIB layer builds prefixes from.
    pub fn host_index(&self, p: usize, e: usize, h: usize) -> usize {
        (p * self.half() + e) * self.half() + h
    }

    /// Inverse of [`FatTree::host_index`].
    pub fn host_coords(&self, idx: usize) -> (usize, usize, usize) {
        let h = idx % self.half();
        let rest = idx / self.half();
        (rest / self.half(), rest % self.half(), h)
    }

    /// Role of a node id, recovered from the canonical layout.
    pub fn role(&self, n: NodeId) -> FtRole {
        let i = n.index();
        let (nc, na, ne) = (self.num_cores(), self.num_aggs(), self.num_edge_switches());
        if i < nc {
            return FtRole::Core { group: i / self.half() };
        }
        let i = i - nc;
        if i < na {
            return FtRole::Agg { pod: i / self.half(), idx: i % self.half() };
        }
        let i = i - na;
        if i < ne {
            return FtRole::Edge { pod: i / self.half(), idx: i % self.half() };
        }
        let (p, e, h) = self.host_coords(i - ne);
        FtRole::Host { pod: p, edge: e, idx: h }
    }
}

/// Position of a fat-tree node in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtRole {
    /// Core switch; `group` selects which agg index uplinks to it.
    Core {
        /// Core group `i / (k/2)`.
        group: usize,
    },
    /// Aggregation switch `idx` of `pod`.
    Agg {
        /// Pod number.
        pod: usize,
        /// Index within the pod.
        idx: usize,
    },
    /// Edge (top-of-rack) switch `idx` of `pod`.
    Edge {
        /// Pod number.
        pod: usize,
        /// Index within the pod.
        idx: usize,
    },
    /// Host `idx` under edge switch `edge` of `pod`.
    Host {
        /// Pod number.
        pod: usize,
        /// Edge-switch index within the pod.
        edge: usize,
        /// Host index under the edge switch.
        idx: usize,
    },
}

/// Generate a k-ary fat-tree (Al-Fares et al.): `k` pods of `k/2` edge
/// and `k/2` aggregation switches, `(k/2)²` cores, and (optionally)
/// `k³/4` hosts. Edges are inserted in one canonical order (core↔agg
/// pod-major, then agg↔edge pod-major, then edge↔host), so edge ids are
/// a pure function of `spec` — the determinism the partitioned verifier
/// leans on.
///
/// # Panics
/// Panics if `k < 4`, `k` is odd, or `k/2` is not a power of two
/// (fabric sizes are static configuration, exactly like header widths).
pub fn fat_tree(spec: &FatTreeSpec) -> FatTree {
    let k = spec.k;
    assert!(k >= 4 && k.is_multiple_of(2), "fat-tree arity must be even and >= 4");
    assert!((k / 2).is_power_of_two(), "k/2 must be a power of two for prefix-exact addressing");
    let half = k / 2;
    let mut g = DiGraph::new();
    g.add_nodes("ftc", half * half);
    g.add_nodes("fta", k * half);
    g.add_nodes("fte", k * half);
    if spec.with_hosts {
        g.add_nodes("fth", k * half * half);
    }

    // Core ↔ aggregation: agg j of pod p uplinks to core group j.
    for p in 0..k {
        for j in 0..half {
            for m in 0..half {
                g.add_bidi(ft_agg(k, p, j), ft_core(j * half + m), spec.capacity, 1.0);
            }
        }
    }
    // Aggregation ↔ edge, full bipartite within each pod.
    for p in 0..k {
        for j in 0..half {
            for e in 0..half {
                g.add_bidi(ft_agg(k, p, j), ft_edge(k, p, e), spec.capacity, 1.0);
            }
        }
    }
    // Edge ↔ host.
    if spec.with_hosts {
        for p in 0..k {
            for e in 0..half {
                for h in 0..half {
                    g.add_bidi(ft_edge(k, p, e), ft_host(k, p, e, h), spec.capacity, 1.0);
                }
            }
        }
    }
    FatTree { graph: g, k, with_hosts: spec.with_hosts }
}

// Free-function id arithmetic used during construction (before the
// `FatTree` owns its graph); mirrors the methods above.
fn ft_core(i: usize) -> NodeId {
    NodeId(i as u32)
}
fn ft_agg(k: usize, p: usize, j: usize) -> NodeId {
    let half = k / 2;
    NodeId((half * half + p * half + j) as u32)
}
fn ft_edge(k: usize, p: usize, e: usize) -> NodeId {
    let half = k / 2;
    NodeId((half * half + k * half + p * half + e) as u32)
}
fn ft_host(k: usize, p: usize, e: usize, h: usize) -> NodeId {
    let half = k / 2;
    NodeId((half * half + 2 * k * half + (p * half + e) * half + h) as u32)
}

/// Pick `count` distinct node pairs, uniformly, deterministically.
pub fn sample_pairs(g: &DiGraph, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();
    assert!(n >= 2);
    let mut out = Vec::with_capacity(count);
    let mut tries = 0;
    while out.len() < count && tries < count * 50 {
        tries += 1;
        let a = NodeId(rng.random_range(0..n as u32));
        let b = NodeId(rng.random_range(0..n as u32));
        if a != b && !out.contains(&(a, b)) {
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_sized() {
        for seed in 0..5 {
            let g = waxman(&TopologySpec::new("t", 40, seed));
            assert_eq!(g.num_nodes(), 40);
            assert!(g.is_connected(), "seed {seed} produced a disconnected WAN");
        }
    }

    #[test]
    fn waxman_is_deterministic() {
        let a = waxman(&TopologySpec::new("t", 25, 7));
        let b = waxman(&TopologySpec::new("t", 25, 7));
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = waxman(&TopologySpec::new("t", 30, 1));
        let b = waxman(&TopologySpec::new("t", 30, 2));
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn waxman_edges_are_symmetric() {
        let g = waxman(&TopologySpec::new("t", 20, 3));
        for e in g.edges() {
            let (s, d) = g.endpoints(e);
            assert!(g.find_edge(d, s).is_some(), "missing reverse of {s:?}->{d:?}");
        }
    }

    #[test]
    fn fat_tree_shape_matches_al_fares_counts() {
        for k in [4usize, 8] {
            let ft = fat_tree(&FatTreeSpec::new(k));
            let half = k / 2;
            assert_eq!(ft.num_cores(), half * half);
            assert_eq!(ft.num_switches(), 5 * k * k / 4);
            assert_eq!(ft.num_hosts(), k * k * k / 4);
            assert_eq!(ft.graph.num_nodes(), ft.num_switches() + ft.num_hosts());
            // 3 bidi layers of k²·k/4... each layer has k·(k/2)·(k/2)
            // unordered links → ×2 directed edges, ×3 layers.
            assert_eq!(ft.graph.num_edges(), 3 * 2 * k * half * half);
            assert!(ft.graph.is_connected());
        }
    }

    #[test]
    fn fat_tree_switch_only_fabric_drops_hosts() {
        let ft = fat_tree(&FatTreeSpec { k: 8, capacity: 40.0, with_hosts: false });
        assert_eq!(ft.graph.num_nodes(), ft.num_switches());
        assert_eq!(ft.graph.num_edges(), 2 * 2 * 8 * 4 * 4);
        assert!(ft.graph.is_connected());
    }

    #[test]
    fn fat_tree_roles_roundtrip() {
        let ft = fat_tree(&FatTreeSpec::new(4));
        assert_eq!(ft.role(ft.core(3)), FtRole::Core { group: 1 });
        assert_eq!(ft.role(ft.agg(2, 1)), FtRole::Agg { pod: 2, idx: 1 });
        assert_eq!(ft.role(ft.edge(3, 0)), FtRole::Edge { pod: 3, idx: 0 });
        assert_eq!(ft.role(ft.host(1, 1, 0)), FtRole::Host { pod: 1, edge: 1, idx: 0 });
        for idx in 0..ft.num_hosts() {
            let (p, e, h) = ft.host_coords(idx);
            assert_eq!(ft.host_index(p, e, h), idx);
        }
    }

    #[test]
    fn fat_tree_wiring_is_al_fares() {
        let ft = fat_tree(&FatTreeSpec::new(4));
        let half = ft.half();
        // Agg j of every pod reaches exactly core group j.
        for p in 0..ft.k {
            for j in 0..half {
                for m in 0..half {
                    assert!(ft.graph.find_edge(ft.agg(p, j), ft.core(j * half + m)).is_some());
                }
            }
        }
        // Pods are internally full-bipartite agg↔edge.
        for p in 0..ft.k {
            for j in 0..half {
                for e in 0..half {
                    assert!(ft.graph.find_edge(ft.agg(p, j), ft.edge(p, e)).is_some());
                    assert!(ft.graph.find_edge(ft.edge(p, e), ft.agg(p, j)).is_some());
                }
            }
        }
        // No pod-crossing agg↔edge links.
        assert!(ft.graph.find_edge(ft.agg(0, 0), ft.edge(1, 0)).is_none());
    }

    #[test]
    fn fat_tree_is_deterministic() {
        let a = fat_tree(&FatTreeSpec::new(8));
        let b = fat_tree(&FatTreeSpec::new(8));
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for e in a.graph.edges() {
            assert_eq!(a.graph.endpoints(e), b.graph.endpoints(e));
        }
    }

    #[test]
    fn fat_tree_scales_to_ten_thousand_devices() {
        // k=32 switch-only: 1280 switches; with hosts: 9472 nodes.
        let ft = fat_tree(&FatTreeSpec { k: 32, capacity: 40.0, with_hosts: true });
        assert_eq!(ft.num_switches(), 1280);
        assert_eq!(ft.graph.num_nodes(), 1280 + 8192);
        assert!(ft.graph.num_nodes() >= 9000);
    }

    #[test]
    fn catalogue_has_thirteen_te_instances() {
        let c = catalogue(42);
        assert_eq!(c.len(), 13);
        assert_eq!(c[0].name, "Abilene");
        assert_eq!(c[12].nodes, 754);
    }

    #[test]
    fn ring_and_grid_shapes() {
        let r = ring(6, 10.0);
        assert_eq!(r.num_edges(), 12);
        assert!(r.is_connected());
        let g = grid(3, 4, 10.0);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));
        assert!(g.is_connected());
    }

    #[test]
    fn sample_pairs_distinct() {
        let g = ring(10, 1.0);
        let ps = sample_pairs(&g, 20, 9);
        assert_eq!(ps.len(), 20);
        let mut seen = ps.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 20);
        for (a, b) in ps {
            assert_ne!(a, b);
        }
    }
}
