//! `netrepro-graph` — network topologies, routing primitives, traffic
//! matrices and graph partitioning.
//!
//! This crate supplies everything the reproduced systems assume about
//! the network itself:
//!
//! * [`digraph`] — a directed multigraph with capacities and weights;
//! * [`paths`] — BFS, Dijkstra and Yen's k-shortest paths (the tunnel
//!   generators of NCFlow/ARROW);
//! * [`maxflow`] — Dinic's max-flow (ground truth for the TE baselines);
//! * [`partition`] — seeded region-growing clustering (NCFlow's
//!   topology contraction);
//! * [`gen`] — seeded synthetic WAN generators standing in for the
//!   proprietary topologies of the paper's evaluation datasets;
//! * [`traffic`] — gravity-model and uniform traffic matrices.
//!
//! All generators take explicit seeds; a `(spec, seed)` pair fully
//! determines the instance, which is what lets `EXPERIMENTS.md` quote
//! reproducible numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuts;
pub mod digraph;
pub mod gen;
pub mod maxflow;
pub mod partition;
pub mod paths;
pub mod traffic;

pub use digraph::{DiGraph, EdgeId, NodeId};
pub use traffic::TrafficMatrix;

/// Errors from graph construction or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was out of range for this graph.
    InvalidNode(NodeId),
    /// An edge id was out of range for this graph.
    InvalidEdge(EdgeId),
    /// A requested path does not exist.
    NoPath {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidNode(n) => write!(f, "invalid node {n:?}"),
            GraphError::InvalidEdge(e) => write!(f, "invalid edge {e:?}"),
            GraphError::NoPath { src, dst } => write!(f, "no path from {src:?} to {dst:?}"),
        }
    }
}

impl std::error::Error for GraphError {}
