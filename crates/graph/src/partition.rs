//! Seeded region-growing graph partitioning.
//!
//! NCFlow contracts a WAN into a small number of clusters and solves
//! per-cluster subproblems. The original uses spectral methods (via
//! scikit-learn); for a deterministic, dependency-free substrate we use
//! farthest-point seeding followed by multi-source BFS region growing,
//! which yields connected, balanced clusters on WAN-like graphs.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// A partition of the nodes into `k` clusters.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Cluster index per node (dense, `0..k`).
    pub cluster_of: Vec<usize>,
    /// Members of each cluster.
    pub members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// Cluster containing node `n`.
    pub fn cluster(&self, n: NodeId) -> usize {
        self.cluster_of[n.index()]
    }

    /// Edges crossing cluster boundaries.
    pub fn cut_edges(&self, g: &DiGraph) -> Vec<crate::digraph::EdgeId> {
        g.edges()
            .filter(|&e| {
                let (s, d) = g.endpoints(e);
                self.cluster(s) != self.cluster(d)
            })
            .collect()
    }
}

/// Partition `g` into `k` clusters (clamped to the node count).
///
/// Deterministic: seeds are chosen by farthest-point traversal starting
/// from node 0, and growth order is fixed by node index.
pub fn partition(g: &DiGraph, k: usize) -> Partition {
    let n = g.num_nodes();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return Partition { cluster_of: Vec::new(), members: vec![Vec::new(); k] };
    }

    // Farthest-point seeding by hop distance.
    let mut seeds = vec![NodeId(0)];
    while seeds.len() < k {
        let dist = multi_source_bfs(g, &seeds);
        // The node farthest from every current seed (unreached nodes are
        // infinitely far: pick them first to cover disconnected parts).
        let Some(far) = (0..n)
            .max_by_key(|&i| dist[i].unwrap_or(u32::MAX))
            .map(|i| NodeId(i as u32))
        else {
            break; // n == 0 is handled above; defensive
        };
        if seeds.contains(&far) {
            break; // graph smaller than k distinct regions
        }
        seeds.push(far);
    }

    // Multi-source BFS growth: each node joins the cluster whose seed
    // reaches it first (ties by seed order).
    let mut cluster_of = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    for (ci, &s) in seeds.iter().enumerate() {
        cluster_of[s.index()] = ci;
        q.push_back(s);
    }
    while let Some(u) = q.pop_front() {
        let cu = cluster_of[u.index()];
        for v in g.successors(u) {
            if cluster_of[v.index()] == usize::MAX {
                cluster_of[v.index()] = cu;
                q.push_back(v);
            }
        }
    }
    // Unreached nodes (disconnected graphs) fall into cluster 0.
    for c in cluster_of.iter_mut() {
        if *c == usize::MAX {
            *c = 0;
        }
    }

    let mut members = vec![Vec::new(); seeds.len()];
    for (i, &c) in cluster_of.iter().enumerate() {
        members[c].push(NodeId(i as u32));
    }
    Partition { cluster_of, members }
}

fn multi_source_bfs(g: &DiGraph, sources: &[NodeId]) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut q = VecDeque::new();
    for &s in sources {
        dist[s.index()] = Some(0);
        q.push_back(s);
    }
    while let Some(u) = q.pop_front() {
        // Queued nodes always carry a distance; skip defensively if not.
        let Some(du) = dist[u.index()] else { continue };
        for v in g.successors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", n);
        for w in ns.windows(2) {
            g.add_bidi(w[0], w[1], 1.0, 1.0);
        }
        g
    }

    #[test]
    fn covers_every_node_exactly_once() {
        let g = path_graph(10);
        let p = partition(&g, 3);
        assert_eq!(p.cluster_of.len(), 10);
        let total: usize = p.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, 10);
        for (i, &c) in p.cluster_of.iter().enumerate() {
            assert!(p.members[c].contains(&NodeId(i as u32)));
        }
    }

    #[test]
    fn k_one_is_single_cluster() {
        let g = path_graph(5);
        let p = partition(&g, 1);
        assert_eq!(p.k(), 1);
        assert!(p.cut_edges(&g).is_empty());
    }

    #[test]
    fn k_clamped_to_node_count() {
        let g = path_graph(3);
        let p = partition(&g, 10);
        assert!(p.k() <= 3);
    }

    #[test]
    fn path_graph_clusters_are_contiguous() {
        let g = path_graph(12);
        let p = partition(&g, 3);
        // On a path, region growing yields contiguous segments: each
        // cluster's member indices form one run.
        for m in &p.members {
            let mut idx: Vec<usize> = m.iter().map(|n| n.index()).collect();
            idx.sort();
            for w in idx.windows(2) {
                assert_eq!(w[1], w[0] + 1, "non-contiguous cluster {idx:?}");
            }
        }
    }

    #[test]
    fn cut_edges_are_exactly_inter_cluster() {
        let g = path_graph(10);
        let p = partition(&g, 2);
        for e in p.cut_edges(&g) {
            let (s, d) = g.endpoints(e);
            assert_ne!(p.cluster(s), p.cluster(d));
        }
    }

    #[test]
    fn deterministic() {
        let g = path_graph(20);
        let a = partition(&g, 4);
        let b = partition(&g, 4);
        assert_eq!(a.cluster_of, b.cluster_of);
    }
}
