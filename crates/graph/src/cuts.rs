//! Bridges and articulation points (Tarjan's low-link method over the
//! undirected view of the topology).
//!
//! ARROW's failure analysis cares exactly about these: cutting a bridge
//! fiber partitions the WAN and no restoration budget can save the
//! commodities crossing it, so scenario generators should know where
//! the bridges are.

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Bridges and articulation points of the undirected view of `g`.
#[derive(Debug, Clone)]
pub struct CutStructure {
    /// Edges whose removal disconnects their component. For a
    /// bidirectional fiber the forward (tree) direction is listed.
    pub bridges: Vec<EdgeId>,
    /// Nodes whose removal disconnects their component.
    pub articulation_points: Vec<NodeId>,
}

struct Dfs<'a> {
    adj: &'a [Vec<(usize, usize, EdgeId)>],
    disc: Vec<usize>,
    low: Vec<usize>,
    visited: Vec<bool>,
    is_ap: Vec<bool>,
    bridges: Vec<EdgeId>,
    timer: usize,
}

impl Dfs<'_> {
    fn run(&mut self, u: usize, parent_fiber: usize) -> usize {
        self.visited[u] = true;
        self.disc[u] = self.timer;
        self.low[u] = self.timer;
        self.timer += 1;
        let mut children = 0;
        for i in 0..self.adj[u].len() {
            let (v, fiber, eid) = self.adj[u][i];
            if fiber == parent_fiber {
                continue; // don't walk back along the arriving fiber
            }
            if self.visited[v] {
                self.low[u] = self.low[u].min(self.disc[v]);
            } else {
                children += 1;
                self.run(v, fiber);
                self.low[u] = self.low[u].min(self.low[v]);
                if self.low[v] > self.disc[u] {
                    self.bridges.push(eid);
                }
                if parent_fiber != usize::MAX && self.low[v] >= self.disc[u] {
                    self.is_ap[u] = true;
                }
            }
        }
        children
    }
}

/// Compute bridges and articulation points. Parallel fibers between the
/// same pair are (correctly) never bridges; a single bidirectional
/// fiber (one edge each way) is one undirected edge.
pub fn cut_structure(g: &DiGraph) -> CutStructure {
    let n = g.num_nodes();
    // Undirected adjacency: (neighbour, fiber-id, representative edge).
    // A forward/backward edge pair between the same endpoints shares a
    // fiber id; a second parallel fiber gets a fresh id.
    let mut adj: Vec<Vec<(usize, usize, EdgeId)>> = vec![Vec::new(); n];
    // Half-open fibers waiting for their reverse direction:
    // (span, creator-was-forward) -> open fiber ids.
    let mut open: std::collections::HashMap<(usize, usize, bool), Vec<usize>> = Default::default();
    let mut fiber_count = 0usize;
    for e in g.edges() {
        let (s, d) = g.endpoints(e);
        let (si, di) = (s.index(), d.index());
        if si == di {
            continue; // self-loops are never bridges
        }
        let span = (si.min(di), si.max(di));
        let forward = si < di;
        // Pair with a half-open fiber created by the *opposite*
        // direction, else open a new fiber.
        let fiber = if let Some(f) = open
            .get_mut(&(span.0, span.1, !forward))
            .and_then(|v| v.pop())
        {
            f
        } else {
            fiber_count += 1;
            let f = fiber_count - 1;
            open.entry((span.0, span.1, forward)).or_default().push(f);
            f
        };
        adj[si].push((di, fiber, e));
    }

    let mut dfs = Dfs {
        adj: &adj,
        disc: vec![0; n],
        low: vec![0; n],
        visited: vec![false; n],
        is_ap: vec![false; n],
        bridges: Vec::new(),
        timer: 1,
    };
    for root in 0..n {
        if !dfs.visited[root] {
            let children = dfs.run(root, usize::MAX);
            if children > 1 {
                dfs.is_ap[root] = true;
            }
        }
    }
    let articulation_points =
        (0..n).filter(|&i| dfs.is_ap[i]).map(|i| NodeId(i as u32)).collect();
    let mut bridges = dfs.bridges;
    bridges.sort();
    bridges.dedup();
    CutStructure { bridges, articulation_points }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by a single bidirectional fiber: that fiber
    /// is a bridge and its endpoints are articulation points.
    fn barbell() -> (DiGraph, Vec<NodeId>, (EdgeId, EdgeId)) {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 6);
        g.add_bidi(ns[0], ns[1], 1.0, 1.0);
        g.add_bidi(ns[1], ns[2], 1.0, 1.0);
        g.add_bidi(ns[2], ns[0], 1.0, 1.0);
        g.add_bidi(ns[3], ns[4], 1.0, 1.0);
        g.add_bidi(ns[4], ns[5], 1.0, 1.0);
        g.add_bidi(ns[5], ns[3], 1.0, 1.0);
        let bridge = g.add_bidi(ns[2], ns[3], 1.0, 1.0);
        (g, ns, bridge)
    }

    #[test]
    fn barbell_bridge_found() {
        let (g, ns, (fwd, rev)) = barbell();
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges.len(), 1);
        assert!(cs.bridges[0] == fwd || cs.bridges[0] == rev);
        let mut aps = cs.articulation_points.clone();
        aps.sort();
        assert_eq!(aps, vec![ns[2], ns[3]]);
    }

    #[test]
    fn ring_has_no_bridges() {
        let g = crate::gen::ring(6, 1.0);
        let cs = cut_structure(&g);
        assert!(cs.bridges.is_empty());
        assert!(cs.articulation_points.is_empty());
    }

    #[test]
    fn path_is_all_bridges() {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 4);
        for w in ns.windows(2) {
            g.add_bidi(w[0], w[1], 1.0, 1.0);
        }
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges.len(), 3);
        let mut aps = cs.articulation_points.clone();
        aps.sort();
        assert_eq!(aps, vec![ns[1], ns[2]]);
    }

    #[test]
    fn parallel_fibers_are_not_bridges() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_bidi(a, b, 1.0, 1.0);
        g.add_bidi(a, b, 1.0, 1.0); // second fiber on the same span
        let cs = cut_structure(&g);
        assert!(cs.bridges.is_empty(), "parallel fibers protect the span");
    }

    #[test]
    fn single_fiber_is_a_bridge() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_bidi(a, b, 1.0, 1.0);
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges.len(), 1);
        assert!(cs.articulation_points.is_empty());
    }

    #[test]
    fn disconnected_components_handled() {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 4);
        g.add_bidi(ns[0], ns[1], 1.0, 1.0);
        g.add_bidi(ns[2], ns[3], 1.0, 1.0);
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges.len(), 2);
    }
}
