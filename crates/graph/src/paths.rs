//! Path-finding: BFS (hop metric), Dijkstra (weight metric) and Yen's
//! k-shortest simple paths — the tunnel generator NCFlow and ARROW both
//! assume.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// A simple path: the edge sequence plus its endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Edges from source to destination, in order.
    pub edges: Vec<EdgeId>,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total weight under the metric that produced it.
    pub cost: f64,
}

impl Path {
    /// Node sequence, source first.
    pub fn nodes(&self, g: &DiGraph) -> Vec<NodeId> {
        let mut out = vec![self.src];
        for &e in &self.edges {
            out.push(g.endpoints(e).1);
        }
        out
    }

    /// Minimum capacity along the path.
    pub fn bottleneck(&self, g: &DiGraph) -> f64 {
        self.edges.iter().map(|&e| g.capacity(e)).fold(f64::INFINITY, f64::min)
    }

    /// Hop count.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the trivial (src == dst) path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Breadth-first shortest path by hop count. Edges with zero capacity
/// are skipped when `respect_capacity` is set.
pub fn bfs_path(g: &DiGraph, src: NodeId, dst: NodeId, respect_capacity: bool) -> Option<Path> {
    let mut prev: Vec<Option<EdgeId>> = vec![None; g.num_nodes()];
    let mut seen = vec![false; g.num_nodes()];
    seen[src.index()] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        if n == dst {
            break;
        }
        for &e in g.out_edges(n) {
            if respect_capacity && g.capacity(e) <= 0.0 {
                continue;
            }
            let d = g.endpoints(e).1;
            if !seen[d.index()] {
                seen[d.index()] = true;
                prev[d.index()] = Some(e);
                q.push_back(d);
            }
        }
    }
    reconstruct(g, src, dst, &prev, &seen)
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path by edge weight. `banned_nodes` and
/// `banned_edges` support Yen's spur computations and failure studies.
pub fn dijkstra_path(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Option<Path> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    if banned_nodes.get(src.index()).copied().unwrap_or(false) {
        return None;
    }
    dist[src.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem { dist: 0.0, node: src });
    while let Some(HeapItem { dist: d, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == dst {
            break;
        }
        for &e in g.out_edges(node) {
            if banned_edges.get(e.index()).copied().unwrap_or(false) {
                continue;
            }
            let (_, to) = g.endpoints(e);
            if banned_nodes.get(to.index()).copied().unwrap_or(false) || done[to.index()] {
                continue;
            }
            let nd = d + g.weight(e);
            if nd < dist[to.index()] {
                dist[to.index()] = nd;
                prev[to.index()] = Some(e);
                heap.push(HeapItem { dist: nd, node: to });
            }
        }
    }
    let seen: Vec<bool> = dist.iter().map(|d| d.is_finite()).collect();
    reconstruct(g, src, dst, &prev, &seen)
}

fn reconstruct(
    g: &DiGraph,
    src: NodeId,
    dst: NodeId,
    prev: &[Option<EdgeId>],
    seen: &[bool],
) -> Option<Path> {
    if !seen[dst.index()] {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = prev[cur.index()]?;
        edges.push(e);
        cur = g.endpoints(e).0;
    }
    edges.reverse();
    let cost = edges.iter().map(|&e| g.weight(e)).sum();
    Some(Path { edges, src, dst, cost })
}

/// Yen's algorithm: up to `k` loop-free shortest paths by weight,
/// in nondecreasing cost order.
pub fn k_shortest_paths(g: &DiGraph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    let Some(first) = dijkstra_path(g, src, dst, &vec![false; g.num_nodes()], &vec![false; g.num_edges()])
    else {
        return result;
    };
    result.push(first);
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let Some(last) = result.last().cloned() else { break };
        let last_nodes = last.nodes(g);
        for i in 0..last.edges.len() {
            let spur_node = last_nodes[i];
            let root_edges = &last.edges[..i];

            let mut banned_edges = vec![false; g.num_edges()];
            for p in &result {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges[p.edges[i].index()] = true;
                }
            }
            let mut banned_nodes = vec![false; g.num_nodes()];
            for &n in &last_nodes[..i] {
                banned_nodes[n.index()] = true;
            }

            if let Some(spur) = dijkstra_path(g, spur_node, dst, &banned_nodes, &banned_edges) {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let cost = edges.iter().map(|&e| g.weight(e)).sum();
                let cand = Path { edges, src, dst, cost };
                if !candidates.iter().any(|c| c.edges == cand.edges)
                    && !result.iter().any(|c| c.edges == cand.edges)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));
        result.push(candidates.remove(0));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node diamond: a->b->d (cheap), a->c->d (expensive), a->d (direct, costliest).
    fn diamond() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 4);
        g.add_edge(ns[0], ns[1], 10.0, 1.0);
        g.add_edge(ns[1], ns[3], 10.0, 1.0);
        g.add_edge(ns[0], ns[2], 10.0, 2.0);
        g.add_edge(ns[2], ns[3], 10.0, 2.0);
        g.add_edge(ns[0], ns[3], 10.0, 5.0);
        (g, ns)
    }

    #[test]
    fn bfs_prefers_fewest_hops() {
        let (g, ns) = diamond();
        let p = bfs_path(&g, ns[0], ns[3], false).unwrap();
        assert_eq!(p.len(), 1); // direct edge
    }

    #[test]
    fn bfs_respects_capacity() {
        let (mut g, ns) = diamond();
        let direct = g.find_edge(ns[0], ns[3]).unwrap();
        g.set_capacity(direct, 0.0);
        let p = bfs_path(&g, ns[0], ns[3], true).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn dijkstra_prefers_lowest_weight() {
        let (g, ns) = diamond();
        let p = dijkstra_path(&g, ns[0], ns[3], &[false; 4], &[false; 5]).unwrap();
        assert_eq!(p.cost, 2.0);
        assert_eq!(p.nodes(&g), vec![ns[0], ns[1], ns[3]]);
    }

    #[test]
    fn dijkstra_none_when_disconnected() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        assert!(dijkstra_path(&g, a, b, &[false; 2], &[]).is_none());
    }

    #[test]
    fn k_shortest_returns_distinct_ordered_paths() {
        let (g, ns) = diamond();
        let ps = k_shortest_paths(&g, ns[0], ns[3], 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].cost, 2.0);
        assert_eq!(ps[1].cost, 4.0);
        assert_eq!(ps[2].cost, 5.0);
        // Paths are simple (no repeated node).
        for p in &ps {
            let nodes = p.nodes(&g);
            let mut dedup = nodes.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), nodes.len());
        }
    }

    #[test]
    fn k_shortest_caps_at_available_paths() {
        let (g, ns) = diamond();
        let ps = k_shortest_paths(&g, ns[0], ns[3], 10);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn path_bottleneck() {
        let (mut g, ns) = diamond();
        let e = g.find_edge(ns[0], ns[1]).unwrap();
        g.set_capacity(e, 3.0);
        let p = dijkstra_path(&g, ns[0], ns[3], &[false; 4], &[false; 5]).unwrap();
        assert_eq!(p.bottleneck(&g), 3.0);
    }

    #[test]
    fn trivial_path_src_eq_dst() {
        let (g, ns) = diamond();
        let p = bfs_path(&g, ns[0], ns[0], false).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.cost, 0.0);
    }
}
