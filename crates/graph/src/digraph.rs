//! A directed multigraph with per-edge capacity and weight.

use crate::GraphError;

/// Node handle (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Edge handle (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Dense index of the edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Edge {
    src: NodeId,
    dst: NodeId,
    capacity: f64,
    weight: f64,
}

/// A directed multigraph. Nodes and edges are referenced by dense ids;
/// deletion is not supported (the reproduced systems never delete
/// topology elements — failures are modelled as capacity changes).
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    names: Vec<String>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with a display name; returns its handle.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add `n` anonymous nodes named `prefix0..prefixN`.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n).map(|i| self.add_node(&format!("{prefix}{i}"))).collect()
    }

    /// Add a directed edge. Multi-edges are allowed.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity: f64, weight: f64) -> EdgeId {
        assert!(src.index() < self.names.len() && dst.index() < self.names.len());
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { src, dst, capacity, weight });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Add a symmetric pair of edges (the WAN convention: one fiber,
    /// both directions). Returns `(forward, backward)`.
    pub fn add_bidi(&mut self, a: NodeId, b: NodeId, capacity: f64, weight: f64) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, capacity, weight), self.add_edge(b, a, capacity, weight))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Node display name.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    /// `(src, dst)` endpoints of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.src, edge.dst)
    }

    /// Capacity of an edge.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].capacity
    }

    /// Overwrite an edge's capacity (used to model failures/restoration).
    pub fn set_capacity(&mut self, e: EdgeId, capacity: f64) {
        self.edges[e.index()].capacity = capacity;
    }

    /// Routing weight of an edge.
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].weight
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n.index()]
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n.index()]
    }

    /// Out-neighbours of `n` (with multiplicity).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[n.index()].iter().map(move |&e| self.edges[e.index()].dst)
    }

    /// The first edge from `a` to `b`, if any.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.out_adj[a.index()].iter().copied().find(|&e| self.edges[e.index()].dst == b)
    }

    /// Validate a node id.
    pub fn check_node(&self, n: NodeId) -> Result<NodeId, GraphError> {
        if n.index() < self.names.len() {
            Ok(n)
        } else {
            Err(GraphError::InvalidNode(n))
        }
    }

    /// Whether the graph is (weakly) connected. Empty graphs count as
    /// connected.
    pub fn is_connected(&self) -> bool {
        if self.names.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.names.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &e in &self.out_adj[n.index()] {
                let d = self.edges[e.index()].dst;
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    count += 1;
                    stack.push(d);
                }
            }
            for &e in &self.in_adj[n.index()] {
                let s = self.edges[e.index()].src;
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    count += 1;
                    stack.push(s);
                }
            }
        }
        count == self.names.len()
    }

    /// Total capacity leaving `n`.
    pub fn out_capacity(&self, n: NodeId) -> f64 {
        self.out_adj[n.index()].iter().map(|&e| self.edges[e.index()].capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ns = g.add_nodes("n", 3);
        g.add_bidi(ns[0], ns[1], 10.0, 1.0);
        g.add_bidi(ns[1], ns[2], 10.0, 1.0);
        g.add_bidi(ns[2], ns[0], 10.0, 1.0);
        (g, ns)
    }

    #[test]
    fn counts_and_names() {
        let (g, ns) = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.node_name(ns[1]), "n1");
    }

    #[test]
    fn adjacency_is_consistent() {
        let (g, ns) = triangle();
        assert_eq!(g.out_edges(ns[0]).len(), 2);
        assert_eq!(g.in_edges(ns[0]).len(), 2);
        let succ: Vec<_> = g.successors(ns[0]).collect();
        assert!(succ.contains(&ns[1]) && succ.contains(&ns[2]));
    }

    #[test]
    fn find_edge_direction_matters() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 5.0, 1.0);
        assert_eq!(g.find_edge(a, b), Some(e));
        assert_eq!(g.find_edge(b, a), None);
    }

    #[test]
    fn capacity_updates_model_failures() {
        let (mut g, ns) = triangle();
        let e = g.find_edge(ns[0], ns[1]).unwrap();
        g.set_capacity(e, 0.0);
        assert_eq!(g.capacity(e), 0.0);
        assert_eq!(g.out_capacity(ns[0]), 10.0); // only n0->n2 remains
    }

    #[test]
    fn connectivity() {
        let (g, _) = triangle();
        assert!(g.is_connected());
        let mut g2 = DiGraph::new();
        g2.add_node("a");
        g2.add_node("b");
        assert!(!g2.is_connected());
    }

    #[test]
    fn multi_edges_allowed() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1.0, 1.0);
        g.add_edge(a, b, 2.0, 1.0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_capacity(a), 3.0);
    }
}
