//! Tier B: the workspace invariant linter.
//!
//! A lightweight Rust-source scanner enforcing repo invariants clippy
//! cannot express:
//!
//! * **`wallclock`** — no `Instant::now`/`SystemTime` in the seeded /
//!   deterministic modules (`core::fault`, `core::llm`,
//!   `core::session`, `lp`, `bdd`): one seed must reproduce one run,
//!   and wall-clock reads silently break that.
//! * **`unwrap`** — no `.unwrap()`/`.expect(` in non-test library
//!   code: pipeline boundaries carry typed errors (`TeError`,
//!   `ProtocolError`, `LpError`), so a panic is always a policy
//!   violation, not a convenience.
//! * **`hashiter`** — no iteration over `HashMap`/`HashSet` in code
//!   that feeds fault traces, transcripts or validation rows:
//!   `RandomState` makes iteration order (and float summation order)
//!   run-dependent.
//! * **`panicpolicy`** — no `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` in non-test library code, with a per-crate
//!   exemption for the `bench` binaries (measurement harnesses whose
//!   declared policy is panic-on-error).
//!
//! Violations are [`Finding`]s like Tier A's. A checked-in allowlist
//! (`repolint.allow`, `rule path max-count` per line) lets existing
//! violations be burned down incrementally: a file may carry at most
//! its allowlisted count, new violations fail immediately, and stale
//! or over-generous entries surface as info findings so the allowlist
//! only ever shrinks.
//!
//! The scanner strips comments, strings and `#[cfg(test)]` regions
//! before matching, so documentation examples and test code never
//! count.

use crate::finding::{AnalysisReport, Finding, Severity};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which files each path-scoped rule applies to, and which crates are
/// exempt from the panic-free policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Repo-relative path prefixes where wall-clock reads are banned.
    pub wallclock_files: Vec<String>,
    /// Repo-relative path prefixes where hash-order iteration is banned.
    pub hashiter_files: Vec<String>,
    /// Crate directory names whose declared policy allows panics and
    /// unwraps (measurement binaries).
    pub panic_allowed_crates: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            wallclock_files: vec![
                "crates/core/src/cache.rs".into(),
                "crates/core/src/fault.rs".into(),
                "crates/core/src/harness.rs".into(),
                "crates/core/src/pool.rs".into(),
                "crates/core/src/shard.rs".into(),
                "crates/core/src/llm.rs".into(),
                "crates/core/src/session.rs".into(),
                "crates/lp/src/".into(),
                "crates/bdd/src/".into(),
            ],
            hashiter_files: vec![
                "crates/core/src/cache.rs".into(),
                "crates/core/src/fault.rs".into(),
                "crates/core/src/harness.rs".into(),
                "crates/core/src/pool.rs".into(),
                "crates/core/src/shard.rs".into(),
                "crates/core/src/session.rs".into(),
                "crates/core/src/transcript.rs".into(),
                "crates/core/src/timeline.rs".into(),
                "crates/te/src/ncflow.rs".into(),
            ],
            panic_allowed_crates: vec!["bench".into()],
        }
    }
}

/// Replace comments, string literals and char literals with spaces,
/// preserving line structure, so pattern matching only ever sees code.
fn strip_non_code(src: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || (next == Some('#') && b.get(i + 2) == Some(&'"')) => {
                    // Raw string r"..." or r#"..."# (one hash is all the
                    // workspace uses).
                    let hashes = usize::from(next == Some('#'));
                    state = State::RawStr(hashes);
                    out.push(' ');
                    out.push(' ');
                    i += 1 + hashes; // consume r, hashes; the quote falls out below
                    if hashes > 0 {
                        out.push(' ');
                    }
                }
                '\'' => {
                    // Char literal ('x', '\n') vs lifetime ('a in &'a T):
                    // a literal closes with a quote within two chars.
                    let is_char = matches!(
                        (next, b.get(i + 2), b.get(i + 3)),
                        (Some('\\'), _, _) | (Some(_), Some('\''), _)
                    );
                    if is_char {
                        state = State::Char;
                    }
                    out.push(if is_char { ' ' } else { '\'' });
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        state = State::Code;
                    }
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::RawStr(hashes) => {
                let closes = c == '"'
                    && (0..hashes).all(|h| b.get(i + 1 + h) == Some(&'#'));
                if closes {
                    state = State::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            State::Char => {
                if c == '\'' {
                    state = State::Code;
                }
                out.push(' ');
            }
        }
        i += 1;
    }
    out
}

/// Mark which (0-based) lines fall inside a `#[cfg(test)]` item, by
/// brace-balancing from the attribute onward. Operates on stripped
/// source so braces in strings/comments cannot confuse the count.
fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut pending = false;
    let mut depth: i64 = 0;
    let mut in_region = false;
    for (i, line) in lines.iter().enumerate() {
        if !in_region && !pending && line.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || in_region {
            mask[i] = true;
            let opens = line.chars().filter(|&c| c == '{').count() as i64;
            let closes = line.chars().filter(|&c| c == '}').count() as i64;
            if pending && opens > 0 {
                pending = false;
                in_region = true;
            }
            depth += opens - closes;
            if in_region && depth <= 0 {
                in_region = false;
                depth = 0;
            }
        }
    }
    mask
}

/// Identifiers bound to `HashMap`/`HashSet` values in this (stripped)
/// file: `let [mut] name = HashMap::new()`, `let [mut] name: HashMap<`
/// and struct fields `name: HashMap<`.
fn hash_bound_idents(stripped: &str) -> Vec<String> {
    let mut idents = Vec::new();
    for line in stripped.lines() {
        if !line.contains("HashMap") && !line.contains("HashSet") {
            continue;
        }
        // `let [mut] name` binding on the same line.
        if let Some(pos) = line.find("let ") {
            let rest = line[pos + 4..].trim_start();
            let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
            let ident: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !ident.is_empty() {
                idents.push(ident);
                continue;
            }
        }
        // `name: HashMap<` / `name: HashSet<` (field or typed binding).
        for ty in ["HashMap<", "HashSet<"] {
            if let Some(pos) = line.find(ty) {
                let before = line[..pos].trim_end();
                if let Some(before) = before.strip_suffix(':') {
                    let ident: String = before
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !ident.is_empty() {
                        idents.push(ident);
                    }
                }
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// Does this (stripped) line iterate over `ident` in hash order?
fn iterates_hash(line: &str, ident: &str) -> bool {
    for m in
        [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("]
    {
        if line.contains(&format!("{ident}{m}")) {
            return true;
        }
    }
    for pre in ["in &mut ", "in &", "in "] {
        if let Some(pos) = line.find(&format!("{pre}{ident}")) {
            let end = pos + pre.len() + ident.len();
            let boundary = line[end..]
                .chars()
                .next()
                .map(|c| !(c.is_alphanumeric() || c == '_'))
                .unwrap_or(true);
            if boundary {
                return true;
            }
        }
    }
    false
}

fn path_matches(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel == p || (p.ends_with('/') && rel.starts_with(p.as_str())))
}

fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next())
}

/// Scan one file (already read and made repo-relative) for violations.
fn scan_file(rel: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let stripped = strip_non_code(src);
    let mask = test_region_mask(&stripped);
    let hash_idents = hash_bound_idents(&stripped);
    let panics_allowed = crate_of(rel)
        .map(|c| config.panic_allowed_crates.iter().any(|a| a == c))
        .unwrap_or(false);
    let wallclock = path_matches(rel, &config.wallclock_files);
    let hashiter = path_matches(rel, &config.hashiter_files);

    let mut out = Vec::new();
    let mut push = |rule: &str, line_no: usize, message: String| {
        out.push(Finding {
            rule: format!("repolint/{rule}"),
            severity: Severity::Error,
            subject: format!("{rel}:{}", line_no + 1),
            message,
        });
    };

    for (i, line) in stripped.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue; // test code is exempt from every rule
        }
        if wallclock {
            for pat in ["Instant::now", "SystemTime"] {
                if line.contains(pat) {
                    push("wallclock", i, format!("`{pat}` in a seeded/deterministic module"));
                }
            }
        }
        if !panics_allowed {
            for pat in [".unwrap()", ".expect("] {
                if line.contains(pat) {
                    push("unwrap", i, format!("`{pat}` in non-test library code"));
                }
            }
            for pat in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if line.contains(pat) {
                    push("panicpolicy", i, format!("`{pat}` in non-test library code"));
                }
            }
        }
        if hashiter {
            for ident in &hash_idents {
                if iterates_hash(line, ident) {
                    push(
                        "hashiter",
                        i,
                        format!("iteration over hash-ordered `{ident}` feeds deterministic output"),
                    );
                }
            }
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scan the workspace at `root`: every `crates/*/src` tree plus the
/// root package's `src/`. Returns all violations as error findings.
pub fn scan(root: &Path, config: &LintConfig) -> io::Result<AnalysisReport> {
    let mut src_dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        for c in names {
            src_dirs.push(c.join("src"));
        }
    }
    let mut files = Vec::new();
    for d in src_dirs {
        if d.is_dir() {
            walk(&d, &mut files)?;
        }
    }
    files.sort();
    let mut report = AnalysisReport::default();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = fs::read_to_string(f)?;
        for finding in scan_file(&rel, &src, config) {
            report.push(finding);
        }
    }
    Ok(report)
}

/// The checked-in burn-down allowlist: `rule path max-count` per line,
/// `#` comments. Counts are per (rule, file); anything beyond the
/// count fails.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), usize>,
}

impl Allowlist {
    /// Parse the allowlist format. Unparseable lines are an error — a
    /// silently ignored allowlist entry would mask real violations.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(count), None) => {
                    let count: usize = count
                        .parse()
                        .map_err(|_| format!("line {}: bad count `{count}`", no + 1))?;
                    entries.insert((rule.to_string(), path.to_string()), count);
                }
                _ => return Err(format!("line {}: expected `rule path count`", no + 1)),
            }
        }
        Ok(Allowlist { entries })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Total allowed violations across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Apply the allowlist to a raw scan report. Violations within an
/// entry's budget are dropped; excess violations stay as errors (with
/// the budget noted); stale or over-generous entries become info
/// findings so the list only ever shrinks.
pub fn apply_allowlist(raw: &AnalysisReport, allow: &Allowlist) -> AnalysisReport {
    // Group findings by (rule, file).
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in &raw.findings {
        let file = f.subject.rsplit_once(':').map(|(p, _)| p.to_string()).unwrap_or_default();
        let rule = f.rule.strip_prefix("repolint/").unwrap_or(&f.rule).to_string();
        groups.entry((rule, file)).or_default().push(f.clone());
    }
    let mut out = AnalysisReport::default();
    for (key, found) in &groups {
        let budget = allow.entries.get(key).copied().unwrap_or(0);
        if found.len() > budget {
            for f in found {
                let mut f = f.clone();
                f.message =
                    format!("{} ({} found, {budget} allowlisted)", f.message, found.len());
                out.push(f);
            }
        } else if found.len() < budget {
            out.push(Finding {
                rule: "repolint/allowlist".into(),
                severity: Severity::Info,
                subject: key.1.clone(),
                message: format!(
                    "allowlist grants {budget} `{}` but only {} remain — shrink the entry",
                    key.0,
                    found.len()
                ),
            });
        }
    }
    for (key, budget) in &allow.entries {
        if !groups.contains_key(key) {
            out.push(Finding {
                rule: "repolint/allowlist".into(),
                severity: Severity::Info,
                subject: key.1.clone(),
                message: format!(
                    "stale allowlist entry: no `{}` violations remain (granted {budget})",
                    key.0
                ),
            });
        }
    }
    out
}

/// Scan `root` and apply the allowlist at `allowlist_path`. The linter
/// passes when the returned report has no error findings.
pub fn lint(
    root: &Path,
    config: &LintConfig,
    allowlist_path: &Path,
) -> Result<AnalysisReport, String> {
    let raw = scan(root, config).map_err(|e| format!("scan failed: {e}"))?;
    let allow = Allowlist::load(allowlist_path)?;
    Ok(apply_allowlist(&raw, &allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_strings_and_chars() {
        let src = r#"let a = "x.unwrap()"; // .expect(
/* panic!( */ let c = 'x'; let s = b.unwrap();"#;
        let stripped = strip_non_code(src);
        assert!(!stripped.contains(".expect("));
        assert!(!stripped.contains("panic!("));
        assert!(stripped.contains("b.unwrap()"));
        assert!(!stripped.contains("\"x.unwrap()\""));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = strip_non_code("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(s.contains("x.unwrap()"));
    }

    #[test]
    fn test_regions_are_masked() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn lib2() { c.unwrap(); }\n";
        let stripped = strip_non_code(src);
        let mask = test_region_mask(&stripped);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn hash_idents_are_harvested_and_iteration_flagged() {
        let src = "let mut key_min: HashMap<(usize, usize), f64> = HashMap::new();\nlet x: f64 = key_min.values().sum();\nfor k in &key_min { }\nlet fine = vec.iter();\n";
        let idents = hash_bound_idents(src);
        assert_eq!(idents, vec!["key_min".to_string()]);
        assert!(iterates_hash("key_min.values().sum()", "key_min"));
        assert!(iterates_hash("for k in &key_min {", "key_min"));
        assert!(!iterates_hash("let fine = vec.iter();", "key_min"));
        assert!(!iterates_hash("key_min.get(&k)", "key_min"));
    }

    #[test]
    fn allowlist_budgets_stale_and_excess() {
        let mut raw = AnalysisReport::default();
        for line in [3, 9] {
            raw.push(Finding {
                rule: "repolint/unwrap".into(),
                severity: Severity::Error,
                subject: format!("crates/x/src/lib.rs:{line}"),
                message: "`.unwrap()` in non-test library code".into(),
            });
        }
        let allow =
            Allowlist::parse("# comment\nunwrap crates/x/src/lib.rs 2\nwallclock crates/y/src/lib.rs 1\n")
                .unwrap();
        let applied = apply_allowlist(&raw, &allow);
        assert_eq!(applied.count(Severity::Error), 0, "{applied:?}");
        // The wallclock entry is stale → info.
        assert_eq!(applied.count(Severity::Info), 1);

        let tight = Allowlist::parse("unwrap crates/x/src/lib.rs 1\n").unwrap();
        let failed = apply_allowlist(&raw, &tight);
        assert_eq!(failed.count(Severity::Error), 2, "excess keeps the whole group visible");
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("unwrap too few").is_err());
        assert!(Allowlist::parse("unwrap a b c d").is_err());
        assert!(Allowlist::parse("unwrap path NaN").is_err());
    }
}
