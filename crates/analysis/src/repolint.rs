//! Tier B: the workspace invariant linter.
//!
//! A lightweight Rust-source scanner enforcing repo invariants clippy
//! cannot express:
//!
//! * **`unwrap`** — no `.unwrap()`/`.expect(` in non-test library
//!   code: pipeline boundaries carry typed errors (`TeError`,
//!   `ProtocolError`, `LpError`), so a panic is always a policy
//!   violation, not a convenience.
//! * **`panicpolicy`** — no `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` in non-test library code, with a per-crate
//!   exemption for the `bench` binaries (measurement harnesses whose
//!   declared policy is panic-on-error).
//!
//! The determinism invariants this linter used to enforce with
//! manually maintained per-file lists (no wall-clock reads in seeded
//! modules, no hash-order iteration feeding deterministic output) are
//! now proven transitively by the [`crate::effects`] analyzer: every
//! function reachable from a declared root is checked, so a new module
//! is covered the moment it is called from one — no registration step
//! to forget. Run it as `repolint --effects`.
//!
//! Violations are [`Finding`]s like Tier A's. A checked-in allowlist
//! (`repolint.allow`, `rule path max-count` per line) lets existing
//! violations be burned down incrementally: a file may carry at most
//! its allowlisted count, new violations fail immediately, and stale
//! or over-generous entries surface as info findings so the allowlist
//! only ever shrinks.
//!
//! The scanner lexes each file through [`crate::lexer`] (comments,
//! strings and `#[cfg(test)]` regions never match), so documentation
//! examples and test code never count.

use crate::finding::{AnalysisReport, Finding, Severity};
use crate::lexer::stripped_text;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which crates are exempt from the panic-free policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crate directory names whose declared policy allows panics and
    /// unwraps (measurement binaries).
    pub panic_allowed_crates: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { panic_allowed_crates: vec!["bench".into()] }
    }
}

/// Mark which (0-based) lines fall inside a `#[cfg(test)]` item, by
/// brace-balancing from the attribute onward. Operates on stripped
/// source so braces in strings/comments cannot confuse the count.
fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut pending = false;
    let mut depth: i64 = 0;
    let mut in_region = false;
    for (i, line) in lines.iter().enumerate() {
        if !in_region && !pending && line.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || in_region {
            mask[i] = true;
            let opens = line.chars().filter(|&c| c == '{').count() as i64;
            let closes = line.chars().filter(|&c| c == '}').count() as i64;
            if pending && opens > 0 {
                pending = false;
                in_region = true;
            }
            depth += opens - closes;
            if in_region && depth <= 0 {
                in_region = false;
                depth = 0;
            }
        }
    }
    mask
}

fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next())
}

/// Scan one file (already read and made repo-relative) for violations.
fn scan_file(rel: &str, src: &str, config: &LintConfig) -> Vec<Finding> {
    let stripped = stripped_text(src);
    let mask = test_region_mask(&stripped);
    let panics_allowed = crate_of(rel)
        .map(|c| config.panic_allowed_crates.iter().any(|a| a == c))
        .unwrap_or(false);
    if panics_allowed {
        return Vec::new();
    }

    let mut out = Vec::new();
    let mut push = |rule: &str, line_no: usize, message: String| {
        out.push(Finding {
            rule: format!("repolint/{rule}"),
            severity: Severity::Error,
            subject: format!("{rel}:{}", line_no + 1),
            message,
        });
    };

    for (i, line) in stripped.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue; // test code is exempt from every rule
        }
        for pat in [".unwrap()", ".expect("] {
            if line.contains(pat) {
                push("unwrap", i, format!("`{pat}` in non-test library code"));
            }
        }
        for pat in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if line.contains(pat) {
                push("panicpolicy", i, format!("`{pat}` in non-test library code"));
            }
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scan the workspace at `root`: every `crates/*/src` tree plus the
/// root package's `src/`. Returns all violations as error findings.
pub fn scan(root: &Path, config: &LintConfig) -> io::Result<AnalysisReport> {
    let mut src_dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        for c in names {
            src_dirs.push(c.join("src"));
        }
    }
    let mut files = Vec::new();
    for d in src_dirs {
        if d.is_dir() {
            walk(&d, &mut files)?;
        }
    }
    files.sort();
    let mut report = AnalysisReport::default();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let src = fs::read_to_string(f)?;
        for finding in scan_file(&rel, &src, config) {
            report.push(finding);
        }
    }
    Ok(report)
}

/// The checked-in burn-down allowlist: `rule path max-count` per line,
/// `#` comments. Counts are per (rule, file); anything beyond the
/// count fails.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), usize>,
}

impl Allowlist {
    /// Parse the allowlist format. Unparseable lines are an error — a
    /// silently ignored allowlist entry would mask real violations.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(count), None) => {
                    let count: usize = count
                        .parse()
                        .map_err(|_| format!("line {}: bad count `{count}`", no + 1))?;
                    entries.insert((rule.to_string(), path.to_string()), count);
                }
                _ => return Err(format!("line {}: expected `rule path count`", no + 1)),
            }
        }
        Ok(Allowlist { entries })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Total allowed violations across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Apply the allowlist to a raw scan report. Violations within an
/// entry's budget are dropped; excess violations stay as errors (with
/// the budget noted); stale or over-generous entries become info
/// findings so the list only ever shrinks.
pub fn apply_allowlist(raw: &AnalysisReport, allow: &Allowlist) -> AnalysisReport {
    // Group findings by (rule, file).
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in &raw.findings {
        let file = f.subject.rsplit_once(':').map(|(p, _)| p.to_string()).unwrap_or_default();
        let rule = f.rule.strip_prefix("repolint/").unwrap_or(&f.rule).to_string();
        groups.entry((rule, file)).or_default().push(f.clone());
    }
    let mut out = AnalysisReport::default();
    for (key, found) in &groups {
        let budget = allow.entries.get(key).copied().unwrap_or(0);
        if found.len() > budget {
            for f in found {
                let mut f = f.clone();
                f.message =
                    format!("{} ({} found, {budget} allowlisted)", f.message, found.len());
                out.push(f);
            }
        } else if found.len() < budget {
            out.push(Finding {
                rule: "repolint/allowlist".into(),
                severity: Severity::Info,
                subject: key.1.clone(),
                message: format!(
                    "allowlist grants {budget} `{}` but only {} remain — shrink the entry",
                    key.0,
                    found.len()
                ),
            });
        }
    }
    for (key, budget) in &allow.entries {
        if !groups.contains_key(key) {
            out.push(Finding {
                rule: "repolint/allowlist".into(),
                severity: Severity::Info,
                subject: key.1.clone(),
                message: format!(
                    "stale allowlist entry: no `{}` violations remain (granted {budget})",
                    key.0
                ),
            });
        }
    }
    out
}

/// Scan `root` and apply the allowlist at `allowlist_path`. The linter
/// passes when the returned report has no error findings.
pub fn lint(
    root: &Path,
    config: &LintConfig,
    allowlist_path: &Path,
) -> Result<AnalysisReport, String> {
    let raw = scan(root, config).map_err(|e| format!("scan failed: {e}"))?;
    let allow = Allowlist::load(allowlist_path)?;
    Ok(apply_allowlist(&raw, &allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_multi_hash_raw_strings_never_match() {
        // The multi-hash raw string and the `/*/` opener are exactly
        // the inputs the pre-lexer stripper miscounted (the raw
        // string's quotes inverted string parity; `/*/` closed itself).
        let src = "let a = r##\"x.unwrap()\"##; // .expect(\n/*/ panic!( */ let s = b.unwrap();\n";
        let findings = scan_file("crates/x/src/lib.rs", src, &LintConfig::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "repolint/unwrap");
        assert_eq!(findings[0].subject, "crates/x/src/lib.rs:2");
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }\n";
        let findings = scan_file("crates/x/src/lib.rs", src, &LintConfig::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn test_regions_are_masked() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn lib2() { c.unwrap(); }\n";
        let stripped = stripped_text(src);
        let mask = test_region_mask(&stripped);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
        let findings = scan_file("crates/x/src/lib.rs", src, &LintConfig::default());
        assert_eq!(findings.len(), 2, "lib + lib2 only: {findings:?}");
    }

    #[test]
    fn allowlist_budgets_stale_and_excess() {
        let mut raw = AnalysisReport::default();
        for line in [3, 9] {
            raw.push(Finding {
                rule: "repolint/unwrap".into(),
                severity: Severity::Error,
                subject: format!("crates/x/src/lib.rs:{line}"),
                message: "`.unwrap()` in non-test library code".into(),
            });
        }
        let allow =
            Allowlist::parse("# comment\nunwrap crates/x/src/lib.rs 2\nwallclock crates/y/src/lib.rs 1\n")
                .unwrap();
        let applied = apply_allowlist(&raw, &allow);
        assert_eq!(applied.count(Severity::Error), 0, "{applied:?}");
        // The wallclock entry is stale → info.
        assert_eq!(applied.count(Severity::Info), 1);

        let tight = Allowlist::parse("unwrap crates/x/src/lib.rs 1\n").unwrap();
        let failed = apply_allowlist(&raw, &tight);
        assert_eq!(failed.count(Severity::Error), 2, "excess keeps the whole group visible");
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("unwrap too few").is_err());
        assert!(Allowlist::parse("unwrap a b c d").is_err());
        assert!(Allowlist::parse("unwrap path NaN").is_err());
    }
}
