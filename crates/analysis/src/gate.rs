//! The pre-execution gate: audit findings folded into the
//! `core::validate` / `core::diagnosis` pipeline.
//!
//! Execution-based differential validation is expensive and, on a
//! prototype that would not even compile or integrate, meaningless.
//! The gate turns an [`AnalysisReport`] into the
//! [`netrepro_core::validate::StaticGate`] summary and from there into
//! a [`Diagnosis`]: error-severity findings yield
//! [`RootCause::StaticallyRejected`] before anything runs.

use crate::audit;
use crate::finding::{AnalysisReport, Severity};
use netrepro_core::diagnosis::{diagnose_static, Diagnosis};
use netrepro_core::llm::CodeArtifact;
use netrepro_core::paper::PaperSpec;
use netrepro_core::validate::StaticGate;

#[allow(unused_imports)] // doc link
use netrepro_core::diagnosis::RootCause;

/// Summarize an analysis report into the core gate type.
pub fn static_gate(report: &AnalysisReport) -> StaticGate {
    StaticGate {
        errors: report.count(Severity::Error),
        warnings: report.count(Severity::Warning),
        worst: report
            .worst()
            .map(|f| format!("[{}] {}: {}", f.rule, f.subject, f.message))
            .unwrap_or_default(),
    }
}

/// Audit `artifacts` and diagnose the result. This is the whole
/// pre-execution path: returns the findings (for display) and the
/// diagnosis (`StaticallyRejected` when any error-severity finding is
/// present).
pub fn gate_artifacts(spec: &PaperSpec, artifacts: &[CodeArtifact]) -> (AnalysisReport, Diagnosis) {
    let report = audit::audit(spec, artifacts);
    let diagnosis = diagnose_static(&static_gate(&report));
    (report, diagnosis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrepro_core::diagnosis::RootCause;
    use netrepro_core::llm::DefectKind;
    use netrepro_core::paper::TargetSystem;

    #[test]
    fn error_findings_reject_before_execution() {
        let spec = PaperSpec::for_system(TargetSystem::NcFlow);
        let arts = vec![
            CodeArtifact::with_defects(0, 200, 2, vec![DefectKind::TypeError]),
            CodeArtifact::with_defects(1, 150, 2, vec![]),
        ];
        let (report, d) = gate_artifacts(&spec, &arts);
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(d.cause, RootCause::StaticallyRejected);
    }

    #[test]
    fn warnings_alone_defer_to_execution() {
        let spec = PaperSpec::for_system(TargetSystem::NcFlow);
        let arts = vec![CodeArtifact::with_defects(0, 200, 2, vec![DefectKind::SimpleLogic])];
        let (report, d) = gate_artifacts(&spec, &arts);
        assert_eq!(report.count(Severity::Error), 0);
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(d.cause, RootCause::Inconclusive);
    }

    #[test]
    fn clean_artifacts_pass_as_faithful() {
        let spec = PaperSpec::for_system(TargetSystem::ApKeep);
        let arts: Vec<CodeArtifact> = (0..spec.components.len())
            .map(|i| CodeArtifact::with_defects(i, 120, 2, vec![]))
            .collect();
        let (report, d) = gate_artifacts(&spec, &arts);
        assert!(report.findings.is_empty());
        assert_eq!(d.cause, RootCause::Faithful);
    }
}
