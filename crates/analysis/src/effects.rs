//! Effect-inference determinism analyzer.
//!
//! The soundness of the memo layer (`core::cache`), the speculative
//! pool (`core::pool`) and the shard merge (`core::shard`) all rest on
//! one claim: *`execute_cell` is a pure function of `CellId`*. This
//! module proves that claim transitively instead of trusting
//! hand-maintained per-file lists.
//!
//! **Lattice.** Every function gets a set of effects:
//!
//! * `SeededRng` — draws from a seeded RNG (deterministic, but
//!   stream-order-sensitive);
//! * `Wallclock` — reads real time (`Instant::now`, `elapsed`, …);
//! * `UnorderedIter` — iterates a `HashMap`/`HashSet`;
//! * `GlobalState` — atomics, locks, channels, env, threads, process
//!   state;
//! * `Io` — filesystem, sockets, stdio;
//! * `Panic` — can unwind (`panic!`, `unwrap`, `resume_unwind`).
//!
//! The empty set is *Pure*. `assert!`-family macros are deliberately
//! not `Panic`: they express invariants whose failure is a bug, not a
//! behavior.
//!
//! **Inference.** Intrinsic effects are seeded from a std-API table
//! (call paths like `Instant::now`, method names like `.lock(…)`,
//! macros like `println!`) plus hash-iteration facts from the call
//! graph, then propagated caller-ward to a fixpoint over
//! [`crate::callgraph`] edges. Method calls resolve by name to every
//! workspace method in the caller's *dependency cone* — `core` code
//! calling `.append(…)` on a `dyn` sink unions the sinks `core` can
//! see, not the CLI's file journal (which the CLI's own cone does
//! see). Workspace resolution and the std table are unioned, so a
//! wrapper named like a std API keeps its real effects.
//!
//! **Allowances.** `// effect-allow(Effect, …): reason` on a function
//! masks those effects from propagating to callers — the audited
//! boundary (e.g. memo stat counters are `GlobalState` internally but
//! invisible to replay). Stale or unknown allowances are findings, so
//! the escape hatch burns down like `repolint.allow` does.
//!
//! **Enforcement.** Roots with budgets: `execute_cell` must be
//! `Pure|SeededRng`, the commit path and `shard::merge` must be pure,
//! pool/shard drivers may add `GlobalState|Panic` (locks, channel ops,
//! panic re-raise) but never `Wallclock`. Every violation prints a
//! witness chain `root → … → offending fn` ending at the intrinsic
//! source. A root that no longer matches any function is itself an
//! error, so a rename cannot silently drop enforcement.
//!
//! **Known limits** (documented, deliberate): effects behind trait
//! objects whose impls live outside the caller's cone are invisible
//! (sinks are audited boundaries instead); indexing/division panics
//! and allocator aborts are not modeled; `shims/*` are treated as the
//! external APIs they stand in for.

use crate::callgraph::{CallGraph, CallKind, CallSite, FnInfo};
use crate::finding::{AnalysisReport, Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One effect in the determinism lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Draws from a seeded RNG stream.
    SeededRng,
    /// Reads the real clock.
    Wallclock,
    /// Iterates a `HashMap`/`HashSet` (order not deterministic).
    UnorderedIter,
    /// Touches process-global state: atomics, locks, channels,
    /// threads, env.
    GlobalState,
    /// Filesystem / socket / stdio I/O.
    Io,
    /// May unwind.
    Panic,
}

impl Effect {
    /// All effects, in canonical order.
    pub const ALL: [Effect; 6] = [
        Effect::SeededRng,
        Effect::Wallclock,
        Effect::UnorderedIter,
        Effect::GlobalState,
        Effect::Io,
        Effect::Panic,
    ];

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Effect::SeededRng => "SeededRng",
            Effect::Wallclock => "Wallclock",
            Effect::UnorderedIter => "UnorderedIter",
            Effect::GlobalState => "GlobalState",
            Effect::Io => "Io",
            Effect::Panic => "Panic",
        }
    }

    /// Parse a canonical name.
    pub fn parse(s: &str) -> Option<Effect> {
        Effect::ALL.iter().copied().find(|e| e.name() == s)
    }

    fn bit(self) -> u8 {
        match self {
            Effect::SeededRng => 1,
            Effect::Wallclock => 2,
            Effect::UnorderedIter => 4,
            Effect::GlobalState => 8,
            Effect::Io => 16,
            Effect::Panic => 32,
        }
    }
}

/// A set of [`Effect`]s; empty means *Pure*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The empty (pure) set.
    pub const PURE: EffectSet = EffectSet(0);

    /// Build from a slice.
    pub fn of(effects: &[Effect]) -> EffectSet {
        let mut s = EffectSet::PURE;
        for e in effects {
            s.insert(*e);
        }
        s
    }

    /// Add one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Set union.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Set difference.
    pub fn minus(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & !other.0)
    }

    /// Membership.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Is this Pure?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// `Pure` or `A|B|C`.
    pub fn label(self) -> String {
        if self.is_empty() {
            "Pure".to_string()
        } else {
            self.iter().map(|e| e.name()).collect::<Vec<_>>().join("|")
        }
    }
}

/// An enforcement root: a function (suffix-matched by qualified path)
/// with an effect budget.
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// Qualified-path suffix, e.g. `core::harness::Sweep::execute_cell`.
    pub path: String,
    /// Effects the root may expose.
    pub budget: EffectSet,
    /// Why this budget (shown in reports).
    pub note: String,
}

/// Analyzer configuration: roots and inventory scope.
#[derive(Debug, Clone)]
pub struct EffectConfig {
    /// Enforcement roots.
    pub roots: Vec<RootSpec>,
    /// Effects inventoried (intrinsic occurrences listed in the
    /// report/baseline).
    pub inventory: EffectSet,
    /// Crates excluded from the inventory (e.g. `bench`, whose whole
    /// point is wall-clock measurement).
    pub inventory_skip_crates: Vec<String>,
}

impl EffectConfig {
    /// The netrepro workspace's root budgets.
    pub fn workspace_default() -> EffectConfig {
        use Effect::*;
        let root = |path: &str, budget: &[Effect], note: &str| RootSpec {
            path: path.to_string(),
            budget: EffectSet::of(budget),
            note: note.to_string(),
        };
        EffectConfig {
            roots: vec![
                root(
                    "core::harness::Sweep::execute_cell",
                    &[SeededRng],
                    "memo replay is sound only if a cell is a pure function of CellId",
                ),
                root(
                    "core::harness::Sweep::execute_cell_uncached",
                    &[SeededRng],
                    "the uncached path is the function the memo layer claims to replay",
                ),
                root(
                    "core::harness::Sweep::commit_cell",
                    &[],
                    "commit advances the virtual clock and breakers; any effect here skews resume",
                ),
                root(
                    "core::shard::merge",
                    &[],
                    "the canonical journal is rebuilt here; order and content must be exact",
                ),
                root(
                    "core::shard::run_shard",
                    &[SeededRng, GlobalState, Panic],
                    "drives the pool (locks, panic re-raise) but must never read the wall clock",
                ),
                root(
                    "core::pool::run_ordered",
                    &[SeededRng, GlobalState, Panic],
                    "speculative workers may lock/signal and re-raise, never time-observe",
                ),
                root(
                    "core::session::ReproductionSession::run_with_faults",
                    &[SeededRng],
                    "a session is replayed byte-for-byte from its seed",
                ),
                root(
                    "te::ncflow::solve_ncflow",
                    &[Wallclock, GlobalState, Panic],
                    "R2 solves run on scoped threads that join deterministically; \
                     resume_unwind re-raises worker bugs; timing is report-only",
                ),
                root(
                    "te::arrow::solve_arrow",
                    &[Wallclock],
                    "solver timing is reported, but results must not depend on hash order",
                ),
                root(
                    "lp::fallback::FallbackSolver::solve",
                    &[],
                    "solve results are memoized by fingerprint; the solve itself must be pure",
                ),
                root(
                    "bdd::manager::BddManager::apply",
                    &[],
                    "node numbering must be reproducible across runs",
                ),
                root(
                    "serve::sched::Scheduler::submit",
                    &[GlobalState],
                    "admission is a pure decision over locked state; its ledger write-ahead \
                     goes through the storage boundary's audited Io allows",
                ),
                root(
                    "serve::sched::Scheduler::worker_loop",
                    &[SeededRng, GlobalState, Panic],
                    "scheduling (locks, condvars, poison-job catch_unwind) around seeded cell \
                     execution; wall-clock reads here would skew fairness and resume",
                ),
                root(
                    "serve::sched::Scheduler::recover",
                    &[GlobalState],
                    "restart must rebuild state purely from ledger + journal bytes",
                ),
                root(
                    "serve::ledger::parse_ledger",
                    &[],
                    "ledger replay is pure parse; any effect here breaks crash recovery",
                ),
                root(
                    "serve::spec::JobSpec::parse",
                    &[],
                    "a spec token must deterministically build the same SweepConfig as the CLI",
                ),
            ],
            inventory: EffectSet::of(&[SeededRng, Wallclock, UnorderedIter, GlobalState]),
            inventory_skip_crates: vec!["bench".to_string()],
        }
    }
}

/// Where an effect enters a function directly.
#[derive(Debug, Clone)]
struct IntrinsicSource {
    effect: Effect,
    label: String,
    line: usize,
}

/// One budget violation with its witness chain.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The effect exceeding the budget.
    pub effect: Effect,
    /// Qualified call chain from the root to the intrinsic source.
    pub chain: Vec<String>,
    /// Human description of the source (`\`Instant::now\` at file:line`).
    pub source: String,
}

/// Per-root verdict.
#[derive(Debug, Clone)]
pub struct RootReport {
    /// The configured root path.
    pub root: String,
    /// Its budget.
    pub budget: EffectSet,
    /// Functions it matched (empty = enforcement hole, reported as an
    /// error).
    pub matched: Vec<String>,
    /// Exposed effects (after allowances), unioned over matches.
    pub effects: EffectSet,
    /// Budget violations.
    pub violations: Vec<Violation>,
}

/// One declared `effect-allow` boundary.
#[derive(Debug, Clone)]
pub struct AllowanceReport {
    /// Qualified function path.
    pub function: String,
    /// Declared effects.
    pub effects: EffectSet,
    /// The audit reason.
    pub reason: String,
    /// Source file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Declared effects the function does not actually have (finding).
    pub stale: EffectSet,
    /// Effect names that did not parse (finding).
    pub unknown: Vec<String>,
}

/// Engine counters.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Crates scanned.
    pub crates: usize,
    /// Files scanned.
    pub files: usize,
    /// Non-test functions analyzed.
    pub functions: usize,
    /// Resolved workspace call edges.
    pub edges: usize,
    /// Intrinsic effect sources found.
    pub intrinsic_sources: usize,
}

/// The full analysis result.
#[derive(Debug)]
pub struct EffectReport {
    /// Counters.
    pub stats: EngineStats,
    /// Per-root verdicts, in config order.
    pub roots: Vec<RootReport>,
    /// Declared audited boundaries.
    pub allowances: Vec<AllowanceReport>,
    /// Effect name → sorted intrinsic occurrences
    /// (`fn — source @ file:line`).
    pub inventory: BTreeMap<String, Vec<String>>,
}

impl EffectReport {
    /// Any enforcement failure (violation or unmatched root)?
    pub fn has_violations(&self) -> bool {
        self.roots.iter().any(|r| !r.violations.is_empty() || r.matched.is_empty())
    }

    /// Fold into the shared finding model (Error per violation or
    /// unmatched root, Warning per stale/unknown allowance).
    pub fn findings(&self) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        for r in &self.roots {
            if r.matched.is_empty() {
                report.push(Finding {
                    rule: "effectroot".into(),
                    severity: Severity::Error,
                    subject: r.root.clone(),
                    message: "enforcement root matches no function — renamed or removed? \
                              update EffectConfig so the budget keeps applying"
                        .into(),
                });
            }
            for v in &r.violations {
                report.push(Finding {
                    rule: "effectroot".into(),
                    severity: Severity::Error,
                    subject: r.root.clone(),
                    message: format!(
                        "undeclared effect {} (budget {}): {} · source: {}",
                        v.effect.name(),
                        r.budget.label(),
                        v.chain.join(" → "),
                        v.source
                    ),
                });
            }
        }
        for a in &self.allowances {
            for u in &a.unknown {
                report.push(Finding {
                    rule: "effectallow".into(),
                    severity: Severity::Warning,
                    subject: a.function.clone(),
                    message: format!("unknown effect `{u}` in effect-allow directive"),
                });
            }
            if !a.stale.is_empty() {
                report.push(Finding {
                    rule: "effectallow".into(),
                    severity: Severity::Warning,
                    subject: a.function.clone(),
                    message: format!(
                        "stale allowance: declares {} but analysis finds no such effect — \
                         delete it or re-audit",
                        a.stale.label()
                    ),
                });
            }
        }
        report
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "effects: {} crates · {} files · {} functions · {} edges · {} intrinsic sources\n",
            self.stats.crates,
            self.stats.files,
            self.stats.functions,
            self.stats.edges,
            self.stats.intrinsic_sources
        ));
        out.push_str("\nroots:\n");
        for r in &self.roots {
            let verdict = if r.matched.is_empty() {
                "MISSING"
            } else if r.violations.is_empty() {
                "ok"
            } else {
                "VIOLATION"
            };
            out.push_str(&format!(
                "  [{verdict}] {}  budget={}  effects={}\n",
                r.root,
                r.budget.label(),
                r.effects.label()
            ));
            for v in &r.violations {
                out.push_str(&format!("      {} via {}\n", v.effect.name(), v.chain.join(" → ")));
                out.push_str(&format!("      source: {}\n", v.source));
            }
        }
        out.push_str(&format!("\nallowances ({}):\n", self.allowances.len()));
        for a in &self.allowances {
            out.push_str(&format!(
                "  {}  {}  — {} ({}:{})\n",
                a.function,
                a.effects.label(),
                a.reason,
                a.file,
                a.line
            ));
        }
        out.push_str("\ninventory:\n");
        for (effect, items) in &self.inventory {
            out.push_str(&format!("  {effect} ({}):\n", items.len()));
            for it in items {
                out.push_str(&format!("    {it}\n"));
            }
        }
        out
    }

    /// Stable JSON (schema `effects-v1`) for the committed baseline.
    pub fn render_json(&self) -> String {
        let mut w = String::new();
        w.push_str("{\n  \"schema\": \"effects-v1\",\n");
        w.push_str(&format!(
            "  \"stats\": {{\"crates\": {}, \"files\": {}, \"functions\": {}, \"edges\": {}, \"intrinsic_sources\": {}}},\n",
            self.stats.crates,
            self.stats.files,
            self.stats.functions,
            self.stats.edges,
            self.stats.intrinsic_sources
        ));
        w.push_str("  \"roots\": [\n");
        for (i, r) in self.roots.iter().enumerate() {
            w.push_str("    {");
            w.push_str(&format!("\"root\": {}, ", json_str(&r.root)));
            w.push_str(&format!("\"budget\": {}, ", json_str(&r.budget.label())));
            w.push_str(&format!("\"effects\": {}, ", json_str(&r.effects.label())));
            w.push_str(&format!(
                "\"matched\": [{}], ",
                r.matched.iter().map(|m| json_str(m)).collect::<Vec<_>>().join(", ")
            ));
            w.push_str("\"violations\": [");
            let vs: Vec<String> = r
                .violations
                .iter()
                .map(|v| {
                    format!(
                        "{{\"effect\": {}, \"chain\": [{}], \"source\": {}}}",
                        json_str(v.effect.name()),
                        v.chain.iter().map(|c| json_str(c)).collect::<Vec<_>>().join(", "),
                        json_str(&v.source)
                    )
                })
                .collect();
            w.push_str(&vs.join(", "));
            w.push_str("]}");
            w.push_str(if i + 1 < self.roots.len() { ",\n" } else { "\n" });
        }
        w.push_str("  ],\n  \"allowances\": [\n");
        for (i, a) in self.allowances.iter().enumerate() {
            w.push_str(&format!(
                "    {{\"function\": {}, \"effects\": {}, \"reason\": {}, \"file\": {}, \"line\": {}}}{}",
                json_str(&a.function),
                json_str(&a.effects.label()),
                json_str(&a.reason),
                json_str(&a.file),
                a.line,
                if i + 1 < self.allowances.len() { ",\n" } else { "\n" }
            ));
        }
        w.push_str("  ],\n  \"inventory\": {\n");
        let n = self.inventory.len();
        for (i, (effect, items)) in self.inventory.iter().enumerate() {
            w.push_str(&format!("    {}: [\n", json_str(effect)));
            for (j, it) in items.iter().enumerate() {
                w.push_str(&format!(
                    "      {}{}\n",
                    json_str(it),
                    if j + 1 < items.len() { "," } else { "" }
                ));
            }
            w.push_str(&format!("    ]{}\n", if i + 1 < n { "," } else { "" }));
        }
        w.push_str("  }\n}\n");
        w
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Scan `root` and run the analyzer with `cfg`.
pub fn analyze(root: &Path, cfg: &EffectConfig) -> Result<EffectReport, String> {
    let graph = CallGraph::scan(root)?;
    Ok(analyze_graph(&graph, cfg))
}

/// Run the analyzer over an already-extracted call graph.
pub fn analyze_graph(graph: &CallGraph, cfg: &EffectConfig) -> EffectReport {
    let live: Vec<usize> =
        (0..graph.fns.len()).filter(|&i| !graph.fns[i].is_test).collect();

    // Name indexes over non-test functions.
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for &i in &live {
        let f = &graph.fns[i];
        match &f.self_type {
            None => free_by_name.entry(f.name.as_str()).or_default().push(i),
            Some(t) => {
                methods_by_name.entry(f.name.as_str()).or_default().push(i);
                assoc.entry((t.as_str(), f.name.as_str())).or_default().push(i);
            }
        }
    }
    let cones: BTreeMap<&str, BTreeSet<String>> =
        graph.crates.keys().map(|c| (c.as_str(), graph.cone(c))).collect();
    let all_cone: BTreeSet<String> = graph.crates.keys().cloned().collect();
    let cone_of = |crate_id: &str| cones.get(crate_id).unwrap_or(&all_cone);

    // Per-fn: resolved edges, intrinsic effects + sources, declared set.
    let n = graph.fns.len();
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut intrinsic: Vec<EffectSet> = vec![EffectSet::PURE; n];
    let mut sources: Vec<Vec<IntrinsicSource>> = vec![Vec::new(); n];
    let mut declared: Vec<EffectSet> = vec![EffectSet::PURE; n];
    let mut allowances: Vec<AllowanceReport> = Vec::new();

    for &i in &live {
        let f = &graph.fns[i];
        let cone = cone_of(&f.crate_id);
        for call in &f.calls {
            for t in resolve_call(f, call, graph, &free_by_name, &methods_by_name, &assoc, cone) {
                if t != i {
                    edges[i].insert(t);
                }
            }
            if let Some((e, label)) = intrinsic_of(call) {
                intrinsic[i].insert(e);
                sources[i].push(IntrinsicSource { effect: e, label, line: call.line });
            }
        }
        for &line in &f.hash_iter_lines {
            intrinsic[i].insert(Effect::UnorderedIter);
            sources[i].push(IntrinsicSource {
                effect: Effect::UnorderedIter,
                label: "HashMap/HashSet iteration".into(),
                line,
            });
        }
        for (ident, line) in &f.maybe_hash_iters {
            if graph.hash_fields.contains(ident) {
                intrinsic[i].insert(Effect::UnorderedIter);
                sources[i].push(IntrinsicSource {
                    effect: Effect::UnorderedIter,
                    label: format!("iteration over hash-typed field `{ident}`"),
                    line: *line,
                });
            }
        }
        if !f.directives.is_empty() {
            let mut set = EffectSet::PURE;
            let mut unknown = Vec::new();
            let mut reasons = Vec::new();
            let mut line = 0usize;
            for d in &f.directives {
                line = d.line + 1;
                for name in &d.effects {
                    match Effect::parse(name) {
                        Some(e) => set.insert(e),
                        None => unknown.push(name.clone()),
                    }
                }
                if !d.reason.is_empty() {
                    reasons.push(d.reason.clone());
                }
            }
            declared[i] = set;
            allowances.push(AllowanceReport {
                function: f.qualified(),
                effects: set,
                reason: reasons.join("; "),
                file: f.file.clone(),
                line,
                stale: EffectSet::PURE, // filled after the fixpoint
                unknown,
            });
        }
    }

    // Fixpoint: callers absorb callees' effects minus the callee's
    // declared allowances.
    let mut eff = intrinsic.clone();
    loop {
        let mut changed = false;
        for &i in &live {
            let mut acc = eff[i];
            for &g in &edges[i] {
                acc = acc.union(eff[g].minus(declared[g]));
            }
            if acc != eff[i] {
                eff[i] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Stale allowances: declared effects the function never has.
    for a in &mut allowances {
        if let Some(&i) = live.iter().find(|&&i| graph.fns[i].qualified() == a.function) {
            a.stale = a.effects.minus(eff[i]);
        }
    }
    allowances.sort_by(|a, b| a.function.cmp(&b.function));

    // Roots.
    let mut roots = Vec::new();
    for spec in &cfg.roots {
        let want: Vec<&str> = spec.path.split("::").collect();
        let mut matched = Vec::new();
        let mut exposed = EffectSet::PURE;
        let mut violations = Vec::new();
        for &i in &live {
            let f = &graph.fns[i];
            let segs = f.segments();
            if segs.len() < want.len()
                || segs[segs.len() - want.len()..]
                    .iter()
                    .zip(&want)
                    .any(|(a, b)| a != b)
            {
                continue;
            }
            matched.push(f.qualified());
            let ex = eff[i].minus(declared[i]);
            exposed = exposed.union(ex);
            for e in ex.minus(spec.budget).iter() {
                if let Some(v) = witness(i, e, graph, &edges, &eff, &declared, &intrinsic, &sources)
                {
                    violations.push(v);
                }
            }
        }
        matched.sort();
        roots.push(RootReport {
            root: spec.path.clone(),
            budget: spec.budget,
            matched,
            effects: exposed,
            violations,
        });
    }

    // Inventory of intrinsic sources for the reviewable baseline.
    let mut inventory: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for &i in &live {
        let f = &graph.fns[i];
        if cfg.inventory_skip_crates.contains(&f.crate_id) {
            continue;
        }
        for s in &sources[i] {
            if cfg.inventory.contains(s.effect) {
                inventory.entry(s.effect.name().to_string()).or_default().push(format!(
                    "{} — {} @ {}:{}",
                    f.qualified(),
                    s.label,
                    f.file,
                    s.line + 1
                ));
            }
        }
    }
    for items in inventory.values_mut() {
        items.sort();
        items.dedup();
    }

    let stats = EngineStats {
        crates: graph.crates.len(),
        files: graph.files,
        functions: live.len(),
        edges: edges.iter().map(|e| e.len()).sum(),
        intrinsic_sources: sources.iter().map(|s| s.len()).sum(),
    };
    EffectReport { stats, roots, allowances, inventory }
}

/// Shortest caller→…→source chain for `e` starting at `from`.
#[allow(clippy::too_many_arguments)]
fn witness(
    from: usize,
    e: Effect,
    graph: &CallGraph,
    edges: &[BTreeSet<usize>],
    eff: &[EffectSet],
    declared: &[EffectSet],
    intrinsic: &[EffectSet],
    sources: &[Vec<IntrinsicSource>],
) -> Option<Violation> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    let mut seen = BTreeSet::new();
    queue.push_back(from);
    seen.insert(from);
    while let Some(cur) = queue.pop_front() {
        if intrinsic[cur].contains(e) {
            let mut chain = vec![graph.fns[cur].qualified()];
            let mut at = cur;
            while let Some(&p) = parent.get(&at) {
                chain.push(graph.fns[p].qualified());
                at = p;
            }
            chain.reverse();
            let src = sources[cur]
                .iter()
                .find(|s| s.effect == e)
                .map(|s| format!("{} at {}:{}", s.label, graph.fns[cur].file, s.line + 1))
                .unwrap_or_else(|| "intrinsic".to_string());
            return Some(Violation { effect: e, chain, source: src });
        }
        for &g in &edges[cur] {
            if !seen.contains(&g) && eff[g].minus(declared[g]).contains(e) {
                seen.insert(g);
                parent.insert(g, cur);
                queue.push_back(g);
            }
        }
    }
    None
}

/// Resolve a call site to workspace functions within the caller's
/// dependency cone.
fn resolve_call(
    caller: &FnInfo,
    call: &CallSite,
    graph: &CallGraph,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    assoc: &BTreeMap<(&str, &str), Vec<usize>>,
    cone: &BTreeSet<String>,
) -> Vec<usize> {
    match call.kind {
        CallKind::Macro => Vec::new(),
        CallKind::Method => {
            let name = call.path.first().map(|s| s.as_str()).unwrap_or("");
            methods_by_name
                .get(name)
                .map(|c| {
                    c.iter()
                        .copied()
                        .filter(|&i| cone.contains(&graph.fns[i].crate_id))
                        .collect()
                })
                .unwrap_or_default()
        }
        CallKind::Plain => {
            let mut segs: Vec<&str> = call.path.iter().map(|s| s.as_str()).collect();
            let mut same_crate_only = false;
            while matches!(segs.first(), Some(&"crate") | Some(&"self") | Some(&"super")) {
                same_crate_only = true;
                segs.remove(0);
            }
            // `std::…` / `core::…` absolute std paths are never
            // workspace items (our own crate ids shadow neither since
            // the workspace `core` crate is reached as `netrepro_core`
            // in code, mapped below via suffix match on module path).
            if matches!(segs.first(), Some(&"std")) {
                return Vec::new();
            }
            let Some(&name) = segs.last() else { return Vec::new() };
            let quals = &segs[..segs.len() - 1];
            let type_qual = quals
                .last()
                .filter(|q| q.chars().next().is_some_and(|c| c.is_uppercase() || **q == "Self"));
            if let Some(&q) = type_qual {
                let ty = if q == "Self" {
                    match &caller.self_type {
                        Some(t) => t.as_str(),
                        None => return Vec::new(),
                    }
                } else {
                    q
                };
                return assoc
                    .get(&(ty, name))
                    .map(|c| {
                        c.iter()
                            .copied()
                            .filter(|&i| cone.contains(&graph.fns[i].crate_id))
                            .collect()
                    })
                    .unwrap_or_default();
            }
            let Some(cands) = free_by_name.get(name) else { return Vec::new() };
            let viable: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &graph.fns[i];
                    if !cone.contains(&f.crate_id) {
                        return false;
                    }
                    if same_crate_only && f.crate_id != caller.crate_id {
                        return false;
                    }
                    if quals.is_empty() {
                        return true;
                    }
                    // Module-suffix match: call `shard::merge` matches
                    // `core::shard::…::merge`.
                    let segs_f = f.segments();
                    let path_part = &segs_f[..segs_f.len() - 1];
                    path_part.len() >= quals.len()
                        && path_part[path_part.len() - quals.len()..]
                            .iter()
                            .zip(quals.iter())
                            .all(|(a, b)| a == b)
                })
                .collect();
            // Prefer the tightest scope for bare names: same module,
            // then same crate, then the whole cone.
            if quals.is_empty() {
                let same_mod: Vec<usize> = viable
                    .iter()
                    .copied()
                    .filter(|&i| {
                        graph.fns[i].crate_id == caller.crate_id
                            && graph.fns[i].module == caller.module
                    })
                    .collect();
                if !same_mod.is_empty() {
                    return same_mod;
                }
                let same_crate: Vec<usize> = viable
                    .iter()
                    .copied()
                    .filter(|&i| graph.fns[i].crate_id == caller.crate_id)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
            }
            viable
        }
    }
}

/// The std-API intrinsic table: what a call site means when it does
/// not (only) resolve to workspace code.
fn intrinsic_of(call: &CallSite) -> Option<(Effect, String)> {
    let last = call.path.last().map(|s| s.as_str()).unwrap_or("");
    match call.kind {
        CallKind::Macro => {
            let e = match last {
                "panic" | "unreachable" | "todo" | "unimplemented" => Effect::Panic,
                "println" | "print" | "eprintln" | "eprint" | "dbg" | "write" | "writeln" => {
                    Effect::Io
                }
                _ => return None,
            };
            Some((e, format!("`{last}!` macro")))
        }
        CallKind::Method => {
            let e = match last {
                "unwrap" | "expect" | "unwrap_err" | "expect_err" => Effect::Panic,
                "elapsed" => Effect::Wallclock,
                "random" | "random_range" | "random_bool" | "random_ratio" | "gen_range"
                | "gen_bool" | "sample" | "shuffle" | "choose" => Effect::SeededRng,
                "fetch_add" | "fetch_sub" | "fetch_and" | "fetch_or" | "fetch_xor"
                | "fetch_max" | "fetch_min" | "fetch_update" | "compare_exchange"
                | "compare_exchange_weak" => Effect::GlobalState,
                "lock" | "try_lock" | "call_once" | "wait" | "wait_timeout" | "wait_while"
                | "notify_one" | "notify_all" | "recv" | "try_recv" | "recv_timeout" | "send"
                | "try_wait" | "spawn" => Effect::GlobalState,
                "flush" | "write_all" | "write_fmt" | "sync_all" | "sync_data"
                | "read_to_string" | "read_to_end" | "read_line" | "read_exact" | "accept"
                | "set_nonblocking" | "kill" => Effect::Io,
                "load" | "store" | "swap" if call.has_ordering_arg => Effect::GlobalState,
                _ => return None,
            };
            Some((e, format!("`.{last}(…)`")))
        }
        CallKind::Plain => {
            if call.path.iter().any(|s| s == "Error") {
                return None; // io::Error::new etc. — constructors, pure.
            }
            let two = if call.path.len() >= 2 {
                format!("{}::{}", call.path[call.path.len() - 2], last)
            } else {
                String::new()
            };
            let e = match two.as_str() {
                "Instant::now" | "SystemTime::now" => Some(Effect::Wallclock),
                "thread::sleep" => Some(Effect::Wallclock),
                "rand::rng" => Some(Effect::GlobalState),
                _ => None,
            };
            if let Some(e) = e {
                return Some((e, format!("`{two}`")));
            }
            let e = match last {
                "thread_rng" => Some(Effect::GlobalState),
                "seed_from_u64" | "from_seed" | "from_os_rng" | "from_entropy" => {
                    Some(Effect::SeededRng)
                }
                "available_parallelism" => Some(Effect::GlobalState),
                "panic_any" | "resume_unwind" => Some(Effect::Panic),
                "set_hook" | "take_hook" => Some(Effect::GlobalState),
                _ => None,
            };
            if let Some(e) = e {
                return Some((e, format!("`{last}`")));
            }
            for seg in &call.path {
                let e = match seg.as_str() {
                    "fs" | "File" | "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket"
                    | "Command" | "Stdio" | "io" => Some(Effect::Io),
                    "env" | "process" | "mpsc" | "thread" => Some(Effect::GlobalState),
                    "StdRng" | "SmallRng" | "SeedableRng" => Some(Effect::SeededRng),
                    _ => None,
                };
                if let Some(e) = e {
                    return Some((e, format!("`{}`", call.path.join("::"))));
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{CallKind, CallSite};

    fn call(kind: CallKind, path: &[&str]) -> CallSite {
        CallSite {
            kind,
            path: path.iter().map(|s| s.to_string()).collect(),
            line: 0,
            has_ordering_arg: false,
        }
    }

    #[test]
    fn effect_set_algebra() {
        let a = EffectSet::of(&[Effect::SeededRng, Effect::Io]);
        let b = EffectSet::of(&[Effect::Io]);
        assert_eq!(a.minus(b), EffectSet::of(&[Effect::SeededRng]));
        assert!(a.union(b).contains(Effect::Io));
        assert_eq!(EffectSet::PURE.label(), "Pure");
        assert_eq!(a.label(), "SeededRng|Io");
        assert_eq!(Effect::parse("Wallclock"), Some(Effect::Wallclock));
        assert_eq!(Effect::parse("wallclock"), None);
    }

    #[test]
    fn intrinsic_table_classifies_std_calls() {
        let cases = [
            (call(CallKind::Plain, &["Instant", "now"]), Some(Effect::Wallclock)),
            (call(CallKind::Plain, &["std", "thread", "sleep"]), Some(Effect::Wallclock)),
            (call(CallKind::Plain, &["fs", "read_to_string"]), Some(Effect::Io)),
            (call(CallKind::Plain, &["io", "Error", "new"]), None),
            (call(CallKind::Plain, &["StdRng", "seed_from_u64"]), Some(Effect::SeededRng)),
            (call(CallKind::Plain, &["env", "var"]), Some(Effect::GlobalState)),
            (call(CallKind::Plain, &["helper"]), None),
            (call(CallKind::Method, &["unwrap"]), Some(Effect::Panic)),
            (call(CallKind::Method, &["elapsed"]), Some(Effect::Wallclock)),
            (call(CallKind::Method, &["random_range"]), Some(Effect::SeededRng)),
            (call(CallKind::Method, &["lock"]), Some(Effect::GlobalState)),
            (call(CallKind::Method, &["insert"]), None),
            (call(CallKind::Macro, &["panic"]), Some(Effect::Panic)),
            (call(CallKind::Macro, &["println"]), Some(Effect::Io)),
            (call(CallKind::Macro, &["assert_eq"]), None),
            (call(CallKind::Macro, &["format"]), None),
        ];
        for (c, want) in cases {
            let got = intrinsic_of(&c).map(|(e, _)| e);
            assert_eq!(got, want, "case {:?} {:?}", c.kind, c.path);
        }
    }

    #[test]
    fn atomic_load_needs_ordering_arg() {
        let mut c = call(CallKind::Method, &["load"]);
        assert_eq!(intrinsic_of(&c), None);
        c.has_ordering_arg = true;
        assert_eq!(intrinsic_of(&c).map(|(e, _)| e), Some(Effect::GlobalState));
    }
}
