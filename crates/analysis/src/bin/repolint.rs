//! The workspace invariant linter, as a CI-runnable binary:
//! `cargo run -p analysis --bin repolint [-- --root DIR --allowlist FILE]`
//! for the pattern rules, or `-- --effects [--json]` for the
//! effect-inference determinism analyzer.
//!
//! Exit status: 0 when no error-severity findings remain (for
//! `--effects`, additionally no warnings — `-D` semantics: stale
//! allowances fail CI too), 1 otherwise, 2 on usage/IO problems.

use analysis::effects::{analyze, EffectConfig};
use analysis::repolint::{lint, LintConfig};
use analysis::Severity;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut effects = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "--effects" => effects = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: repolint [--root DIR] [--allowlist FILE] [--effects [--json]]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if json && !effects {
        return usage("--json requires --effects");
    }
    if effects {
        return match analyze(&root, &EffectConfig::workspace_default()) {
            Ok(report) => {
                if json {
                    print!("{}", report.render_json());
                } else {
                    print!("{}", report.render_text());
                }
                let findings = report.findings();
                if findings.count_at_least(Severity::Warning) > 0 {
                    if !json {
                        print!("{}", findings.render_text());
                    }
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("repolint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let allowlist = allowlist.unwrap_or_else(|| root.join("repolint.allow"));
    match lint(&root, &LintConfig::default(), &allowlist) {
        Ok(report) => {
            print!("{}", report.render_text());
            if report.count(Severity::Error) > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("repolint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("repolint: {msg}\nusage: repolint [--root DIR] [--allowlist FILE] [--effects [--json]]");
    ExitCode::from(2)
}
