//! Static analysis for the netrepro workspace — two tiers, one
//! finding model.
//!
//! **Tier A** ([`audit`]) inspects generated [`CodeArtifact`]s before
//! anything executes: the §3.3 defect taxonomy (type errors, interop
//! mismatches, simplified logic) is detected from the structural
//! [`netrepro_core::llm::CodeSurface`] alone, and [`gate`] folds the
//! result into `core::diagnosis` as a pre-execution gate
//! (`RootCause::StaticallyRejected`).
//!
//! **Tier B** ([`repolint`]) lints the workspace's own sources for
//! invariants clippy cannot express — wall-clock reads in seeded
//! modules, unwraps on pipeline boundaries, hash-order iteration
//! feeding deterministic outputs, panic policy — with a checked-in
//! burn-down allowlist (`repolint.allow`). Run it as
//! `cargo run -p analysis --bin repolint`.
//!
//! Both tiers report through [`finding::Finding`] /
//! [`finding::AnalysisReport`] and both run in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod callgraph;
pub mod effects;
pub mod finding;
pub mod gate;
pub mod lexer;
pub mod repolint;
pub mod selfcheck;

pub use finding::{AnalysisReport, Finding, Severity};

#[allow(unused_imports)] // doc link
use netrepro_core::llm::CodeArtifact;
