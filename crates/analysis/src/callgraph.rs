//! Workspace call-graph extraction for the effect-inference analyzer.
//!
//! This is the *syntactic* half of [`crate::effects`]: it walks every
//! crate's `src/` tree (the root umbrella crate plus `crates/*`;
//! `shims/*` are external stand-ins and are deliberately out of
//! scope), lexes each file with [`crate::lexer`], and extracts
//!
//! * **items** — free functions, inherent/trait methods and associated
//!   functions, with their crate, module path (derived from the file
//!   layout plus inline `mod` blocks), `impl`/`trait` type context,
//!   and a `cfg(test)`/`#[test]` flag;
//! * **call sites** — qualified paths (`Instant::now`, `shard::merge`),
//!   method calls (`.lock(…)`), and macro invocations (`panic!`),
//!   with local `let`/parameter bindings shadowing bare idents so a
//!   closure variable named like a workspace function never resolves
//!   to it;
//! * **iteration facts** — `for _ in map` / `map.iter()`-family uses
//!   whose receiver is bound to a `HashMap`/`HashSet` (locally, by
//!   parameter type, or by any struct field of hash type), feeding the
//!   `UnorderedIter` effect;
//! * **allow directives** — `// effect-allow(Effect, …): reason`
//!   comments immediately preceding a function, the audited-boundary
//!   escape hatch consumed by the inference pass.
//!
//! Resolution of call sites to workspace functions (and the
//! dependency-cone filtering that keeps, say, the CLI's file-journal
//! `append` from leaking `Io` into `core::shard::merge` through a
//! `dyn` sink) lives in [`crate::effects`]; this module only reports
//! what the source *says*.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// How a call site invokes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// A path call: `f(…)`, `mod::f(…)`, `Type::assoc(…)`.
    Plain,
    /// A method call: `recv.m(…)`.
    Method,
    /// A macro invocation: `name!(…)`.
    Macro,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the call is written.
    pub kind: CallKind,
    /// Path segments: the full path for [`CallKind::Plain`]
    /// (`["Instant", "now"]`), a single segment for methods/macros.
    pub path: Vec<String>,
    /// 0-based source line of the call.
    pub line: usize,
    /// For method calls named `load`/`store`/`swap` etc.: whether the
    /// argument list mentions an atomic memory `Ordering`, which
    /// distinguishes atomics from same-named methods on domain types.
    pub has_ordering_arg: bool,
}

/// A `// effect-allow(Effect, …): reason` directive attached to the
/// function item it immediately precedes.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Raw effect names from inside the parentheses (validated by the
    /// inference pass, which rejects unknown names).
    pub effects: Vec<String>,
    /// The free-text audit justification after the colon.
    pub reason: String,
    /// 0-based line of the directive comment.
    pub line: usize,
}

/// One function item: a free function, an inherent or trait method,
/// or an associated function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Crate identifier (the directory name under `crates/`, or the
    /// root package name for the umbrella crate).
    pub crate_id: String,
    /// Module path inside the crate (file layout + inline `mod`s).
    pub module: Vec<String>,
    /// `impl`/`trait` type context when this is a method or associated
    /// function.
    pub self_type: Option<String>,
    /// The function name.
    pub name: String,
    /// Repo-relative source file.
    pub file: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Inside `#[cfg(test)]`/`#[test]` — excluded from enforcement.
    pub is_test: bool,
    /// Effect allowances declared on this function.
    pub directives: Vec<Directive>,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Lines where an ident *known locally* to be hash-typed is
    /// iterated.
    pub hash_iter_lines: Vec<usize>,
    /// Iterated idents of unknown type (checked against the global
    /// hash-field name set by the inference pass): `(ident, line)`.
    pub maybe_hash_iters: Vec<(String, usize)>,
}

impl FnInfo {
    /// Full qualified path: `crate::module::Type::name`.
    pub fn qualified(&self) -> String {
        self.segments().join("::")
    }

    /// Qualified path as owned segments.
    pub fn segments(&self) -> Vec<String> {
        let mut s = vec![self.crate_id.clone()];
        s.extend(self.module.iter().cloned());
        if let Some(t) = &self.self_type {
            s.push(t.clone());
        }
        s.push(self.name.clone());
        s
    }
}

/// Per-crate metadata from `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Crate identifier (directory name; root package name for `.`).
    pub id: String,
    /// `[package] name` (equals `id` when no manifest was found).
    pub package: String,
    /// Direct dependencies, as crate identifiers (workspace members
    /// only; external names are dropped).
    pub deps: BTreeSet<String>,
    /// Whether a manifest was parsed. Without one the dependency cone
    /// conservatively includes every crate.
    pub deps_known: bool,
}

/// The extracted workspace: all functions plus crate metadata.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function item found (tests included, flagged).
    pub fns: Vec<FnInfo>,
    /// Crate id → metadata.
    pub crates: BTreeMap<String, CrateInfo>,
    /// Names of struct fields declared with a `HashMap`/`HashSet`
    /// type anywhere in the workspace (coarse, name-keyed).
    pub hash_fields: BTreeSet<String>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl CallGraph {
    /// Scan a workspace rooted at `root`: the root package's `src/`
    /// (if any) plus every `crates/*/src`. Fails only on unreadable
    /// directory structure; unreadable single files are skipped.
    pub fn scan(root: &Path) -> Result<CallGraph, String> {
        let mut graph = CallGraph {
            fns: Vec::new(),
            crates: BTreeMap::new(),
            hash_fields: BTreeSet::new(),
            files: 0,
        };
        let mut members: Vec<(String, PathBuf)> = Vec::new();

        // Root umbrella package.
        let root_manifest = manifest_of(&root.join("Cargo.toml"));
        if root.join("src").is_dir() {
            let id = root_manifest
                .as_ref()
                .map(|m| m.package.clone())
                .unwrap_or_else(|| "root".to_string());
            members.push((id, root.to_path_buf()));
        }

        // crates/* members, sorted for determinism.
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
                .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("src").is_dir())
                .collect();
            entries.sort();
            for dir in entries {
                let id = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                if !id.is_empty() {
                    members.push((id, dir));
                }
            }
        }

        // Crate metadata: package names first, then dependency edges
        // (manifest keys are package names; map them back to ids).
        let mut manifests: BTreeMap<String, Manifest> = BTreeMap::new();
        for (id, dir) in &members {
            if let Some(m) = manifest_of(&dir.join("Cargo.toml")) {
                manifests.insert(id.clone(), m);
            }
        }
        let package_to_id: BTreeMap<String, String> = members
            .iter()
            .map(|(id, _)| {
                let pkg = manifests.get(id).map(|m| m.package.clone()).unwrap_or_else(|| id.clone());
                (pkg, id.clone())
            })
            .collect();
        for (id, _) in &members {
            let (package, deps, known) = match manifests.get(id) {
                Some(m) => {
                    let deps = m
                        .dep_keys
                        .iter()
                        .filter_map(|k| package_to_id.get(k).cloned())
                        .filter(|d| d != id)
                        .collect();
                    (m.package.clone(), deps, true)
                }
                None => (id.clone(), BTreeSet::new(), false),
            };
            graph.crates.insert(
                id.clone(),
                CrateInfo { id: id.clone(), package, deps, deps_known: known },
            );
        }

        // Source files.
        for (id, dir) in &members {
            let mut files = Vec::new();
            collect_rs(&dir.join("src"), &mut files);
            files.sort();
            for f in files {
                let Ok(src) = fs::read_to_string(&f) else { continue };
                graph.files += 1;
                let rel = f
                    .strip_prefix(root)
                    .unwrap_or(&f)
                    .to_string_lossy()
                    .replace('\\', "/");
                let module = module_path_of(&f, &dir.join("src"));
                let toks = lex(&src);
                let mut p = Parser {
                    t: &toks,
                    i: 0,
                    out: &mut graph.fns,
                    hash_fields: &mut graph.hash_fields,
                };
                let ctx = Ctx {
                    crate_id: id,
                    file: &rel,
                    module,
                    self_type: None,
                    in_test: false,
                };
                let end = toks.len();
                p.parse_items(end, &ctx);
            }
        }
        Ok(graph)
    }

    /// The dependency cone of a crate: itself plus its transitive
    /// workspace dependencies. A crate without a parsed manifest gets
    /// the whole workspace (conservative).
    pub fn cone(&self, crate_id: &str) -> BTreeSet<String> {
        match self.crates.get(crate_id) {
            None => self.crates.keys().cloned().collect(),
            Some(c) if !c.deps_known => self.crates.keys().cloned().collect(),
            Some(_) => {
                let mut seen: BTreeSet<String> = BTreeSet::new();
                let mut work = vec![crate_id.to_string()];
                while let Some(cur) = work.pop() {
                    if !seen.insert(cur.clone()) {
                        continue;
                    }
                    if let Some(info) = self.crates.get(&cur) {
                        for d in &info.deps {
                            if !seen.contains(d) {
                                work.push(d.clone());
                            }
                        }
                    }
                }
                seen
            }
        }
    }
}

struct Manifest {
    package: String,
    dep_keys: BTreeSet<String>,
}

/// Minimal `Cargo.toml` reader: `[package] name` and the keys of
/// `[dependencies]`. Line-oriented; enough for workspace manifests.
fn manifest_of(path: &Path) -> Option<Manifest> {
    let text = fs::read_to_string(path).ok()?;
    let mut section = String::new();
    let mut package = String::new();
    let mut dep_keys = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    package = v.trim().trim_matches('"').to_string();
                }
            }
        } else if section == "dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                .collect();
            if !key.is_empty() {
                dep_keys.insert(key);
            }
        }
    }
    if package.is_empty() {
        None
    } else {
        Some(Manifest { package, dep_keys })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Module path for a file under `src/`: directory components plus the
/// file stem, with `lib`/`main`/`mod` stems dropped.
fn module_path_of(file: &Path, src: &Path) -> Vec<String> {
    let rel = file.strip_prefix(src).unwrap_or(file);
    let mut parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
        if matches!(last.as_str(), "lib" | "main" | "mod") {
            parts.pop();
        }
    }
    parts
}

#[derive(Clone)]
struct Ctx<'a> {
    crate_id: &'a str,
    file: &'a str,
    module: Vec<String>,
    self_type: Option<String>,
    in_test: bool,
}

const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "into_keys", "into_values",
    "drain",
];

const ORDERED_ATOMIC_METHODS: &[&str] =
    &["load", "store", "swap", "compare_exchange", "compare_exchange_weak", "fetch_update"];

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "box",
    "unsafe", "else", "let", "fn", "impl", "dyn", "where", "break", "continue", "await",
];

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    out: &'a mut Vec<FnInfo>,
    hash_fields: &'a mut BTreeSet<String>,
}

impl Parser<'_> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.t.get(i) {
            Some(Token { kind: TokenKind::Ident, text, .. }) => Some(text),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.t.get(i), Some(t) if t.kind == TokenKind::Punct(c))
    }

    fn line_at(&self, i: usize) -> usize {
        self.t.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Index just past the token matching the opener at `open_idx`.
    fn skip_balanced(&self, open_idx: usize, open: char, close: char, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open_idx;
        while j < end {
            if self.punct_at(j, open) {
                depth += 1;
            } else if self.punct_at(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip a generic parameter list starting at `<`. Treats `->`'s
    /// `>` as plain punctuation (it can appear inside `Fn(..) -> T`
    /// bounds).
    fn skip_angles(&self, open_idx: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open_idx;
        while j < end {
            if self.punct_at(j, '<') {
                depth += 1;
            } else if self.punct_at(j, '>') && !(j > 0 && self.punct_at(j - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    fn skip_to_semi(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = from;
        while j < end {
            match self.t.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct(c @ ('{' | '(' | '['))) => {
                    let _ = c;
                    depth += 1;
                }
                Some(TokenKind::Punct('}' | ')' | ']')) => depth -= 1,
                Some(TokenKind::Punct(';')) if depth <= 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parse items until `end`. Recurses into `mod`/`impl`/`trait`
    /// blocks; registers functions into `self.out`.
    fn parse_items(&mut self, end: usize, ctx: &Ctx) {
        let mut pending_test = false;
        let mut pending_dirs: Vec<Directive> = Vec::new();
        while self.i < end {
            let i = self.i;
            match self.t.get(i).map(|t| &t.kind) {
                Some(TokenKind::Comment) => {
                    if let Some(d) = parse_directive(&self.t[i]) {
                        pending_dirs.push(d);
                    }
                    self.i += 1;
                }
                Some(TokenKind::Punct('#')) => {
                    // Attribute. Inner (`#![…]`) attrs are skipped;
                    // outer attrs mentioning `test` (without `not`)
                    // mark the next item as test-only.
                    let inner = self.punct_at(i + 1, '!');
                    let open = if inner { i + 2 } else { i + 1 };
                    if self.punct_at(open, '[') {
                        let after = self.skip_balanced(open, '[', ']', end);
                        if !inner {
                            let mut has_test = false;
                            let mut has_not = false;
                            for k in open..after {
                                if let Some(w) = self.ident_at(k) {
                                    has_test |= w == "test";
                                    has_not |= w == "not";
                                }
                            }
                            if has_test && !has_not {
                                pending_test = true;
                            }
                        }
                        self.i = after;
                    } else {
                        self.i += 1;
                    }
                }
                Some(TokenKind::Ident) => {
                    let word = self.t[i].text.as_str();
                    match word {
                        "mod" => {
                            if self.punct_at(i + 2, '{') {
                                let name =
                                    self.ident_at(i + 1).unwrap_or_default().to_string();
                                let body_end = self.skip_balanced(i + 2, '{', '}', end);
                                let mut sub = ctx.clone();
                                sub.module.push(name);
                                sub.in_test |= pending_test;
                                self.i = i + 3;
                                self.parse_items(body_end.saturating_sub(1), &sub);
                                self.i = body_end;
                            } else {
                                self.i = self.skip_to_semi(i, end);
                            }
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "impl" | "trait" => {
                            let (ty, body_open) = self.impl_header(i, end, word == "trait");
                            if self.punct_at(body_open, '{') {
                                let body_end =
                                    self.skip_balanced(body_open, '{', '}', end);
                                let mut sub = ctx.clone();
                                sub.self_type = ty;
                                sub.in_test |= pending_test;
                                self.i = body_open + 1;
                                self.parse_items(body_end.saturating_sub(1), &sub);
                                self.i = body_end;
                            } else {
                                self.i = body_open.max(i + 1);
                            }
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "fn" => {
                            let mut sub = ctx.clone();
                            sub.in_test |= pending_test;
                            let dirs = std::mem::take(&mut pending_dirs);
                            self.parse_fn(end, &sub, dirs);
                            pending_test = false;
                        }
                        "struct" | "union" => {
                            self.parse_struct(end);
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "enum" => {
                            let mut j = i + 1;
                            while j < end
                                && !self.punct_at(j, '{')
                                && !self.punct_at(j, ';')
                            {
                                j = if self.punct_at(j, '<') {
                                    self.skip_angles(j, end)
                                } else {
                                    j + 1
                                };
                            }
                            self.i = if self.punct_at(j, '{') {
                                self.skip_balanced(j, '{', '}', end)
                            } else {
                                j + 1
                            };
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "macro_rules" => {
                            let mut j = i + 1;
                            while j < end
                                && !self.punct_at(j, '{')
                                && !self.punct_at(j, '(')
                            {
                                j += 1;
                            }
                            self.i = if self.punct_at(j, '{') {
                                self.skip_balanced(j, '{', '}', end)
                            } else if self.punct_at(j, '(') {
                                self.skip_to_semi(j, end)
                            } else {
                                j
                            };
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "use" | "static" | "type" => {
                            self.i = self.skip_to_semi(i, end);
                            pending_test = false;
                            pending_dirs.clear();
                        }
                        "const" => {
                            if self.ident_at(i + 1) == Some("fn") {
                                self.i += 1; // const fn — handled next.
                            } else {
                                self.i = self.skip_to_semi(i, end);
                                pending_test = false;
                                pending_dirs.clear();
                            }
                        }
                        "pub" => {
                            self.i = if self.punct_at(i + 1, '(') {
                                self.skip_balanced(i + 1, '(', ')', end)
                            } else {
                                i + 1
                            };
                        }
                        _ => self.i += 1,
                    }
                }
                Some(_) => self.i += 1,
                None => break,
            }
        }
    }

    /// Resolve an `impl`/`trait` header starting at `at`: the subject
    /// type name and the index of the opening `{`.
    fn impl_header(&self, at: usize, end: usize, is_trait: bool) -> (Option<String>, usize) {
        let mut j = at + 1;
        let mut first: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut saw_where = false;
        while j < end && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
            if self.punct_at(j, '<') {
                j = self.skip_angles(j, end);
                continue;
            }
            if let Some(w) = self.ident_at(j) {
                match w {
                    "for" => saw_for = true,
                    "where" => saw_where = true,
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    _ if saw_where => {}
                    _ if saw_for => {
                        if after_for.is_none() {
                            after_for = Some(w.to_string());
                        }
                    }
                    _ => {
                        if first.is_none() {
                            first = Some(w.to_string());
                        }
                    }
                }
            }
            j += 1;
        }
        let ty = if is_trait { first } else { after_for.or(first) };
        (ty, j)
    }

    /// Harvest `HashMap`/`HashSet`-typed field names from a `struct`.
    fn parse_struct(&mut self, end: usize) {
        let i = self.i;
        let mut j = i + 1;
        while j < end
            && !self.punct_at(j, '{')
            && !self.punct_at(j, '(')
            && !self.punct_at(j, ';')
        {
            j = if self.punct_at(j, '<') { self.skip_angles(j, end) } else { j + 1 };
        }
        if self.punct_at(j, '(') {
            // Tuple struct: `struct X(…);`
            self.i = self.skip_to_semi(j, end);
            return;
        }
        if !self.punct_at(j, '{') {
            self.i = j + 1;
            return;
        }
        let body_end = self.skip_balanced(j, '{', '}', end);
        let mut k = j + 1;
        let last = body_end.saturating_sub(1);
        while k < last {
            // A field is `name :` at top depth, type runs to the comma.
            if self.ident_at(k).is_some()
                && self.punct_at(k + 1, ':')
                && !self.punct_at(k + 2, ':')
                && !self.punct_at(k.wrapping_sub(1), ':')
            {
                let name = self.ident_at(k).unwrap_or_default().to_string();
                let mut depth = 0i64;
                let mut m = k + 2;
                let mut is_hash = false;
                while m < last {
                    match self.t.get(m).map(|t| &t.kind) {
                        Some(TokenKind::Punct('(' | '[')) => depth += 1,
                        Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                        Some(TokenKind::Punct('<')) => depth += 1,
                        Some(TokenKind::Punct('>')) => depth -= 1,
                        Some(TokenKind::Punct(',')) if depth <= 0 => break,
                        Some(TokenKind::Ident)
                            if matches!(self.t[m].text.as_str(), "HashMap" | "HashSet") =>
                        {
                            is_hash = true;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                if is_hash {
                    self.hash_fields.insert(name);
                }
                k = m;
            } else {
                k += 1;
            }
        }
        self.i = body_end;
    }

    /// Parse a `fn` item at `self.i`; registers it (with body facts)
    /// unless it is a body-less trait method declaration.
    fn parse_fn(&mut self, end: usize, ctx: &Ctx, dirs: Vec<Directive>) {
        let at = self.i;
        let Some(name) = self.ident_at(at + 1).map(|s| s.to_string()) else {
            self.i = at + 1;
            return;
        };
        let mut j = at + 2;
        if self.punct_at(j, '<') {
            j = self.skip_angles(j, end);
        }
        if !self.punct_at(j, '(') {
            self.i = at + 1;
            return;
        }
        let params_end = self.skip_balanced(j, '(', ')', end);

        // Parameter names (shadow set) and hash-typed params.
        let mut locals: BTreeSet<String> = BTreeSet::new();
        let mut local_hash: BTreeSet<String> = BTreeSet::new();
        let mut depth = 0i64;
        let mut k = j;
        while k < params_end {
            match self.t.get(k).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[' | '<')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '>')) => depth -= 1,
                Some(TokenKind::Ident)
                    if depth == 1
                        && self.punct_at(k + 1, ':')
                        && !self.punct_at(k + 2, ':')
                        && self.t[k].text != "self" =>
                {
                    let pname = self.t[k].text.clone();
                    // Scan the type for hash containers.
                    let mut m = k + 2;
                    let mut d2 = 0i64;
                    let mut is_hash = false;
                    while m < params_end {
                        match self.t.get(m).map(|t| &t.kind) {
                            Some(TokenKind::Punct('(' | '[' | '<')) => d2 += 1,
                            Some(TokenKind::Punct(']' | '>')) => d2 -= 1,
                            Some(TokenKind::Punct(')')) => {
                                if d2 <= 0 {
                                    break;
                                }
                                d2 -= 1;
                            }
                            Some(TokenKind::Punct(',')) if d2 <= 0 => break,
                            Some(TokenKind::Ident)
                                if matches!(
                                    self.t[m].text.as_str(),
                                    "HashMap" | "HashSet"
                                ) =>
                            {
                                is_hash = true;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    if is_hash {
                        local_hash.insert(pname.clone());
                    }
                    locals.insert(pname);
                }
                _ => {}
            }
            k += 1;
        }

        // Return type / where clause: scan to `{` or `;`.
        let mut b = params_end;
        while b < end && !self.punct_at(b, '{') && !self.punct_at(b, ';') {
            b += 1;
        }
        if !self.punct_at(b, '{') {
            // Trait method declaration without a body.
            self.i = b + 1;
            return;
        }
        let body_end = self.skip_balanced(b, '{', '}', end);

        let mut info = FnInfo {
            crate_id: ctx.crate_id.to_string(),
            module: ctx.module.clone(),
            self_type: ctx.self_type.clone(),
            name,
            file: ctx.file.to_string(),
            line: self.line_at(at),
            is_test: ctx.in_test,
            directives: dirs,
            calls: Vec::new(),
            hash_iter_lines: Vec::new(),
            maybe_hash_iters: Vec::new(),
        };
        self.extract_facts(b + 1, body_end.saturating_sub(1), ctx, &mut info, locals, local_hash);
        self.out.push(info);
        self.i = body_end;
    }

    /// Walk a function body collecting call sites and iteration facts.
    #[allow(clippy::too_many_arguments)]
    fn extract_facts(
        &mut self,
        start: usize,
        end: usize,
        ctx: &Ctx,
        info: &mut FnInfo,
        mut locals: BTreeSet<String>,
        mut local_hash: BTreeSet<String>,
    ) {
        let mut j = start;
        while j < end {
            match self.t.get(j).map(|t| &t.kind) {
                Some(TokenKind::Comment) | None => {
                    j += 1;
                }
                Some(TokenKind::Ident) => {
                    let w = self.t[j].text.as_str();
                    if w == "fn" && self.ident_at(j + 1).is_some() {
                        // Nested function item.
                        self.i = j;
                        self.parse_fn(end, ctx, Vec::new());
                        j = self.i.max(j + 1);
                        continue;
                    }
                    if w == "let" {
                        let mut off = j + 1;
                        if self.ident_at(off) == Some("mut") {
                            off += 1;
                        }
                        if let Some(bname) = self.ident_at(off) {
                            let bname = bname.to_string();
                            // Hash-typed if the decl/initializer up to
                            // `;` mentions HashMap/HashSet.
                            let stop = self.skip_to_semi(off, end);
                            let is_hash = (off..stop).any(|m| {
                                matches!(
                                    self.ident_at(m),
                                    Some("HashMap") | Some("HashSet")
                                )
                            });
                            if is_hash {
                                local_hash.insert(bname.clone());
                            } else {
                                local_hash.remove(&bname);
                            }
                            locals.insert(bname);
                        }
                        j += 1;
                        continue;
                    }
                    if w == "for" {
                        self.for_loop_iter_fact(j, end, info, &locals, &local_hash);
                        j += 1;
                        continue;
                    }
                    // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
                    if self.punct_at(j + 1, '!')
                        && (self.punct_at(j + 2, '(')
                            || self.punct_at(j + 2, '[')
                            || self.punct_at(j + 2, '{'))
                    {
                        info.calls.push(CallSite {
                            kind: CallKind::Macro,
                            path: vec![w.to_string()],
                            line: self.t[j].line,
                            has_ordering_arg: false,
                        });
                        j += 2;
                        continue;
                    }
                    // Plain path call: `x(…)` not preceded by `.`.
                    if self.punct_at(j + 1, '(')
                        && !(j > 0 && self.punct_at(j - 1, '.'))
                        && !CALL_KEYWORDS.contains(&w)
                    {
                        if let Some(path) = self.path_backwards(j, start) {
                            let single = path.len() == 1;
                            let last_upper = path
                                .last()
                                .and_then(|s| s.chars().next())
                                .is_some_and(|c| c.is_uppercase());
                            let shadowed = single && locals.contains(&path[0]);
                            if !last_upper && !shadowed {
                                info.calls.push(CallSite {
                                    kind: CallKind::Plain,
                                    path,
                                    line: self.t[j].line,
                                    has_ordering_arg: false,
                                });
                            }
                        }
                    }
                    j += 1;
                }
                Some(TokenKind::Punct('.')) => {
                    if let Some(m) = self.ident_at(j + 1) {
                        if self.punct_at(j + 2, '(') {
                            let m = m.to_string();
                            let has_ordering = ORDERED_ATOMIC_METHODS
                                .contains(&m.as_str())
                                && self.args_mention_ordering(j + 2, end);
                            if ITER_METHODS.contains(&m.as_str()) {
                                self.receiver_iter_fact(j, info, &locals, &local_hash);
                            }
                            info.calls.push(CallSite {
                                kind: CallKind::Method,
                                path: vec![m],
                                line: self.t[j].line,
                                has_ordering_arg: has_ordering,
                            });
                            j += 2;
                            continue;
                        }
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    }

    /// Build the `a::b::f` path ending at the ident at `j`, walking
    /// `::`-joined segments backwards (stopping at turbofish `>`).
    fn path_backwards(&self, j: usize, floor: usize) -> Option<Vec<String>> {
        let mut segs = vec![self.t.get(j)?.text.clone()];
        let mut k = j;
        while k >= floor + 3
            && self.punct_at(k - 1, ':')
            && self.punct_at(k - 2, ':')
            && self.ident_at(k - 3).is_some()
        {
            segs.insert(0, self.t[k - 3].text.clone());
            k -= 3;
        }
        Some(segs)
    }

    /// Does the argument list starting at `(` mention an atomic
    /// memory ordering?
    fn args_mention_ordering(&self, open: usize, end: usize) -> bool {
        let close = self.skip_balanced(open, '(', ')', end);
        (open..close).any(|m| {
            matches!(
                self.ident_at(m),
                Some("Ordering" | "SeqCst" | "Relaxed" | "Acquire" | "Release" | "AcqRel")
            )
        })
    }

    /// `for pat in <chain> {`: record an iteration fact for the last
    /// ident of a plain receiver chain (`&self.results` → `results`).
    fn for_loop_iter_fact(
        &self,
        at: usize,
        end: usize,
        info: &mut FnInfo,
        locals: &BTreeSet<String>,
        local_hash: &BTreeSet<String>,
    ) {
        // Find `in` at pattern depth 0, within a short window.
        let mut depth = 0i64;
        let mut j = at + 1;
        let window = (at + 40).min(end);
        let mut in_at = None;
        while j < window {
            match self.t.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                Some(TokenKind::Ident) if depth == 0 && self.t[j].text == "in" => {
                    in_at = Some(j);
                    break;
                }
                Some(TokenKind::Punct('{')) => return,
                _ => {}
            }
            j += 1;
        }
        let Some(mut k) = in_at.map(|x| x + 1) else { return };
        while self.punct_at(k, '&') || self.ident_at(k) == Some("mut") {
            k += 1;
        }
        // Ident ('.' Ident)* chain.
        let mut last: Option<String> = None;
        while let Some(w) = self.ident_at(k) {
            last = Some(w.to_string());
            if self.punct_at(k + 1, '.') && self.ident_at(k + 2).is_some() {
                k += 2;
            } else {
                k += 1;
                break;
            }
        }
        // A trailing `(` means the chain ends in a call — the method
        // handler owns that case.
        if self.punct_at(k, '(') {
            return;
        }
        let Some(name) = last else { return };
        if name == "self" {
            return;
        }
        if local_hash.contains(&name) {
            info.hash_iter_lines.push(self.t[at].line);
        } else if !locals.contains(&name) {
            info.maybe_hash_iters.push((name, self.t[at].line));
        }
    }

    /// `recv.iter()`-family: record an iteration fact for the ident
    /// immediately before the dot at `dot`.
    fn receiver_iter_fact(
        &self,
        dot: usize,
        info: &mut FnInfo,
        locals: &BTreeSet<String>,
        local_hash: &BTreeSet<String>,
    ) {
        if dot == 0 {
            return;
        }
        let Some(recv) = self.ident_at(dot - 1) else { return };
        if recv == "self" || recv.chars().next().is_some_and(|c| c.is_uppercase()) {
            return;
        }
        let recv = recv.to_string();
        if local_hash.contains(&recv) {
            info.hash_iter_lines.push(self.t[dot].line);
        } else if !locals.contains(&recv) {
            info.maybe_hash_iters.push((recv, self.t[dot].line));
        }
    }
}

/// Parse a `// effect-allow(Effect, …): reason` comment. Doc comments
/// (`///`, `//!`, `/**`) are prose — mentioning the directive there
/// must not declare one.
fn parse_directive(tok: &Token) -> Option<Directive> {
    if tok.text.starts_with('/') || tok.text.starts_with('!') || tok.text.starts_with('*') {
        return None;
    }
    let text = tok.text.trim();
    let rest = text.split_once("effect-allow(")?.1;
    let (inside, tail) = rest.split_once(')')?;
    let effects: Vec<String> = inside
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if effects.is_empty() {
        return None;
    }
    let reason = tail.trim_start_matches(':').trim().to_string();
    Some(Directive { effects, reason, line: tok.line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> (Vec<FnInfo>, BTreeSet<String>) {
        let toks = lex(src);
        let mut fns = Vec::new();
        let mut hash_fields = BTreeSet::new();
        let mut p = Parser { t: &toks, i: 0, out: &mut fns, hash_fields: &mut hash_fields };
        let ctx = Ctx {
            crate_id: "c",
            file: "c/src/lib.rs",
            module: vec![],
            self_type: None,
            in_test: false,
        };
        let end = toks.len();
        p.parse_items(end, &ctx);
        (fns, hash_fields)
    }

    #[test]
    fn extracts_free_fn_and_method() {
        let (fns, _) = parse_src(
            "pub fn free() { helper(); }\nimpl Widget { fn m(&self) { self.free_list.push(1); } }",
        );
        let names: Vec<String> = fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["c::free", "c::Widget::m"]);
        assert_eq!(fns[0].calls.len(), 1);
        assert_eq!(fns[0].calls[0].path, vec!["helper"]);
    }

    #[test]
    fn trait_impl_uses_the_implementing_type() {
        let (fns, _) = parse_src(
            "impl<P: Bound, F> Sink for Journal<P, F> { fn append(&mut self) { flush_it() } }",
        );
        assert_eq!(fns[0].qualified(), "c::Journal::append");
    }

    #[test]
    fn cfg_test_items_are_flagged() {
        let (fns, _) = parse_src(
            "#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\nfn real() {}",
        );
        let by_name: BTreeMap<&str, bool> =
            fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert!(by_name["helper"]);
        assert!(by_name["t"]);
        assert!(!by_name["real"]);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let (fns, _) = parse_src("#[cfg(not(test))]\nfn shipped() {}");
        assert!(!fns[0].is_test);
    }

    #[test]
    fn qualified_paths_and_macros_are_captured() {
        let (fns, _) = parse_src(
            "fn f() { let t = Instant::now(); std::thread::sleep(d); panic!(\"x\"); }",
        );
        let calls = &fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.kind == CallKind::Plain && c.path == vec!["Instant", "now"]));
        assert!(calls
            .iter()
            .any(|c| c.kind == CallKind::Plain && c.path == vec!["std", "thread", "sleep"]));
        assert!(calls.iter().any(|c| c.kind == CallKind::Macro && c.path == vec!["panic"]));
    }

    #[test]
    fn locals_shadow_bare_calls() {
        let (fns, _) = parse_src("fn f(gate: impl Fn()) { gate(); let cb = mk(); cb(); real(); }");
        let plain: Vec<&str> = fns[0]
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Plain)
            .map(|c| c.path[0].as_str())
            .collect();
        assert!(!plain.contains(&"gate"));
        assert!(!plain.contains(&"cb"));
        assert!(plain.contains(&"mk"));
        assert!(plain.contains(&"real"));
    }

    #[test]
    fn constructors_are_not_calls() {
        let (fns, _) = parse_src("fn f() { let a = Some(1); let b = CellId(2); mk_pair(a, b); }");
        let plain: Vec<&str> =
            fns[0].calls.iter().map(|c| c.path.last().map(|s| s.as_str()).unwrap_or("")).collect();
        assert!(!plain.contains(&"Some"));
        assert!(!plain.contains(&"CellId"));
        assert!(plain.contains(&"mk_pair"));
    }

    #[test]
    fn hash_iteration_is_detected_for_locals_and_fields() {
        let (fns, fields) = parse_src(
            "struct S { index: HashMap<u32, u32>, names: Vec<String> }\n\
             fn f() { let mut m = HashMap::new(); for k in &m { use_it(k); } }\n\
             fn g(s: &S) { for (k, v) in s.index.iter() { use_it(k); } }\n\
             fn h() { let v = vec![1]; for x in &v { use_it(x); } }",
        );
        assert!(fields.contains("index"));
        assert!(!fields.contains("names"));
        let f = fns.iter().find(|f| f.name == "f").expect("f");
        assert_eq!(f.hash_iter_lines.len(), 1);
        let g = fns.iter().find(|f| f.name == "g").expect("g");
        assert!(g.maybe_hash_iters.iter().any(|(n, _)| n == "index"));
        let h = fns.iter().find(|f| f.name == "h").expect("h");
        assert!(h.hash_iter_lines.is_empty());
        assert!(h.maybe_hash_iters.is_empty());
    }

    #[test]
    fn atomic_ordering_args_are_flagged() {
        let (fns, _) = parse_src(
            "fn f(a: &AtomicU64, s: &Store) { a.load(Ordering::Relaxed); s.load(key); }",
        );
        let loads: Vec<bool> = fns[0]
            .calls
            .iter()
            .filter(|c| c.kind == CallKind::Method && c.path[0] == "load")
            .map(|c| c.has_ordering_arg)
            .collect();
        assert_eq!(loads, vec![true, false]);
    }

    #[test]
    fn effect_allow_directives_attach_to_the_next_fn() {
        let (fns, _) = parse_src(
            "// effect-allow(GlobalState, Io): audited journal boundary\nfn sink() {}\nfn clean() {}",
        );
        assert_eq!(fns[0].directives.len(), 1);
        assert_eq!(fns[0].directives[0].effects, vec!["GlobalState", "Io"]);
        assert_eq!(fns[0].directives[0].reason, "audited journal boundary");
        assert!(fns[1].directives.is_empty());
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let (fns, _) = parse_src(
            "trait Sink { fn append(&mut self, s: &str) -> Result<(), String>; fn ok(&self) -> bool { true } }",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["ok"]);
        assert_eq!(fns[0].self_type.as_deref(), Some("Sink"));
    }

    #[test]
    fn nested_fns_are_registered_separately() {
        let (fns, _) = parse_src("fn outer() { fn inner() { deep(); } inner(); }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"outer"));
        let outer = fns.iter().find(|f| f.name == "outer").expect("outer");
        assert!(outer.calls.iter().all(|c| c.path != vec!["deep"]));
    }

    #[test]
    fn module_paths_from_inline_mods() {
        let (fns, _) = parse_src("mod inner { pub fn f() {} }");
        assert_eq!(fns[0].qualified(), "c::inner::f");
    }
}
