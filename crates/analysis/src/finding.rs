//! The finding model shared by both analysis tiers: the artifact
//! auditor ([`crate::audit`]) and the workspace linter
//! ([`crate::repolint`]) both report through [`Finding`] /
//! [`AnalysisReport`], so the CLI, the CI steps and the pre-execution
//! gate consume one shape.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational — nothing fails on it (allowlist bookkeeping).
    Info,
    /// Heuristic evidence of a defect; execution should confirm.
    Warning,
    /// A defect that would stop compilation, integration, or CI.
    Error,
}

impl Severity {
    /// Parse a user-facing severity name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" | "warn" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One finding from either tier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Which rule or detector produced it (e.g. `type-error`,
    /// `repolint/unwrap`).
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// What the finding is about: a component name for the auditor, a
    /// `path:line` for the linter.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

/// A batch of findings plus rendering/summary helpers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Add a finding.
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    /// Merge another report into this one.
    pub fn extend(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// Number of findings at `sev` or worse.
    pub fn count_at_least(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= sev).count()
    }

    /// The worst finding, if any (first among equals).
    pub fn worst(&self) -> Option<&Finding> {
        self.findings.iter().max_by_key(|f| f.severity)
    }

    /// One-line summary (`2 errors, 1 warning, 0 info`).
    pub fn summary_line(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }

    /// Render the text report (one line per finding plus the summary).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}: [{}] {}: {}\n", f.severity, f.rule, f.subject, f.message));
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// Render as JSON.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{\"findings\":[]}".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, sev: Severity) -> Finding {
        Finding { rule: rule.into(), severity: sev, subject: "s".into(), message: "m".into() }
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn counts_and_summary() {
        let mut r = AnalysisReport::default();
        r.push(f("a", Severity::Error));
        r.push(f("b", Severity::Warning));
        r.push(f("c", Severity::Warning));
        assert_eq!(r.count_at_least(Severity::Warning), 3);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.worst().unwrap().rule, "a");
        assert!(r.render_text().contains("1 error(s), 2 warning(s)"));
        assert!(r.render_json().contains("\"rule\""));
    }
}
