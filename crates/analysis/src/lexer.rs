//! A real token stream for the workspace's own Rust sources.
//!
//! Both analysis passes that read the repo's source — the
//! [`crate::repolint`] pattern rules and the [`crate::effects`]
//! determinism analyzer — used to share a line-oriented
//! comment/string stripper. That stripper had two classes of bug this
//! module fixes for good:
//!
//! * **raw strings** — only `r"…"` and single-hash `r#"…"#` were
//!   recognised; `r##"…"##` (any hash count ≥ 2) and byte-string
//!   variants (`b"…"`, `br#"…"#`) fell through, so a `.unwrap()`
//!   *inside* such a literal counted as code (and, worse, the
//!   unbalanced quote inverted code/string parity for the rest of the
//!   file);
//! * **block comments** — `/*/` was treated as an opener immediately
//!   closed by its own overlapping `*/`, so `/*/ hidden */ code` leaked
//!   "hidden" as code and swallowed "code" depending on what followed.
//!
//! The lexer produces [`Token`]s with line numbers, keeps comments as
//! trivia (so `// effect-allow(...)` directives survive for the effect
//! engine), and renders a line-preserving stripped text for the
//! pattern rules, making the token stream the single source of truth.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `execute_cell`, `HashMap`).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`) — distinguished from
    /// char literals so `&'a str` never opens a "string".
    Lifetime,
    /// Any punctuation byte (`{`, `(`, `:`, `!`, …), one per token.
    Punct(char),
    /// A string/char/byte/numeric literal (contents elided).
    Literal,
    /// A comment (`//…` or `/*…*/`), contents preserved — directives
    /// like `effect-allow(...)` live here.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// The text: ident/lifetime spelling, comment body (without the
    /// `//` / `/*` framing), or empty for literals.
    pub text: String,
    /// 0-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Is this an identifier with exactly this spelling?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this a given punctuation character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lex Rust source into tokens. Never fails: unterminated literals or
/// comments simply run to end-of-file, which is the resilient choice
/// for a linter (the compiler will report the real error).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                // Line comment: up to (not including) the newline.
                let mut j = i + 2;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Comment,
                    text: b[i + 2..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comment with proper nesting. Scanning resumes
                // *after* the opener, so the overlapping `/*/` cannot
                // close itself.
                let mut depth = 1u32;
                let mut j = i + 2;
                let text_start = j;
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(text_start);
                out.push(Token {
                    kind: TokenKind::Comment,
                    text: b[text_start..text_end].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                i = lex_string(&b, i, &mut line);
                out.push(Token { kind: TokenKind::Literal, text: String::new(), line: start_line });
            }
            '\'' => {
                // Char literal vs lifetime/label. A literal closes with
                // a quote within a short window or starts with an
                // escape; otherwise it is a lifetime.
                let is_char = matches!(
                    (b.get(i + 1), b.get(i + 2)),
                    (Some('\\'), _) | (Some(_), Some('\''))
                );
                if is_char {
                    i = lex_char(&b, i, &mut line);
                    out.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line: start_line,
                    });
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let word: String = b[i..j].iter().collect();
                // Raw/byte string prefixes: r"…", r#"…"#, b"…", br##"…"##.
                // Only when the quote (or hashes then a quote) follows
                // immediately — `var"` is not a prefix because `var`
                // does not match a prefix spelling.
                if matches!(word.as_str(), "r" | "b" | "br" | "rb") {
                    let raw = word.contains('r');
                    let mut k = j;
                    let mut hashes = 0usize;
                    if raw {
                        while b.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                    }
                    if b.get(k) == Some(&'"') {
                        i = if raw {
                            lex_raw_string(&b, k, hashes, &mut line)
                        } else {
                            lex_string(&b, k, &mut line)
                        };
                        out.push(Token {
                            kind: TokenKind::Literal,
                            text: String::new(),
                            line: start_line,
                        });
                        continue;
                    }
                    if word.as_str() == "b" && b.get(k) == Some(&'\'') {
                        i = lex_char(&b, k, &mut line);
                        out.push(Token {
                            kind: TokenKind::Literal,
                            text: String::new(),
                            line: start_line,
                        });
                        continue;
                    }
                }
                out.push(Token { kind: TokenKind::Ident, text: word, line: start_line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numeric literal (incl. underscores, suffixes, hex,
                // exponent's `e±`, float dots).
                let mut j = i;
                while j < b.len()
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || b[j] == '.'
                        || ((b[j] == '+' || b[j] == '-')
                            && matches!(b.get(j.wrapping_sub(1)), Some('e') | Some('E'))))
                {
                    // `1..2` is a range, not a float with two dots.
                    if b[j] == '.' && b.get(j + 1) == Some(&'.') {
                        break;
                    }
                    j += 1;
                }
                out.push(Token { kind: TokenKind::Literal, text: String::new(), line: start_line });
                i = j;
            }
            c => {
                out.push(Token { kind: TokenKind::Punct(c), text: String::new(), line: start_line });
                i += 1;
            }
        }
    }
    out
}

/// Consume a `"…"` string starting at the opening quote; returns the
/// index after the closing quote. Tracks newlines.
fn lex_string(b: &[char], start: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// Consume a raw string whose opening quote is at `start`, closed by
/// `"` followed by `hashes` `#`s. No escapes exist in raw strings.
fn lex_raw_string(b: &[char], start: usize, hashes: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        if b[j] == '"' && (0..hashes).all(|h| b.get(j + 1 + h) == Some(&'#')) {
            return j + 1 + hashes;
        }
        if b[j] == '\n' {
            *line += 1;
        }
        j += 1;
    }
    j
}

/// Consume a `'…'` char literal starting at the opening quote.
fn lex_char(b: &[char], start: usize, line: &mut usize) -> usize {
    let mut j = start + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

/// Render a line-preserving "code only" text: comments, string/char
/// literal contents and lifetimes are blanked, identifiers and
/// punctuation keep their spelling and line, and every line of the
/// original file exists in the output. Pattern rules (`.unwrap()`,
/// `#[cfg(test)]` brace balancing, …) match against this.
pub fn stripped_text(src: &str) -> String {
    let total_lines = src.lines().count().max(1);
    let mut lines: Vec<String> = vec![String::new(); total_lines];
    let mut last: Option<(usize, TokenKind)> = None;
    for t in lex(src) {
        let Some(buf) = lines.get_mut(t.line) else { continue };
        match &t.kind {
            TokenKind::Ident => {
                // A space only between two adjacent identifiers (`let x`);
                // `.unwrap()`-style punctuation-joined patterns must stay
                // byte-adjacent for the rules to match.
                if matches!(&last, Some((l, TokenKind::Ident)) if *l == t.line) {
                    buf.push(' ');
                }
                buf.push_str(&t.text);
            }
            TokenKind::Punct(c) => buf.push(*c),
            TokenKind::Literal | TokenKind::Lifetime | TokenKind::Comment => {}
        }
        last = Some((t.line, t.kind));
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn multi_hash_raw_strings_are_literals() {
        // The old stripper only knew r" and r#", so the ##-form leaked
        // its contents (and its quotes flipped string parity).
        let src = r####"let a = r##"x.unwrap() "quoted" y"##; a.commit()"####;
        let ids = idents(src);
        assert!(ids.contains(&"commit".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"quoted".to_string()), "{ids:?}");
    }

    #[test]
    fn byte_strings_are_literals() {
        let ids = idents(r##"let a = b"x.unwrap()"; let c = br#"y.expect("m")"#; f()"##);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"expect".to_string()), "{ids:?}");
        assert!(ids.contains(&"f".to_string()));
    }

    #[test]
    fn byte_char_literal_is_consumed() {
        let ids = idents(r"let nl = b'\n'; g()");
        assert_eq!(ids, vec!["let", "nl", "g"]);
    }

    #[test]
    fn overlapping_block_comment_opener_does_not_self_close() {
        // `/*/` is an opener whose `*/` must not also close it: the
        // comment runs to the *next* `*/`.
        let ids = idents("/*/ hidden.unwrap() */ code()");
        assert_eq!(ids, vec!["code"]);
    }

    #[test]
    fn nested_block_comments_balance() {
        let ids = idents("/* a /* b */ still_comment */ after()");
        assert_eq!(ids, vec!["after"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
        let lifetimes: Vec<_> =
            lex("&'a str").into_iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "a");
    }

    #[test]
    fn comments_keep_their_text_for_directives() {
        let toks = lex("// effect-allow(GlobalState): stat counters\nfn f() {}");
        let comment = &toks[0];
        assert_eq!(comment.kind, TokenKind::Comment);
        assert!(comment.text.contains("effect-allow(GlobalState)"));
        assert_eq!(comment.line, 0);
        assert!(toks.iter().any(|t| t.is_ident("fn") && t.line == 1));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\nline\nline\";\nfn g() {}\n";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.is_ident("g")).expect("g");
        assert_eq!(g.line, 3);
    }

    #[test]
    fn stripped_text_preserves_lines_and_code() {
        let src = "let a = \"x.unwrap()\"; // .expect(\n/* panic!( */ let c = 'x'; let s = b.unwrap();\n";
        let s = stripped_text(src);
        assert_eq!(s.lines().count(), 2);
        assert!(!s.contains(".expect("));
        assert!(!s.contains("panic!("));
        assert!(s.contains("b.unwrap()"));
        let s2 = stripped_text("r##\"fake.unwrap()\"##;\nreal.unwrap();\n");
        assert!(!s2.lines().next().expect("line").contains("unwrap"));
        assert!(s2.lines().nth(1).expect("line").contains("real.unwrap()"));
    }

    #[test]
    fn range_after_integer_is_not_a_float() {
        let toks = lex("for i in 0..n { f(i) }");
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }
}
