//! Tier A: the artifact auditor.
//!
//! A static pass over [`CodeArtifact`]s that finds each §3.3
//! [`DefectKind`] **without executing anything and without reading the
//! latent defect list** — only the structural
//! [`netrepro_core::llm::CodeSurface`] is inspected:
//!
//! * **TypeError** — intra-component signature/call consistency: a
//!   call site whose argument types disagree with the callee's
//!   declared parameters (what a compiler's type checker sees).
//! * **InteropMismatch** — cross-component interface matching: each
//!   shared type's structural fingerprint is matched against the
//!   spec-pinned registry value ([`canonical_fingerprint`]); a
//!   component that drifted from the layout its peers use is flagged,
//!   with the count of agreeing peers as evidence.
//! * **SimpleLogic** — the off-by-one archetype: a loop whose body
//!   exercises a bound different from the one the surrounding code
//!   declares.
//! * **ComplexLogic** — a LoC-profile heuristic: clean code carries
//!   roughly [`expected_branches`]`(loc)` conditional branches (±8%);
//!   a collapse below 60% of the profile means the hard part of the
//!   algorithm was "simplified" away.
//!
//! Severity mapping: type errors and interop mismatches would stop
//! compilation/integration → [`Severity::Error`]; the two logic
//! heuristics need execution to confirm → [`Severity::Warning`].

use crate::finding::{AnalysisReport, Finding, Severity};
use netrepro_core::llm::{canonical_fingerprint, expected_branches, CodeArtifact};
use netrepro_core::paper::PaperSpec;

/// Branch-count fraction of the LoC profile below which control flow
/// counts as collapsed (clean surfaces stay within ±8%).
pub const BRANCH_COLLAPSE_FRACTION: f64 = 0.6;

fn subject(spec: &PaperSpec, a: &CodeArtifact) -> String {
    spec.components
        .get(a.component)
        .map(|c| c.name.clone())
        .unwrap_or_else(|| format!("component {}", a.component))
}

/// Detect call sites whose argument types disagree with the callee's
/// signature. Returns one message per offending call site.
pub fn detect_type_errors(a: &CodeArtifact) -> Vec<String> {
    let mut out = Vec::new();
    for c in &a.surface.calls {
        match a.surface.signatures.iter().find(|s| s.fn_id == c.callee) {
            Some(sig) if sig.params == c.args => {}
            Some(sig) => out.push(format!(
                "fn {} calls fn {} with argument types {:?} but the signature declares {:?}",
                c.caller, c.callee, c.args, sig.params
            )),
            None => out.push(format!("fn {} calls undeclared fn {}", c.caller, c.callee)),
        }
    }
    out
}

/// Detect shared-type exports that drifted from the spec-pinned
/// interface registry. `peers` is the full artifact set, used to report
/// how many peer components agree with the registry on the same type.
pub fn detect_interop_mismatches(a: &CodeArtifact, peers: &[CodeArtifact]) -> Vec<String> {
    let mut out = Vec::new();
    for e in &a.surface.exports {
        let canon = canonical_fingerprint(e.type_id);
        if e.fingerprint != canon {
            let agreeing = peers
                .iter()
                .filter(|p| {
                    p.component != a.component
                        && p.surface
                            .exports
                            .iter()
                            .any(|pe| pe.type_id == e.type_id && pe.fingerprint == canon)
                })
                .count();
            out.push(format!(
                "shared type {} has fingerprint {:#018x}, but the spec pins {:#018x} \
                 ({agreeing} peer component(s) agree with the spec)",
                e.type_id, e.fingerprint, canon
            ));
        }
    }
    out
}

/// Detect loops whose exercised bound disagrees with the declared one.
pub fn detect_simple_logic(a: &CodeArtifact) -> Vec<String> {
    a.surface
        .loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.exercised_bound != l.declared_bound)
        .map(|(i, l)| {
            format!(
                "loop {i} declares bound {} but exercises {} (off by {})",
                l.declared_bound,
                l.exercised_bound,
                l.exercised_bound as i64 - l.declared_bound as i64
            )
        })
        .collect()
}

/// Detect collapsed control flow: far fewer branches than the LoC
/// profile predicts for code of this size.
pub fn detect_complex_logic(a: &CodeArtifact) -> Vec<String> {
    let expected = expected_branches(a.loc);
    if (a.surface.branches as f64) < BRANCH_COLLAPSE_FRACTION * expected {
        vec![format!(
            "{} branch(es) across {} LoC where the profile predicts ~{:.0}: \
             control flow collapsed below {:.0}% of the expected density",
            a.surface.branches,
            a.loc,
            expected,
            100.0 * BRANCH_COLLAPSE_FRACTION
        )]
    } else {
        Vec::new()
    }
}

/// Audit a set of component artifacts against their paper spec.
pub fn audit(spec: &PaperSpec, artifacts: &[CodeArtifact]) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    for a in artifacts {
        let subj = subject(spec, a);
        for m in detect_type_errors(a) {
            report.push(Finding {
                rule: "type-error".into(),
                severity: Severity::Error,
                subject: subj.clone(),
                message: m,
            });
        }
        for m in detect_interop_mismatches(a, artifacts) {
            report.push(Finding {
                rule: "interop-mismatch".into(),
                severity: Severity::Error,
                subject: subj.clone(),
                message: m,
            });
        }
        for m in detect_simple_logic(a) {
            report.push(Finding {
                rule: "simple-logic".into(),
                severity: Severity::Warning,
                subject: subj.clone(),
                message: m,
            });
        }
        for m in detect_complex_logic(a) {
            report.push(Finding {
                rule: "complex-logic".into(),
                severity: Severity::Warning,
                subject: subj.clone(),
                message: m,
            });
        }
    }
    report
}
