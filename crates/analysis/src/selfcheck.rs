//! The auditor's own acceptance test, runnable from CI
//! (`netrepro analyze --self-check`): across every target system,
//! prompt style and a sweep of seeds, the static detectors must agree
//! *exactly* with the generator's latent defect list — every seeded
//! defect detected, zero false positives — and artifacts with all
//! defects fixed must audit clean.

use crate::audit;
use netrepro_core::llm::{CodeArtifact, DefectKind, SimulatedLlm};
use netrepro_core::paper::{PaperSpec, TargetSystem};
use netrepro_core::prompt::PromptStyle;

/// Tally of a completed self-check.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelfCheckStats {
    /// Artifacts audited (raw + fixed).
    pub artifacts: usize,
    /// Latent defects present, all of which were detected.
    pub defects: usize,
}

const ALL_KINDS: [DefectKind; 4] = [
    DefectKind::TypeError,
    DefectKind::InteropMismatch,
    DefectKind::SimpleLogic,
    DefectKind::ComplexLogic,
];

fn detected(a: &CodeArtifact, peers: &[CodeArtifact], kind: DefectKind) -> bool {
    match kind {
        DefectKind::TypeError => !audit::detect_type_errors(a).is_empty(),
        DefectKind::InteropMismatch => !audit::detect_interop_mismatches(a, peers).is_empty(),
        DefectKind::SimpleLogic => !audit::detect_simple_logic(a).is_empty(),
        DefectKind::ComplexLogic => !audit::detect_complex_logic(a).is_empty(),
    }
}

/// Run the self-check over `seeds_per_config` seeds per (system,
/// style) pair. Returns the tally, or a description of the first
/// disagreement between detectors and ground truth.
pub fn self_check(seeds_per_config: u64) -> Result<SelfCheckStats, String> {
    let mut stats = SelfCheckStats::default();
    let systems = [
        TargetSystem::NcFlow,
        TargetSystem::Arrow,
        TargetSystem::ApKeep,
        TargetSystem::ApVerifier,
        TargetSystem::RockPaperScissors,
    ];
    let styles =
        [PromptStyle::Monolithic, PromptStyle::ModularText, PromptStyle::ModularPseudocode];
    for sys in systems {
        let spec = PaperSpec::for_system(sys);
        for style in styles {
            for seed in 0..seeds_per_config {
                let mut llm = SimulatedLlm::new(seed);
                let artifacts: Vec<CodeArtifact> = spec
                    .components
                    .iter()
                    .enumerate()
                    .map(|(i, c)| llm.implement(c, i, style))
                    .collect();
                for a in &artifacts {
                    stats.artifacts += 1;
                    for kind in ALL_KINDS {
                        let truth = a.has(kind);
                        let found = detected(a, &artifacts, kind);
                        if truth != found {
                            return Err(format!(
                                "{sys:?}/{style:?}/seed {seed}/component {}: {kind:?} \
                                 latent={truth} detected={found}",
                                a.component
                            ));
                        }
                        if truth {
                            stats.defects += 1;
                        }
                    }
                }
                // Fixing every defect must leave a surface the auditor
                // finds nothing on (zero false positives after repair).
                for a in &artifacts {
                    let mut fixed = a.clone();
                    for kind in ALL_KINDS {
                        while fixed.has(kind) {
                            fixed.fix(kind);
                        }
                    }
                    stats.artifacts += 1;
                    for kind in ALL_KINDS {
                        if detected(&fixed, &artifacts, kind) {
                            return Err(format!(
                                "{sys:?}/{style:?}/seed {seed}/component {}: {kind:?} \
                                 falsely detected on a fully fixed artifact",
                                a.component
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_check_passes_over_a_seed_sweep() {
        let stats = self_check(6).expect("self-check must pass");
        assert!(stats.defects > 100, "sweep too small to mean anything: {stats:?}");
    }
}
