//! Tier A detector tests: one fixture artifact per [`DefectKind`],
//! a clean artifact asserting zero false positives, and proof the
//! detectors read only the surface (never the latent defect list).

use analysis::audit::{
    audit, detect_complex_logic, detect_interop_mismatches, detect_simple_logic,
    detect_type_errors,
};
use analysis::Severity;
use netrepro_core::llm::{CodeArtifact, DefectKind};
use netrepro_core::paper::{PaperSpec, TargetSystem};

fn fleet(defective: usize, kind: DefectKind) -> Vec<CodeArtifact> {
    (0..4)
        .map(|i| {
            let defects = if i == defective { vec![kind] } else { vec![] };
            CodeArtifact::with_defects(i, 180, 3, defects)
        })
        .collect()
}

#[test]
fn type_error_fixture_is_detected() {
    let arts = fleet(1, DefectKind::TypeError);
    assert!(detect_type_errors(&arts[0]).is_empty());
    let msgs = detect_type_errors(&arts[1]);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("argument types"), "{msgs:?}");
}

#[test]
fn interop_mismatch_fixture_is_detected_with_peer_evidence() {
    let arts = fleet(2, DefectKind::InteropMismatch);
    let msgs = detect_interop_mismatches(&arts[2], &arts);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("3 peer component(s) agree"), "{msgs:?}");
    assert!(detect_interop_mismatches(&arts[0], &arts).is_empty());
}

#[test]
fn simple_logic_fixture_is_detected_as_off_by_one() {
    let arts = fleet(0, DefectKind::SimpleLogic);
    let msgs = detect_simple_logic(&arts[0]);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("off by 1"), "{msgs:?}");
    assert!(detect_simple_logic(&arts[1]).is_empty());
}

#[test]
fn complex_logic_fixture_is_detected_as_branch_collapse() {
    let arts = fleet(3, DefectKind::ComplexLogic);
    let msgs = detect_complex_logic(&arts[3]);
    assert_eq!(msgs.len(), 1, "{msgs:?}");
    assert!(msgs[0].contains("collapsed"), "{msgs:?}");
    assert!(detect_complex_logic(&arts[0]).is_empty());
}

#[test]
fn clean_artifacts_have_zero_false_positives_across_sizes() {
    // Sweep sizes and interop widths: a defect-free surface must never
    // trip any detector (the ±8% LoC-profile jitter stays inside the
    // 60% collapse threshold by construction).
    for loc in [5, 9, 23, 60, 150, 400, 910, 2000] {
        for shared in 0..4 {
            let arts: Vec<CodeArtifact> =
                (0..3).map(|i| CodeArtifact::with_defects(i, loc, shared, vec![])).collect();
            for a in &arts {
                assert!(detect_type_errors(a).is_empty(), "loc {loc}");
                assert!(detect_interop_mismatches(a, &arts).is_empty(), "loc {loc}");
                assert!(detect_simple_logic(a).is_empty(), "loc {loc}");
                assert!(detect_complex_logic(a).is_empty(), "loc {loc}");
            }
        }
    }
}

#[test]
fn detectors_read_the_surface_not_the_defect_list() {
    // Strip the latent defect list but keep the corrupted surface: the
    // auditor must still find everything (it is a *static* analyzer,
    // not an oracle reader) — and the converse: a clean surface with a
    // fabricated defect list yields nothing.
    let mut corrupted = CodeArtifact::with_defects(0, 200, 2, vec![DefectKind::TypeError]);
    corrupted.defects.clear();
    assert_eq!(detect_type_errors(&corrupted).len(), 1);

    let mut clean = CodeArtifact::with_defects(0, 200, 2, vec![]);
    clean.defects.push(DefectKind::TypeError);
    assert!(detect_type_errors(&clean).is_empty());
}

#[test]
fn audit_report_maps_severities_and_names_components() {
    let spec = PaperSpec::for_system(TargetSystem::NcFlow);
    let arts = vec![
        CodeArtifact::with_defects(0, 200, 2, vec![DefectKind::TypeError]),
        CodeArtifact::with_defects(1, 150, 2, vec![DefectKind::SimpleLogic]),
        CodeArtifact::with_defects(2, 150, 2, vec![]),
    ];
    let report = audit(&spec, &arts);
    assert_eq!(report.count(Severity::Error), 1);
    assert_eq!(report.count(Severity::Warning), 1);
    let err = report.findings.iter().find(|f| f.severity == Severity::Error).expect("error");
    assert_eq!(err.rule, "type-error");
    assert_eq!(err.subject, spec.components[0].name);
    assert!(report.render_json().contains("type-error"));
}
