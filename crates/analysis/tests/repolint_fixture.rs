//! Tier B self-tests: the scanner against a fixture source tree with
//! known violations, and against the real workspace with the real
//! checked-in allowlist (the same invocation CI runs).

use analysis::repolint::{apply_allowlist, lint, scan, Allowlist, LintConfig};
use analysis::Severity;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lintrepo")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn rules_of(report: &analysis::AnalysisReport) -> Vec<(String, String)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.subject.split(':').next().unwrap_or("").to_string()))
        .collect()
}

#[test]
fn fixture_tree_yields_exactly_the_known_violations() {
    let report = scan(&fixture_root(), &LintConfig::default()).expect("scan fixture");
    let mut got = rules_of(&report);
    got.sort();
    // fault.rs also reads the wall clock and iterates a HashMap, but
    // those are the effects analyzer's domain now, not pattern rules.
    let mut want: Vec<(String, String)> = vec![
        ("repolint/unwrap".into(), "crates/core/src/fault.rs".into()),
        ("repolint/unwrap".into(), "crates/util/src/lib.rs".into()),
        ("repolint/panicpolicy".into(), "crates/util/src/lib.rs".into()),
    ];
    want.sort();
    assert_eq!(got, want, "full report:\n{}", report.render_text());
}

#[test]
fn bench_crate_policy_allows_panics() {
    let report = scan(&fixture_root(), &LintConfig::default()).expect("scan fixture");
    assert!(
        !report.findings.iter().any(|f| f.subject.contains("crates/bench/")),
        "bench findings present:\n{}",
        report.render_text()
    );
}

#[test]
fn doc_comments_strings_and_test_mods_never_count() {
    // util/src/lib.rs carries `.unwrap()` in a doc example, a string
    // constant, a comment and a #[cfg(test)] module — exactly one
    // library occurrence must be reported.
    let report = scan(&fixture_root(), &LintConfig::default()).expect("scan fixture");
    let util_unwraps = report
        .findings
        .iter()
        .filter(|f| f.rule == "repolint/unwrap" && f.subject.starts_with("crates/util/"))
        .count();
    assert_eq!(util_unwraps, 1);
}

#[test]
fn allowlist_budget_and_burndown_reporting() {
    let raw = scan(&fixture_root(), &LintConfig::default()).expect("scan fixture");
    // Grant exactly what exists: passes with no findings at all.
    let exact = Allowlist::parse(
        "unwrap crates/core/src/fault.rs 1\n\
         unwrap crates/util/src/lib.rs 1\n\
         panicpolicy crates/util/src/lib.rs 1\n",
    )
    .expect("parse");
    let applied = apply_allowlist(&raw, &exact);
    assert_eq!(applied.count(Severity::Error), 0, "{}", applied.render_text());
    assert_eq!(applied.count(Severity::Info), 0);

    // A missing entry fails; an over-generous or stale one is info.
    let partial = Allowlist::parse(
        "unwrap crates/core/src/fault.rs 3\n\
         unwrap crates/util/src/lib.rs 1\n\
         unwrap crates/gone/src/lib.rs 2\n",
    )
    .expect("parse");
    let applied = apply_allowlist(&raw, &partial);
    assert_eq!(applied.count(Severity::Error), 1, "{}", applied.render_text());
    assert!(applied.findings.iter().any(|f| f.rule == "repolint/panicpolicy"));
    let infos: Vec<_> =
        applied.findings.iter().filter(|f| f.severity == Severity::Info).collect();
    assert_eq!(infos.len(), 2, "over-generous + stale:\n{}", applied.render_text());
}

#[test]
fn real_workspace_passes_with_checked_in_allowlist() {
    // The exact check CI runs: the repo must lint clean against its
    // own repolint.allow, with no stale or over-generous entries (the
    // allowlist must track reality exactly, so it only ever shrinks).
    let root = workspace_root();
    let report =
        lint(&root, &LintConfig::default(), &root.join("repolint.allow")).expect("lint repo");
    assert_eq!(
        report.count(Severity::Error),
        0,
        "new repolint violations:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.count(Severity::Info),
        0,
        "allowlist out of date:\n{}",
        report.render_text()
    );
}

#[test]
fn allowlist_is_fully_burned_down() {
    // The burn-down is complete: the checked-in allowlist grants
    // nothing, and must stay that way — every former grant site now
    // degrades gracefully instead of panicking.
    let root = workspace_root();
    let allow = Allowlist::load(&root.join("repolint.allow")).expect("load allowlist");
    assert!(allow.is_empty(), "allowlist regained entries: {} grants", allow.total());
    assert_eq!(allow.total(), 0);
}
