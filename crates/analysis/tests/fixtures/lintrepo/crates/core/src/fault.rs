//! Fixture: a "deterministic" module that breaks every rule.

use std::collections::HashMap;
use std::time::Instant;

pub fn trace() -> Vec<(u32, f64)> {
    let started = Instant::now(); // wallclock violation
    let mut ledger: HashMap<u32, f64> = HashMap::new();
    ledger.insert(1, started.elapsed().as_secs_f64());
    let mut out = Vec::new();
    for (k, v) in ledger.iter() {
        // hashiter violation
        out.push((*k, *v));
    }
    out
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // unwrap violation
}
