//! Fixture: a "deterministic" module that breaks every rule.
//!
//! The wall-clock read and hash-order iteration below are no longer
//! pattern-scanner rules — the effects analyzer proves them reachable
//! (or not) from declared roots — so only the `.unwrap()` counts here.

use std::collections::HashMap;
use std::time::Instant;

pub fn trace() -> Vec<(u32, f64)> {
    let started = Instant::now(); // Wallclock effect
    let mut ledger: HashMap<u32, f64> = HashMap::new();
    ledger.insert(1, started.elapsed().as_secs_f64());
    let mut out = Vec::new();
    for (k, v) in ledger.iter() {
        // UnorderedIter effect
        out.push((*k, *v));
    }
    out
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // unwrap violation
}
