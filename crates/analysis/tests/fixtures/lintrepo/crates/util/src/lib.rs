//! Fixture: a library crate with one real violation per panic rule,
//! plus occurrences the scanner must *not* count.
//!
//! A doc example mentioning `value.unwrap()` is not a violation:
//!
//! ```ignore
//! let x = maybe.unwrap();
//! ```

/// The string mentions .expect( and panic!( but strings are stripped.
pub const HELP: &str = "never call .unwrap() or .expect( or panic!( here";

pub fn parse(s: &str) -> u32 {
    // A comment mentioning .unwrap() is not a violation either.
    let n: u32 = s.parse().unwrap(); // unwrap violation (the only one)
    if n > 9000 {
        panic!("too big"); // panicpolicy violation (the only one)
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(parse("7"));
        assert_eq!(v.unwrap(), 7);
        let w: Result<u32, ()> = Ok(1);
        let _ = w.expect("fine in tests");
    }
}
