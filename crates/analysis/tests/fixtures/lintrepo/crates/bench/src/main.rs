//! Fixture: a measurement binary whose declared per-crate policy is
//! panic-on-error — unwraps and panics here are conformant.

fn main() {
    let arg = std::env::args().nth(1).unwrap();
    if arg.is_empty() {
        panic!("usage: bench <n>");
    }
}
