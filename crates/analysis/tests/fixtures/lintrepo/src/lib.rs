//! Fixture: the clean root package.

pub fn ok(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
