//! Fixture root crate: the functions the effect engine's test roots
//! point at. Scanned, never compiled.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Seeded driver: within a `SeededRng` budget except for the
/// wall-clock leak it picks up through `beta::tick`.
pub fn run(seed: u64) -> u64 {
    let salt = seed_stream(seed);
    let t = beta::tick();
    beta::memo_push(t);
    salt ^ t
}

/// Derives a value from a seeded stream (intrinsic `SeededRng`).
pub fn seed_stream(seed: u64) -> u64 {
    let _rng = StdRng::seed_from_u64(seed);
    seed.wrapping_mul(0x9e37_79b9)
}

/// Emits pairs in hash order — the `UnorderedIter` leak.
pub fn leak_order() -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push((*k, *v));
    }
    out
}

/// A "deterministic output" path that forgot to sort.
pub fn emit() -> Vec<(u32, u32)> {
    leak_order()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_never_counts() {
        panic!("effects in test regions are invisible");
    }
}
