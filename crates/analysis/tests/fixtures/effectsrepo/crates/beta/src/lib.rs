//! Fixture leaf crate: clocks, a memo behind an audited boundary, and
//! a stale allowance. Scanned by the effect engine's tests — never
//! compiled.

use std::sync::Mutex;
use std::time::Instant;

/// A process-wide memo the audited boundary guards.
pub static CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Milliseconds since `origin` — an undeclared wall-clock read.
pub fn now_ms(origin: Instant) -> u64 {
    origin.elapsed().as_millis() as u64
}

/// Ticks once; leaks `Wallclock` transitively to every caller.
pub fn tick() -> u64 {
    now_ms(Instant::now())
}

// effect-allow(GlobalState): fixture memo — single lock, total order.
/// Records a value in the shared cache (audited boundary).
pub fn memo_push(v: u64) {
    if let Ok(mut cache) = CACHE.lock() {
        cache.push(v);
    }
}

// effect-allow(Wallclock): stale — nothing below reads the clock.
/// A pure helper whose allowance no longer matches reality.
pub fn audited_pure(x: u64) -> u64 {
    x + 1
}
