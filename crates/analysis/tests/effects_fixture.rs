//! Effect-engine self-tests: the analyzer against a fixture
//! mini-workspace with known leaks (golden JSON pinned), and against
//! the real workspace with the real root budgets — the same invocation
//! CI runs.

use analysis::effects::{analyze, Effect, EffectConfig, EffectSet, RootSpec};
use analysis::Severity;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/effectsrepo")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn fixture_config() -> EffectConfig {
    let root = |path: &str, budget: &[Effect], note: &str| RootSpec {
        path: path.to_string(),
        budget: EffectSet::of(budget),
        note: note.to_string(),
    };
    EffectConfig {
        roots: vec![
            root("alpha::run", &[Effect::SeededRng], "fixture driver"),
            root("alpha::emit", &[], "fixture emitter"),
        ],
        inventory: EffectSet::of(&[
            Effect::SeededRng,
            Effect::Wallclock,
            Effect::UnorderedIter,
            Effect::GlobalState,
        ]),
        inventory_skip_crates: Vec::new(),
    }
}

#[test]
fn fixture_report_matches_golden_json() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("analyze fixture");
    let got = report.render_json();
    let golden_path = fixture_root().join("golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect(
        "golden.json missing — run with UPDATE_GOLDEN=1 to (re)generate",
    );
    assert_eq!(got, want, "effects JSON drifted; rerun with UPDATE_GOLDEN=1 and review the diff");
}

#[test]
fn violation_chains_name_root_and_offender() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("analyze fixture");

    // alpha::run leaks Wallclock through beta::tick.
    let run = report.roots.iter().find(|r| r.root == "alpha::run").expect("run root");
    assert_eq!(run.matched, vec!["alpha::run".to_string()]);
    let wall: Vec<_> =
        run.violations.iter().filter(|v| v.effect == Effect::Wallclock).collect();
    assert_eq!(wall.len(), 1, "{:?}", run.violations);
    assert_eq!(wall[0].chain, vec!["alpha::run".to_string(), "beta::tick".to_string()]);
    assert!(wall[0].source.contains("Instant::now"), "{}", wall[0].source);

    // alpha::emit (Pure budget) leaks hash-order iteration.
    let emit = report.roots.iter().find(|r| r.root == "alpha::emit").expect("emit root");
    let iter: Vec<_> =
        emit.violations.iter().filter(|v| v.effect == Effect::UnorderedIter).collect();
    assert_eq!(iter.len(), 1, "{:?}", emit.violations);
    assert_eq!(
        iter[0].chain,
        vec!["alpha::emit".to_string(), "alpha::leak_order".to_string()]
    );
}

#[test]
fn allowance_masks_callers_but_not_inventory() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("analyze fixture");

    // beta::memo_push's GlobalState is declared, so alpha::run stays
    // clean of it — no GlobalState violation despite the Mutex.
    let run = report.roots.iter().find(|r| r.root == "alpha::run").expect("run root");
    assert!(
        run.violations.iter().all(|v| v.effect != Effect::GlobalState),
        "{:?}",
        run.violations
    );
    let memo = report
        .allowances
        .iter()
        .find(|a| a.function == "beta::memo_push")
        .expect("memo_push allowance");
    assert!(memo.effects.contains(Effect::GlobalState));
    assert!(memo.stale.is_empty(), "lock() is really there: {:?}", memo.stale);

    // The intrinsic still shows up in the reviewable inventory.
    let gs = report.inventory.get("GlobalState").expect("GlobalState inventory");
    assert!(gs.iter().any(|line| line.contains("beta::memo_push")), "{gs:?}");
}

#[test]
fn stale_allowance_is_a_warning_finding() {
    let report = analyze(&fixture_root(), &fixture_config()).expect("analyze fixture");
    let audited = report
        .allowances
        .iter()
        .find(|a| a.function == "beta::audited_pure")
        .expect("audited_pure allowance");
    assert!(audited.stale.contains(Effect::Wallclock), "{:?}", audited.stale);
    let findings = report.findings();
    assert!(
        findings
            .findings
            .iter()
            .any(|f| f.rule == "effectallow"
                && f.severity == Severity::Warning
                && f.subject.contains("audited_pure")),
        "{}",
        findings.render_text()
    );
}

#[test]
fn unmatched_root_is_an_error_finding() {
    let mut cfg = fixture_config();
    cfg.roots.push(RootSpec {
        path: "alpha::renamed_away".into(),
        budget: EffectSet::of(&[]),
        note: "a rename must not silently drop enforcement".into(),
    });
    let report = analyze(&fixture_root(), &cfg).expect("analyze fixture");
    let findings = report.findings();
    assert!(
        findings
            .findings
            .iter()
            .any(|f| f.rule == "effectroot"
                && f.severity == Severity::Error
                && f.subject.contains("renamed_away")),
        "{}",
        findings.render_text()
    );
}

#[test]
fn real_workspace_execute_cell_is_seeded_deterministic() {
    // The acceptance criterion: on the real workspace, every declared
    // root holds its budget — in particular execute_cell's transitive
    // closure proves out at Pure|SeededRng — with zero findings (no
    // undeclared effects, no stale allowances, no unmatched roots).
    let report = analyze(&workspace_root(), &EffectConfig::workspace_default())
        .expect("analyze workspace");
    let findings = report.findings();
    assert_eq!(
        findings.count_at_least(Severity::Warning),
        0,
        "{}\n{}",
        report.render_text(),
        findings.render_text()
    );
    let cell = report
        .roots
        .iter()
        .find(|r| r.root.ends_with("execute_cell"))
        .expect("execute_cell root");
    assert!(!cell.matched.is_empty(), "execute_cell not found in the workspace");
    assert!(cell.violations.is_empty(), "{:?}", cell.violations);
    assert!(
        cell.effects.minus(EffectSet::of(&[Effect::SeededRng])).is_empty(),
        "execute_cell must be Pure|SeededRng, got {}",
        cell.effects.label()
    );
}
