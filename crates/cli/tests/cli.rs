//! End-to-end CLI tests: run the real binary and check its output.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_netrepro"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

fn run_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_netrepro"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.code(),
    )
}

/// A per-test scratch path under the system temp dir (no tempfile dep).
fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("netrepro-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
    assert!(stdout.contains("survey"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn survey_reports_rates() {
    let (stdout, _, ok) = run(&["survey", "--seed", "7"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("open-source rates"));
    assert!(stdout.contains("SIGCOMM"));
}

#[test]
fn te_solves_and_reports_flow() {
    let (stdout, _, ok) = run(&["te", "--nodes", "12", "--commodities", "8"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("max total flow"));
    assert!(stdout.contains("Gbps"));
}

#[test]
fn te_rejects_bad_solver() {
    let (_, stderr, ok) = run(&["te", "--solver", "cplex"]);
    assert!(!ok);
    assert!(stderr.contains("--solver"));
}

#[test]
fn dpv_reach_requires_endpoints() {
    let (_, stderr, ok) = run(&["dpv", "--check", "reach"]);
    assert!(!ok);
    assert!(stderr.contains("--src"));
}

#[test]
fn session_runs_deterministically() {
    let (a, _, ok1) = run(&["session", "--system", "apkeep", "--seed", "9"]);
    let (b, _, ok2) = run(&["session", "--system", "apkeep", "--seed", "9"]);
    assert!(ok1 && ok2);
    assert_eq!(a, b, "same seed must print the same session");
    assert!(a.contains("participant C"));
}

#[test]
fn session_rejects_unknown_fault_profile() {
    let (_, stderr, ok) = run(&["session", "--faults", "bogus"]);
    assert!(!ok, "unknown profile must fail");
    assert!(stderr.contains("unknown fault profile 'bogus'"), "{stderr}");
    assert!(stderr.contains("none|light|heavy|chaos"), "{stderr}");
}

#[test]
fn session_fault_trace_is_deterministic() {
    // Seed 11 under heavy faults leaks two escapes, so the run is
    // rejected (non-zero exit) — but the trace stays deterministic.
    let args = ["session", "--system", "ncflow", "--seed", "11", "--faults", "heavy"];
    let (a, err_a, ok1) = run(&args);
    let (b, err_b, ok2) = run(&args);
    assert!(!ok1 && !ok2, "escaped faults must reject: {err_a}");
    assert!(err_a.contains("session rejected"), "{err_a}");
    assert_eq!((a, err_a), (b, err_b), "same plan must print the same fault trace");
}

#[test]
fn none_profile_matches_unfaulted_output() {
    let (plain, _, ok1) = run(&["session", "--system", "arrow", "--seed", "5"]);
    let (none, _, ok2) =
        run(&["session", "--system", "arrow", "--seed", "5", "--faults", "none"]);
    assert!(ok1 && ok2);
    assert_eq!(plain, none, "--faults none must be byte-identical to no flag");
}

#[test]
fn validate_with_chaos_faults_still_diagnoses() {
    let (stdout, _, ok) = run(&["validate", "--participant", "a", "--faults", "chaos"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("diagnosis:"), "{stdout}");
    assert!(stdout.contains("resilience diagnosis:"), "{stdout}");
}

#[test]
fn validate_c_is_faithful() {
    let (stdout, _, ok) = run(&["validate", "--participant", "c"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Faithful"));
}

// Seeds below are probed, not arbitrary: mono/raw at seed 2023 carries
// 11 error-severity defects; the debugged final artifacts at seed 2023
// are fully clean and at seed 1 carry warnings only.

#[test]
fn analyze_raw_monolithic_rejects_with_findings() {
    let (stdout, stderr, ok) =
        run(&["analyze", "--system", "ncflow", "--seed", "2023", "--style", "mono"]);
    assert!(!ok, "raw monolithic output must fail the default error gate");
    assert!(stdout.contains("[type-error]"), "{stdout}");
    assert!(stdout.contains("[interop-mismatch]"), "{stdout}");
    assert!(stdout.contains("StaticallyRejected"), "{stdout}");
    assert!(stderr.contains("at or above severity 'error'"), "{stderr}");
}

#[test]
fn analyze_final_clean_exits_zero() {
    let (stdout, _, ok) = run(&["analyze", "--system", "ncflow", "--seed", "2023", "--stage", "final"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 error(s), 0 warning(s)"), "{stdout}");
    assert!(stdout.contains("Faithful"), "{stdout}");
}

#[test]
fn analyze_fail_on_warning_tightens_the_gate() {
    // seed 1 final: no errors, but residual logic warnings remain.
    let args = ["analyze", "--system", "ncflow", "--seed", "1", "--stage", "final"];
    let (stdout, _, ok) = run(&args);
    assert!(ok, "default gate passes warnings: {stdout}");
    let (_, stderr, ok) = run(&[&args[..], &["--fail-on", "warning"]].concat());
    assert!(!ok, "warning gate must reject");
    assert!(stderr.contains("severity 'warning'"), "{stderr}");
}

#[test]
fn analyze_json_emits_machine_readable_findings() {
    let (stdout, _, ok) = run(&[
        "analyze", "--system", "ncflow", "--seed", "2023", "--style", "mono", "--json",
        "--fail-on", "never",
    ]);
    assert!(ok, "--fail-on never must exit zero: {stdout}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let findings = v["findings"].as_array().expect("findings array");
    assert!(!findings.is_empty());
    assert!(findings.iter().any(|f| f["rule"].as_str() == Some("type-error")), "{stdout}");
}

#[test]
fn analyze_self_check_passes() {
    let (stdout, _, ok) = run(&["analyze", "--self-check"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("zero false positives"), "{stdout}");
}

#[test]
fn analyze_rejects_bad_fail_on() {
    let (_, stderr, ok) = run(&["analyze", "--fail-on", "pedantic"]);
    assert!(!ok);
    assert!(stderr.contains("--fail-on"), "{stderr}");
}

#[test]
fn session_prints_static_audit_gate() {
    let (stdout, _, ok) = run(&["session", "--system", "ncflow", "--seed", "2023"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("static audit:"), "{stdout}");
    assert!(stdout.contains("static diagnosis:"), "{stdout}");
}

// Seed 3 is probed: under chaos the ncflow session leaks escaped
// faults (rejected), under heavy everything is absorbed (accepted).

#[test]
fn session_and_analyze_agree_on_rejection_exit() {
    // A failed verdict must exit non-zero from *both* commands.
    let (_, stderr, ok) =
        run(&["session", "--system", "ncflow", "--seed", "3", "--faults", "chaos"]);
    assert!(!ok, "escaped faults must reject");
    assert!(stderr.contains("session rejected"), "{stderr}");
    let (_, stderr, ok) =
        run(&["analyze", "--system", "ncflow", "--seed", "2023", "--style", "mono"]);
    assert!(!ok, "error-severity findings must reject");
    assert!(stderr.contains("severity 'error'"), "{stderr}");
}

#[test]
fn session_absorbed_faults_still_exit_zero() {
    let (stdout, _, ok) =
        run(&["session", "--system", "ncflow", "--seed", "3", "--faults", "heavy"]);
    assert!(ok, "absorbed faults are a pass: {stdout}");
    assert!(stdout.contains("Faithful"), "{stdout}");
}

#[test]
fn sweep_small_matrix_is_deterministic() {
    let matrix: &[&str] = &[
        "sweep", "--systems", "rps", "--styles", "text", "--seeds", "2", "--profiles",
        "none,chaos", "--json", "--journal",
    ];
    let ja = scratch("det-a.jsonl");
    let jb = scratch("det-b.jsonl");
    let (a, _, ok1) = run(&[matrix, &[ja.as_str()]].concat());
    let (b, _, ok2) = run(&[matrix, &[jb.as_str()]].concat());
    assert!(ok1 && ok2, "{a}");
    assert_eq!(a, b, "same matrix must produce the same report");
    let v: serde_json::Value = serde_json::from_str(&a).expect("valid JSON");
    let cov = &v["coverage"];
    assert_eq!(cov["total"].as_u64(), Some(4), "{a}");
    assert_eq!(
        cov["total"].as_u64(),
        Some(
            cov["completed"].as_u64().unwrap()
                + cov["quarantined"].as_u64().unwrap()
                + cov["skipped_by_breaker"].as_u64().unwrap()
        )
    );
}

#[test]
fn sweep_halt_and_resume_matches_uninterrupted_run() {
    let matrix: &[&str] =
        &["--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    let (bj, bo) = (scratch("halt-base.jsonl"), scratch("halt-base.json"));
    let (kj, ko) = (scratch("halt-kill.jsonl"), scratch("halt-kill.json"));
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--journal", &bj, "--out", &bo]].concat());
    assert!(ok, "baseline sweep runs");
    // Crash mid-write on journal line 4: the binary tears the line in
    // half (no newline) and dies with the dedicated exit code.
    let (_, _, code) = run_code(
        &[&["sweep"], matrix, &["--journal", &kj, "--halt-after", "4"]].concat(),
    );
    assert_eq!(code, Some(3), "halt-after must exit 3");
    let torn = std::fs::read_to_string(&kj).expect("torn journal exists");
    assert!(!torn.ends_with('\n'), "the trailing record must be torn");
    let (_, stderr, ok) =
        run(&[&["sweep"], matrix, &["--resume", &kj, "--out", &ko]].concat());
    assert!(ok, "resume must succeed: {stderr}");
    assert!(stderr.contains("dropped a torn trailing record"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&bj).unwrap(),
        std::fs::read_to_string(&kj).unwrap(),
        "resumed journal must be byte-identical to the uninterrupted one"
    );
    assert_eq!(
        std::fs::read_to_string(&bo).unwrap(),
        std::fs::read_to_string(&ko).unwrap(),
        "resumed report must be byte-identical to the uninterrupted one"
    );
}

#[test]
fn sweep_chaos_reports_nonempty_quarantine() {
    let j = scratch("chaos.jsonl");
    let (stdout, _, ok) = run(&[
        "sweep", "--systems", "ncflow,arrow,apkeep,ap", "--styles", "text,pseudo", "--seeds",
        "3", "--profiles", "none,chaos", "--json", "--journal", &j,
    ]);
    assert!(ok, "chaos sweep completes");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    let quarantine = v["quarantine"].as_array().expect("quarantine array");
    assert!(!quarantine.is_empty(), "chaos must quarantine at least one cell");
    let cov = &v["coverage"];
    assert_eq!(cov["total"].as_u64(), Some(48));
    assert_eq!(
        cov["total"].as_u64(),
        Some(
            cov["completed"].as_u64().unwrap()
                + cov["quarantined"].as_u64().unwrap()
                + cov["skipped_by_breaker"].as_u64().unwrap()
        )
    );
}

#[test]
fn sweep_parallel_workers_match_serial_bytes() {
    let matrix: &[&str] = &[
        "--systems", "ncflow,rps", "--styles", "text,pseudo", "--seeds", "3", "--profiles",
        "none,chaos",
    ];
    let (sj, so) = (scratch("par-serial.jsonl"), scratch("par-serial.json"));
    let (_, _, ok) = run(
        &[&["sweep"], matrix, &["--workers", "1", "--journal", &sj, "--out", &so]].concat(),
    );
    assert!(ok, "serial sweep runs");
    for workers in ["2", "4"] {
        let (pj, po) = (
            scratch(&format!("par-w{workers}.jsonl")),
            scratch(&format!("par-w{workers}.json")),
        );
        let (_, _, ok) = run(
            &[&["sweep"], matrix, &["--workers", workers, "--journal", &pj, "--out", &po]]
                .concat(),
        );
        assert!(ok, "parallel sweep runs");
        assert_eq!(
            std::fs::read_to_string(&sj).unwrap(),
            std::fs::read_to_string(&pj).unwrap(),
            "--workers {workers} journal must be byte-identical to serial"
        );
        assert_eq!(
            std::fs::read_to_string(&so).unwrap(),
            std::fs::read_to_string(&po).unwrap(),
            "--workers {workers} report must be byte-identical to serial"
        );
    }
}

#[test]
fn sweep_parallel_halt_and_resume_matches_serial_run() {
    let matrix: &[&str] =
        &["--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    let (bj, bo) = (scratch("phalt-base.jsonl"), scratch("phalt-base.json"));
    let (kj, ko) = (scratch("phalt-kill.jsonl"), scratch("phalt-kill.json"));
    let (_, _, ok) = run(
        &[&["sweep"], matrix, &["--workers", "1", "--journal", &bj, "--out", &bo]].concat(),
    );
    assert!(ok, "serial baseline runs");
    // Tear the journal mid-line under 4 workers, then resume under 4
    // workers: the committed prefix plus the re-run remainder must
    // reproduce the serial journal and report exactly.
    let (_, _, code) = run_code(
        &[&["sweep"], matrix, &["--workers", "4", "--journal", &kj, "--halt-after", "4"]]
            .concat(),
    );
    assert_eq!(code, Some(3), "halt-after must exit 3");
    let (_, stderr, ok) = run(
        &[&["sweep"], matrix, &["--workers", "4", "--resume", &kj, "--out", &ko]].concat(),
    );
    assert!(ok, "parallel resume must succeed: {stderr}");
    assert!(stderr.contains("dropped a torn trailing record"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&bj).unwrap(),
        std::fs::read_to_string(&kj).unwrap(),
        "parallel-resumed journal must match the serial one"
    );
    assert_eq!(
        std::fs::read_to_string(&bo).unwrap(),
        std::fs::read_to_string(&ko).unwrap(),
        "parallel-resumed report must match the serial one"
    );
}

#[test]
fn sweep_resume_on_torn_header_only_journal_starts_fresh() {
    let matrix: &[&str] =
        &["--systems", "rps", "--styles", "text", "--seeds", "2", "--profiles", "none"];
    let (bj, bo) = (scratch("torn-base.jsonl"), scratch("torn-base.json"));
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--journal", &bj, "--out", &bo]].concat());
    assert!(ok, "baseline sweep runs");
    // A journal whose only content is a partial header line — the
    // process died inside the very first append. Resume must treat it
    // as empty, rewrite the header, and run the whole matrix.
    let full = std::fs::read_to_string(&bj).unwrap();
    let header = full.split_inclusive('\n').next().unwrap();
    let (tj, to) = (scratch("torn-head.jsonl"), scratch("torn-head.json"));
    std::fs::write(&tj, &header[..header.len() / 2]).unwrap();
    let (_, stderr, ok) =
        run(&[&["sweep"], matrix, &["--resume", &tj, "--out", &to]].concat());
    assert!(ok, "resume on a torn-header journal must exit cleanly: {stderr}");
    assert!(stderr.contains("0 of 2 cells journaled"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&bj).unwrap(),
        std::fs::read_to_string(&tj).unwrap(),
        "fresh-start journal must match the uninterrupted one"
    );
    assert_eq!(
        std::fs::read_to_string(&bo).unwrap(),
        std::fs::read_to_string(&to).unwrap(),
        "fresh-start report must match the uninterrupted one"
    );
}

#[test]
fn sweep_sharded_matches_serial_bytes() {
    let matrix: &[&str] =
        &["--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    let (sj, so) = (scratch("shard-serial.jsonl"), scratch("shard-serial.json"));
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--workers", "1", "--journal", &sj, "--out", &so]].concat());
    assert!(ok, "serial sweep runs");
    let (pj, po) = (scratch("shard-3.jsonl"), scratch("shard-3.json"));
    let (_, stderr, ok) = run(
        &[&["sweep"], matrix, &["--workers", "1", "--shards", "3", "--journal", &pj, "--out", &po]]
            .concat(),
    );
    assert!(ok, "sharded sweep runs: {stderr}");
    assert_eq!(
        std::fs::read_to_string(&sj).unwrap(),
        std::fs::read_to_string(&pj).unwrap(),
        "merged shard journal must be byte-identical to serial"
    );
    assert_eq!(
        std::fs::read_to_string(&so).unwrap(),
        std::fs::read_to_string(&po).unwrap(),
        "sharded report must be byte-identical to serial"
    );
}

#[test]
fn sweep_sharded_restarts_recover_from_torn_shard_journals() {
    // --halt-after 2 makes every shard child tear its second journal
    // line and exit 3 — each respawn makes exactly one cell of
    // progress, so finishing at all proves the coordinator's
    // truncate-and-respawn loop, and the byte-diff proves the merge.
    let matrix: &[&str] =
        &["--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    let (sj, so) = (scratch("crashy-serial.jsonl"), scratch("crashy-serial.json"));
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--workers", "1", "--journal", &sj, "--out", &so]].concat());
    assert!(ok, "serial sweep runs");
    let (cj, co) = (scratch("crashy.jsonl"), scratch("crashy.json"));
    let (_, stderr, ok) = run(
        &[
            &["sweep"],
            matrix,
            &["--workers", "1", "--shards", "2", "--halt-after", "2", "--journal", &cj, "--out", &co],
        ]
        .concat(),
    );
    assert!(ok, "crash-looped sharded sweep must still finish: {stderr}");
    assert!(stderr.contains("restart"), "children must have been respawned: {stderr}");
    assert_eq!(
        std::fs::read_to_string(&sj).unwrap(),
        std::fs::read_to_string(&cj).unwrap(),
        "journal rebuilt through shard crashes must match serial"
    );
    assert_eq!(
        std::fs::read_to_string(&so).unwrap(),
        std::fs::read_to_string(&co).unwrap(),
        "report rebuilt through shard crashes must match serial"
    );
}

#[test]
fn sweep_sharded_restart_cap_reports_partial_coverage_then_resumes() {
    // --halt-after 1 tears the shard *header* on every spawn: zero
    // progress per generation, so the cap must trip deterministically
    // and the coordinator must exit nonzero with a coverage report
    // instead of looping forever.
    let matrix: &[&str] =
        &["--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    let (kj, ko) = (scratch("cap.jsonl"), scratch("cap.json"));
    let (_, stderr, code) = run_code(
        &[
            &["sweep"],
            matrix,
            &[
                "--workers", "1", "--shards", "2", "--halt-after", "1", "--max-restarts", "2",
                "--journal", &kj,
            ],
        ]
        .concat(),
    );
    assert_eq!(code, Some(2), "exhausted restart cap must exit nonzero: {stderr}");
    assert!(stderr.contains("restart cap --max-restarts 2 exhausted"), "{stderr}");
    assert!(stderr.contains("partial coverage: 0 of 8 cells journaled"), "{stderr}");
    assert!(stderr.contains("missing runs:"), "{stderr}");
    assert!(stderr.contains("--resume"), "the error must name the remedy: {stderr}");
    // Resume the wreck without the fault flag: the coordinator replays
    // its ledger, re-leases the uncovered runs, and completes.
    let (sj, so) = (scratch("cap-serial.jsonl"), scratch("cap-serial.json"));
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--workers", "1", "--journal", &sj, "--out", &so]].concat());
    assert!(ok, "serial baseline runs");
    let (_, stderr, ok) = run(
        &[&["sweep"], matrix, &["--workers", "1", "--shards", "2", "--resume", &kj, "--out", &ko]]
            .concat(),
    );
    assert!(ok, "sharded resume must succeed: {stderr}");
    assert!(stderr.contains("resuming"), "{stderr}");
    assert_eq!(
        std::fs::read_to_string(&sj).unwrap(),
        std::fs::read_to_string(&kj).unwrap(),
        "resumed sharded journal must match serial"
    );
    assert_eq!(
        std::fs::read_to_string(&so).unwrap(),
        std::fs::read_to_string(&ko).unwrap(),
        "resumed sharded report must match serial"
    );
}

#[test]
fn sweep_sharded_resume_rejects_changed_shard_count() {
    let matrix: &[&str] =
        &["--systems", "rps", "--styles", "text", "--seeds", "2", "--profiles", "none"];
    let j = scratch("count.jsonl");
    let (_, stderr, ok) =
        run(&[&["sweep"], matrix, &["--shards", "2", "--journal", &j]].concat());
    assert!(ok, "sharded sweep runs: {stderr}");
    let (_, stderr, ok) =
        run(&[&["sweep"], matrix, &["--shards", "3", "--resume", &j]].concat());
    assert!(!ok, "a different --shards must be rejected");
    assert!(stderr.contains("journal mismatch: shard-count"), "{stderr}");
    assert!(stderr.contains("original shard count"), "{stderr}");
}

#[test]
fn sweep_resume_mismatches_are_typed_and_actionable() {
    let matrix: &[&str] =
        &["--systems", "rps", "--styles", "text", "--seeds", "2", "--profiles", "none"];
    let j = scratch("typed.jsonl");
    let (_, _, ok) = run(&[&["sweep"], matrix, &["--journal", &j]].concat());
    assert!(ok, "baseline sweep runs");
    let journal = std::fs::read_to_string(&j).unwrap();

    // Version skew: doctor the header's layout version.
    let vj = scratch("typed-version.jsonl");
    std::fs::write(&vj, journal.replacen("\"version\":2", "\"version\":99", 1)).unwrap();
    let (_, stderr, ok) = run(&[&["sweep"], matrix, &["--resume", &vj]].concat());
    assert!(!ok, "version skew must be rejected");
    assert!(stderr.contains("journal mismatch: version"), "{stderr}");
    assert!(stderr.contains("incompatible build"), "{stderr}");

    // Cache-scheme skew: doctor the memo scheme identifier.
    let cj = scratch("typed-cache.jsonl");
    std::fs::write(&cj, journal.replacen("cellmemo-v1/fnv1a64", "cellmemo-v0/legacy", 1)).unwrap();
    let (_, stderr, ok) = run(&[&["sweep"], matrix, &["--resume", &cj]].concat());
    assert!(!ok, "cache-scheme skew must be rejected");
    assert!(stderr.contains("journal mismatch: cache-scheme"), "{stderr}");
    assert!(stderr.contains("delete the journal"), "{stderr}");

    // Fingerprint skew: resume the same journal under different axes.
    let (_, stderr, ok) = run(&[
        "sweep", "--systems", "rps", "--styles", "text", "--seeds", "3", "--profiles", "none",
        "--resume", &j,
    ]);
    assert!(!ok, "matrix skew must be rejected");
    assert!(stderr.contains("journal mismatch: fingerprint"), "{stderr}");
    assert!(stderr.contains("original flags"), "{stderr}");
}

#[test]
fn sweep_rejects_zero_shards() {
    let (_, stderr, ok) = run(&["sweep", "--shards", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--shards"), "{stderr}");
}

#[test]
fn sweep_rejects_zero_workers() {
    let (_, stderr, ok) = run(&["sweep", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");
}

#[test]
fn sweep_rejects_unknown_system() {
    let (_, stderr, ok) = run(&["sweep", "--systems", "ncflow,quantum"]);
    assert!(!ok);
    assert!(stderr.contains("--systems"), "{stderr}");
    assert!(stderr.contains("quantum"), "{stderr}");
}

// ---------------------------------------------------------------- serve

/// Kill-on-drop guard so a failing assertion never leaks a daemon.
struct DaemonGuard(std::process::Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Reserve a local port (bind :0, read it back, release it).
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe bind")
        .local_addr()
        .expect("probe addr")
        .port()
}

/// Spawn `netrepro serve` on `addr` with state in `dir` and wait until
/// it accepts connections.
fn spawn_daemon(addr: &str, dir: &str) -> DaemonGuard {
    let child = Command::new(env!("CARGO_BIN_EXE_netrepro"))
        .args(["serve", "--addr", addr, "--dir", dir, "--workers", "2"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let guard = DaemonGuard(child);
    for _ in 0..200 {
        if std::net::TcpStream::connect(addr).is_ok() {
            return guard;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("daemon on {addr} never came up");
}

#[test]
fn serve_submit_wait_matches_one_shot_sweep_bytes() {
    let matrix: &[&str] =
        &["--systems", "rps", "--styles", "text", "--seeds", "2", "--profiles", "none,chaos"];
    // One-shot baseline.
    let journal = scratch("serve-baseline.jsonl");
    let baseline_out = scratch("serve-baseline.json");
    let (_, _, ok) = run(&[
        &["sweep"],
        matrix,
        &["--json", "--journal", journal.as_str(), "--out", baseline_out.as_str()],
    ]
    .concat());
    assert!(ok, "baseline sweep failed");

    // The same matrix through the daemon.
    let addr = format!("127.0.0.1:{}", free_port());
    let dir = scratch("serve-state-a");
    let _daemon = spawn_daemon(&addr, &dir);
    let report_out = scratch("serve-report.json");
    let (_, stderr, ok) = run(&[
        &["submit", "--addr", addr.as_str(), "--tenant", "alice", "--nonce", "1"],
        matrix,
        &["--wait", "--out", report_out.as_str()],
    ]
    .concat());
    assert!(ok, "submit --wait failed: {stderr}");

    let baseline_journal = std::fs::read_to_string(&journal).expect("baseline journal");
    let served_journal =
        std::fs::read_to_string(format!("{dir}/job-1.jsonl")).expect("served journal");
    assert_eq!(served_journal, baseline_journal, "daemon journal differs from one-shot sweep");
    let baseline_report = std::fs::read_to_string(&baseline_out).expect("baseline report");
    let served_report = std::fs::read_to_string(&report_out).expect("served report");
    assert_eq!(served_report, baseline_report, "daemon report differs from one-shot sweep");
}

#[test]
fn serve_sigkill_restart_resumes_byte_identically() {
    let matrix: &[&str] = &[
        "--systems", "ncflow,rps", "--styles", "text", "--seeds", "2", "--profiles", "none,heavy",
    ];
    let journal = scratch("serve-kill-baseline.jsonl");
    let (_, _, ok) =
        run(&[&["sweep"], matrix, &["--json", "--journal", journal.as_str()]].concat());
    assert!(ok, "baseline sweep failed");

    let dir = scratch("serve-state-kill");
    let addr = format!("127.0.0.1:{}", free_port());
    let daemon = spawn_daemon(&addr, &dir);
    // Fire-and-forget submit, then SIGKILL the daemon mid-job.
    let (_, stderr, ok) = run(&[
        &["submit", "--addr", addr.as_str(), "--tenant", "alice", "--nonce", "7"],
        matrix,
    ]
    .concat());
    assert!(ok, "submit failed: {stderr}");
    std::thread::sleep(std::time::Duration::from_millis(200));
    drop(daemon); // SIGKILL — no drain, no warning

    // Restart over the same state directory; the ledger re-queues the
    // job. A retried submit with the same (tenant, nonce) must dedup
    // onto the original id, and --wait rides it to completion.
    let addr2 = format!("127.0.0.1:{}", free_port());
    let _daemon2 = spawn_daemon(&addr2, &dir);
    let (stdout, stderr, ok) = run(&[
        &["submit", "--addr", addr2.as_str(), "--tenant", "alice", "--nonce", "7"],
        matrix,
        &["--wait"],
    ]
    .concat());
    assert!(ok, "post-restart submit --wait failed: {stderr}");
    assert!(stderr.contains("job 1 accepted"), "nonce dedup must return the original id: {stderr}");
    assert!(!stdout.is_empty(), "report payload expected on stdout");

    let baseline_journal = std::fs::read_to_string(&journal).expect("baseline journal");
    let served_journal =
        std::fs::read_to_string(format!("{dir}/job-1.jsonl")).expect("served journal");
    assert_eq!(
        served_journal, baseline_journal,
        "journal after SIGKILL + restart differs from one-shot sweep"
    );
}

#[test]
fn submit_health_and_bad_spec_are_typed() {
    let addr = format!("127.0.0.1:{}", free_port());
    let dir = scratch("serve-state-health");
    let _daemon = spawn_daemon(&addr, &dir);
    let (stdout, _, ok) = run(&["submit", "--addr", &addr, "--health"]);
    assert!(ok);
    assert!(stdout.starts_with("HEALTH "), "{stdout}");
    let (_, stderr, ok) = run(&[
        "submit", "--addr", &addr, "--tenant", "a", "--nonce", "1", "--spec", "colour=blue",
    ]);
    assert!(!ok);
    assert!(stderr.contains("refused"), "{stderr}");
}
