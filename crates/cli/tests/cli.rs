//! End-to-end CLI tests: run the real binary and check its output.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_netrepro"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
    assert!(stdout.contains("survey"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn survey_reports_rates() {
    let (stdout, _, ok) = run(&["survey", "--seed", "7"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("open-source rates"));
    assert!(stdout.contains("SIGCOMM"));
}

#[test]
fn te_solves_and_reports_flow() {
    let (stdout, _, ok) = run(&["te", "--nodes", "12", "--commodities", "8"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("max total flow"));
    assert!(stdout.contains("Gbps"));
}

#[test]
fn te_rejects_bad_solver() {
    let (_, stderr, ok) = run(&["te", "--solver", "cplex"]);
    assert!(!ok);
    assert!(stderr.contains("--solver"));
}

#[test]
fn dpv_reach_requires_endpoints() {
    let (_, stderr, ok) = run(&["dpv", "--check", "reach"]);
    assert!(!ok);
    assert!(stderr.contains("--src"));
}

#[test]
fn session_runs_deterministically() {
    let (a, _, ok1) = run(&["session", "--system", "apkeep", "--seed", "9"]);
    let (b, _, ok2) = run(&["session", "--system", "apkeep", "--seed", "9"]);
    assert!(ok1 && ok2);
    assert_eq!(a, b, "same seed must print the same session");
    assert!(a.contains("participant C"));
}

#[test]
fn session_rejects_unknown_fault_profile() {
    let (_, stderr, ok) = run(&["session", "--faults", "bogus"]);
    assert!(!ok, "unknown profile must fail");
    assert!(stderr.contains("unknown fault profile 'bogus'"), "{stderr}");
    assert!(stderr.contains("none|light|heavy|chaos"), "{stderr}");
}

#[test]
fn session_fault_trace_is_deterministic() {
    let args = ["session", "--system", "ncflow", "--seed", "11", "--faults", "heavy"];
    let (a, _, ok1) = run(&args);
    let (b, _, ok2) = run(&args);
    assert!(ok1 && ok2, "{a}");
    assert_eq!(a, b, "same plan must print the same fault trace");
    assert!(a.contains("fault trace:"), "{a}");
    assert!(a.contains("resilience diagnosis:"), "{a}");
}

#[test]
fn none_profile_matches_unfaulted_output() {
    let (plain, _, ok1) = run(&["session", "--system", "arrow", "--seed", "5"]);
    let (none, _, ok2) =
        run(&["session", "--system", "arrow", "--seed", "5", "--faults", "none"]);
    assert!(ok1 && ok2);
    assert_eq!(plain, none, "--faults none must be byte-identical to no flag");
}

#[test]
fn validate_with_chaos_faults_still_diagnoses() {
    let (stdout, _, ok) = run(&["validate", "--participant", "a", "--faults", "chaos"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("diagnosis:"), "{stdout}");
    assert!(stdout.contains("resilience diagnosis:"), "{stdout}");
}

#[test]
fn validate_c_is_faithful() {
    let (stdout, _, ok) = run(&["validate", "--participant", "c"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Faithful"));
}
