//! A small dependency-free argument parser: `--key value`, `--flag`,
//! and positional arguments, with typed getters and error reporting.

use std::collections::HashMap;

/// Parsed arguments: positionals in order plus `--key [value]` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, Option<String>>,
}

/// Argument errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw token list. A token starting with `--` becomes an
    /// option; if the next token does not start with `--`, it is the
    /// option's value, otherwise the option is a bare flag.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Args {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(t) = it.next() {
            if let Some(key) = t.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next(),
                    _ => None,
                };
                out.options.insert(key.to_string(), value);
            } else {
                out.positional.push(t);
            }
        }
        out
    }

    /// Positional argument `i`.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }

    /// Whether `--key` was given (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// String value of `--key value`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).and_then(|v| v.as_deref())
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{s}'"))),
        }
    }

    /// Required typed value.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let s = self
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        s.parse().map_err(|_| ArgError(format!("--{key}: cannot parse '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positionals_and_options_mix() {
        // Options greedily consume the following token as their value;
        // flags only stay bare before another option or at the end.
        let a = parse("te solve --nodes 40 --quiet extra");
        assert_eq!(a.pos(0), Some("te"));
        assert_eq!(a.pos(1), Some("solve"));
        assert_eq!(a.get("nodes"), Some("40"));
        assert_eq!(a.get("quiet"), Some("extra"));
        let b = parse("te --quiet --nodes 40");
        assert!(b.has("quiet"));
        assert_eq!(b.get("quiet"), None);
    }

    #[test]
    fn typed_getters() {
        let a = parse("--n 12 --frac 0.5");
        assert_eq!(a.get_or::<usize>("n", 3).unwrap(), 12);
        assert_eq!(a.get_or::<f64>("frac", 0.0).unwrap(), 0.5);
        assert_eq!(a.get_or::<usize>("absent", 7).unwrap(), 7);
    }

    #[test]
    fn parse_errors_are_reported() {
        let a = parse("--n twelve");
        assert!(a.get_or::<usize>("n", 3).is_err());
        assert!(a.require::<usize>("missing").is_err());
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("--verbose --n 4");
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), None);
        assert_eq!(a.get_or::<usize>("n", 0).unwrap(), 4);
    }
}
