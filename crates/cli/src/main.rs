//! `netrepro` — the command-line face of the workspace.
//!
//! ```text
//! netrepro report   [--dir results]
//! netrepro survey   [--seed N]
//! netrepro te       [--nodes N] [--seed N] [--commodities K] [--paths P]
//!                   [--solver revised|dense] [--ncflow K] [--objective total|concurrent]
//! netrepro dpv      [--nodes N] [--width W] [--faults F] [--seed N]
//!                   [--check loops|blackholes|reach] [--src A --dst B]
//! netrepro dpv-scale [--k K] [--seed N] [--churn L] [--queries Q] [--partitions P]
//!                   [--workers W] [--node-cap N] [--check-serial] [--out FILE]
//! netrepro session  [--system ncflow|arrow|apkeep|ap|rps] [--seed N] [--auto]
//!                   [--faults none|light|heavy|chaos]
//! netrepro validate [--participant a|b|c|d] [--seed N] [--faults none|light|heavy|chaos]
//! netrepro analyze  [--system ncflow|arrow|apkeep|ap|rps] [--seed N] [--style mono|text|pseudo]
//!                   [--stage raw|final] [--json] [--fail-on error|warning|never] [--self-check]
//! netrepro sweep    [--systems CSV] [--styles CSV] [--seeds N] [--profiles CSV]
//!                   [--journal PATH] [--resume PATH] [--deadline N] [--attempts N]
//!                   [--breaker N] [--workers N] [--shards N] [--max-restarts N]
//!                   [--json] [--out FILE] [--halt-after K] [--throttle-ms MS] [--no-cache]
//! netrepro bench    [--quick] [--json] [--out FILE] [--check BASELINE.json]
//! netrepro rps      serve [--addr HOST:PORT] | play [--addr HOST:PORT] [--moves RPS...]
//! netrepro serve    [--addr HOST:PORT] [--dir DIR] [--workers N] [--queue-cap N]
//!                   [--tenant-quota N] [--job-breaker N] [--quantum N]
//!                   [--throttle-ms MS] [--no-cache]
//! netrepro submit   [--addr HOST:PORT] [--tenant T] [--nonce N] [--wait] [--out FILE]
//!                   [sweep matrix flags | --spec TOKEN]
//!                   | --status ID | --results ID | --cancel ID | --health | --drain
//! ```
//!
//! Every command is seeded and prints plain text; exit status is
//! non-zero on bad arguments or failed runs.

mod args;
mod cmd;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{}", cmd::USAGE);
        return;
    }
    let a = Args::parse(raw);
    let result = match a.pos(0) {
        Some("report") => cmd::report(&a),
        Some("survey") => cmd::survey(&a),
        Some("te") => cmd::te(&a),
        Some("dpv") => cmd::dpv(&a),
        Some("dpv-scale") => cmd::dpv_scale(&a),
        Some("session") => cmd::session(&a),
        Some("validate") => cmd::validate(&a),
        Some("analyze") => cmd::analyze(&a),
        Some("sweep") => cmd::sweep(&a),
        Some("sweep-shard") => cmd::sweep_shard(&a),
        Some("bench") => cmd::bench(&a),
        Some("rps") => cmd::rps(&a),
        Some("serve") => cmd::serve(&a),
        Some("submit") => cmd::submit(&a),
        Some(other) => Err(args::ArgError(format!("unknown command '{other}'\n{}", cmd::USAGE))),
        None => Err(args::ArgError(cmd::USAGE.to_string())),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
