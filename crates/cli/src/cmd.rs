//! Subcommand implementations.

use crate::args::{ArgError, Args};
use analysis::Severity;
use netrepro_bdd::EngineProfile;
use netrepro_core::cache::CellMemo;
use netrepro_core::diagnosis::{diagnose_dpv, diagnose_resilience, diagnose_te, RootCause};
use netrepro_core::fault::{FaultOutcome, FaultProfile};
use netrepro_core::framework::AutoEngineer;
use netrepro_core::harness::{self, CellWork, JournalSink, Sweep, SweepConfig, SweepReport, TaskLimits};
use netrepro_core::paper::TargetSystem;
use netrepro_core::shard::{self, Lease, ShardFault};
use netrepro_core::prompt::PromptStyle;
use netrepro_core::student::Participant;
use netrepro_core::survey::{build_corpus, SurveyStats};
use netrepro_core::validate as val;
use netrepro_core::{FaultInjector, FaultPlan, ReproductionSession};
use netrepro_dpv::ap::ApVerifier;
use netrepro_dpv::dataset::{generate, DatasetOpts};
use netrepro_dpv::header::HeaderLayout;
use netrepro_dpv::reach::{blackholes, find_loops, selective_bfs};
use netrepro_graph::gen::{waxman, TopologySpec};
use netrepro_graph::{traffic, NodeId};
use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_lp::LpSolver;
use netrepro_te::arrow::{multi_fiber_scenarios, ArrowInstance};
use netrepro_te::mcf::{solve_mcf_with_objective, McfObjective, TeInstance};
use netrepro_te::ncflow::{solve_ncflow, NcFlowConfig};

/// Top-level usage text.
pub const USAGE: &str = "netrepro — reproduce 'Toward Reproducing Network Research Results
Using Large Language Models' (HotNets 2023)

commands:
  report    [--dir results]                         summarise captured experiment JSON
  survey    [--seed N]                              Figure 1/2 statistics
  te        [--nodes N] [--seed N] [--commodities K] [--paths P]
            [--solver revised|dense] [--ncflow K] [--objective total|concurrent]
  dpv       [--nodes N] [--width W] [--faults F] [--seed N]
            [--check loops|blackholes|reach] [--src A --dst B]
  dpv-scale [--k K] [--seed N] [--churn L] [--queries Q] [--partitions P]
            [--workers W] [--node-cap N] [--check-serial] [--out FILE]
            partitioned parallel fat-tree verification (CI smoke: --check-serial)
  session   [--system ncflow|arrow|apkeep|ap|rps] [--seed N] [--auto]
            [--faults none|light|heavy|chaos]
  validate  [--participant a|b|c|d] [--seed N] [--faults none|light|heavy|chaos]
  analyze   [--system ncflow|arrow|apkeep|ap|rps] [--seed N] [--style mono|text|pseudo]
            [--stage raw|final] [--json] [--fail-on error|warning|never] [--self-check]
  sweep     [--systems CSV] [--styles CSV] [--seeds N] [--profiles CSV] [--scales CSV]
            [--journal PATH] [--resume PATH] [--deadline N] [--attempts N] [--breaker N]
            [--workers N] [--shards N] [--max-restarts N] [--json] [--out FILE]
            [--halt-after K] [--throttle-ms MS] [--no-cache]
  sweep-shard  (internal, spawned by sweep --shards) one shard lease:
            --seq N --start A --end B --journal PATH [--generation G]
  bench     [--quick] [--json] [--out FILE] [--check BASELINE.json]
  rps       serve [--addr H:P] | play [--addr H:P] [--moves RPSR...]
  serve     [--addr H:P] [--dir DIR] [--workers N] [--queue-cap N] [--tenant-quota N]
            [--job-breaker N] [--quantum N] [--throttle-ms MS] [--no-cache]
  submit    [--addr H:P] [--tenant T] [--nonce N] [--wait] [--out FILE] [--clock N]
            [sweep matrix/limit flags | --spec TOKEN]
            | --status ID | --results ID | --cancel ID | --health | --drain
";

type CmdResult = Result<(), ArgError>;

/// `netrepro report` — summarise the JSON tables the bench binaries
/// wrote under `results/`.
pub fn report(a: &Args) -> CmdResult {
    let dir = a.get("dir").unwrap_or("results");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| ArgError(format!("cannot read {dir}: {e} (run the bench bins first)")))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(ArgError(format!("no JSON tables in {dir}; run the bench bins first")));
    }
    println!("{} captured experiment table(s) in {dir}:\n", entries.len());
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ArgError(format!("{}: {e}", path.display())))?;
        let table: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| ArgError(format!("{}: bad JSON: {e}", path.display())))?;
        let id = table["id"].as_str().unwrap_or("?");
        let caption = table["caption"].as_str().unwrap_or("");
        let rows = table["rows"].as_array().map(|r| r.len()).unwrap_or(0);
        println!("  {id:<22} {rows:>3} rows  — {caption}");
    }
    println!("\n(render any table with its generating bin, e.g. `cargo run -p netrepro-bench --bin table_a_ncflow`)");
    Ok(())
}

/// `netrepro survey`
pub fn survey(a: &Args) -> CmdResult {
    let seed: u64 = a.get_or("seed", 2023)?;
    let corpus = build_corpus(seed);
    let s = SurveyStats::compute(&corpus);
    println!("corpus: {} papers (SIGCOMM+NSDI 2013-2022, seed {seed})", corpus.len());
    println!(
        "open-source rates: SIGCOMM {:.1}%  NSDI {:.1}%  both {:.1}%",
        100.0 * s.sigcomm_rate,
        100.0 * s.nsdi_rate,
        100.0 * s.both_rate
    );
    println!(
        "comparisons: >=2 compared {:.1}%; manual >=1 {:.1}%; manual >=2 {:.1}%; \
         conditional mean {:.2}",
        100.0 * s.pct_ge2_compared,
        100.0 * s.pct_ge1_manual,
        100.0 * s.pct_ge2_manual,
        s.mean_manual_conditional
    );
    Ok(())
}

fn solver_from(a: &Args) -> Result<Box<dyn LpSolver + Sync>, ArgError> {
    match a.get("solver").unwrap_or("revised") {
        "revised" => Ok(Box::new(RevisedSimplex::default())),
        "dense" => Ok(Box::new(DenseSimplex::default())),
        other => Err(ArgError(format!("--solver must be revised|dense, got '{other}'"))),
    }
}

/// `netrepro te`
pub fn te(a: &Args) -> CmdResult {
    let nodes: usize = a.get_or("nodes", 24)?;
    let seed: u64 = a.get_or("seed", 2023)?;
    let commodities: usize = a.get_or("commodities", 20)?;
    let paths: usize = a.get_or("paths", 4)?;
    let solver = solver_from(a)?;

    let graph = waxman(&TopologySpec::new("cli", nodes, seed));
    let tm = traffic::gravity(&graph, nodes as f64 * 30.0, seed + 1);
    let inst = TeInstance {
        name: format!("cli-{nodes}"),
        graph,
        tm,
        paths_per_commodity: paths,
        max_commodities: commodities,
    };
    println!(
        "instance: {} nodes, {} edges, {} commodities, {} demand",
        inst.graph.num_nodes(),
        inst.graph.num_edges(),
        inst.commodities().len(),
        format_flow(inst.total_demand())
    );

    if a.has("ncflow") {
        let k: usize = a.get_or("ncflow", 4)?;
        let cfg = NcFlowConfig { num_clusters: k, paths_per_commodity: paths, parallel_r2: true };
        let s = solve_ncflow(&inst, &cfg, solver.as_ref())
            .map_err(|e| ArgError(format!("ncflow: {e}")))?;
        println!(
            "NCFlow (k={}): flow {} in {:?} (R1 {:?}, R2 {:?}; {} pivots)",
            s.num_clusters,
            format_flow(s.total_flow),
            s.solve_time,
            s.r1_time,
            s.r2_time,
            s.lp_iterations
        );
        return Ok(());
    }

    let objective = match a.get("objective").unwrap_or("total") {
        "total" => McfObjective::TotalFlow,
        "concurrent" => McfObjective::MaxConcurrent,
        other => return Err(ArgError(format!("--objective must be total|concurrent, got '{other}'"))),
    };
    let s = solve_mcf_with_objective(&inst, objective, solver.as_ref())
        .map_err(|e| ArgError(format!("mcf: {e}")))?;
    match s.concurrency {
        Some(t) => println!(
            "max-concurrent flow: t = {t:.3}, total {} in {:?} ({} pivots)",
            format_flow(s.total_flow),
            s.solve_time,
            s.lp_iterations
        ),
        None => println!(
            "max total flow: {} in {:?} ({} pivots)",
            format_flow(s.total_flow),
            s.solve_time,
            s.lp_iterations
        ),
    }
    Ok(())
}

fn format_flow(f: f64) -> String {
    format!("{f:.2} Gbps")
}

/// `netrepro dpv`
pub fn dpv(a: &Args) -> CmdResult {
    let nodes: usize = a.get_or("nodes", 16)?;
    let width: u32 = a.get_or("width", 14)?;
    let faults: f64 = a.get_or("faults", 0.0)?;
    let seed: u64 = a.get_or("seed", 2023)?;
    let graph = waxman(&TopologySpec::new("cli", nodes, seed));
    let ds = generate(
        graph,
        HeaderLayout::new(width),
        &DatasetOpts { prefixes_per_device: 1, fault_rate: faults, seed },
    );
    let v = ApVerifier::build(&ds.network, EngineProfile::Cached);
    println!(
        "dataset: {} devices, {} rules; {} atomic predicates",
        nodes,
        ds.network.num_rules(),
        v.num_atoms()
    );
    match a.get("check").unwrap_or("loops") {
        "loops" => {
            let loops = find_loops(&v, 16);
            println!("forwarding loops: {}", loops.len());
            for l in loops {
                println!("  via device {} carrying {} atom(s)", l.device.0, l.atoms.len());
            }
        }
        "blackholes" => {
            let src: u32 = a.get_or("src", 0)?;
            let bh = blackholes(&v, NodeId(src));
            println!("blackhole sites reachable from device {src}: {}", bh.len());
            for (d, atoms) in bh {
                println!("  device {} swallows {} atom(s)", d.0, atoms.len());
            }
        }
        "reach" => {
            let src: u32 = a.require("src")?;
            let dst: u32 = a.require("dst")?;
            if src as usize >= nodes || dst as usize >= nodes {
                return Err(ArgError("--src/--dst out of range".into()));
            }
            let r = selective_bfs(&v, NodeId(src), NodeId(dst));
            println!(
                "reachability {src} -> {dst}: {} atom(s) arrive, {} delivered",
                r.arrived.len(),
                r.delivered.len()
            );
        }
        other => return Err(ArgError(format!("--check must be loops|blackholes|reach, got '{other}'"))),
    }
    Ok(())
}

/// `netrepro dpv-scale` — partitioned parallel DPV over a seeded k-ary
/// fat-tree: build the fabric, verify the (sampled) destination set in
/// `--partitions` chunks on `--workers` pool threads, print the
/// canonical digest. `--check-serial` re-verifies serially and fails if
/// the merged verdict stream is not byte-identical — the CI smoke gate.
pub fn dpv_scale(a: &Args) -> CmdResult {
    let k: usize = a.get_or("k", 8)?;
    if !(4..=64).contains(&k) || !k.is_multiple_of(2) || !(k / 2).is_power_of_two() {
        return Err(ArgError(format!(
            "--k must be even with k/2 a power of two (4, 8, 16, 32, 64), got {k}"
        )));
    }
    let spec = netrepro_core::dpv_scale::DpvScaleSpec {
        k,
        seed: a.get_or("seed", 2023)?,
        link_down: a.get_or("churn", 0)?,
        queries: match a.get("queries") {
            Some(_) => Some(a.require("queries")?),
            None => None,
        },
        partitions: a.get_or("partitions", 4)?,
        workers: a.get_or("workers", 4)?,
        node_cap: match a.get("node-cap") {
            Some(_) => Some(a.require("node-cap")?),
            None => None,
        },
    };
    let report = netrepro_core::dpv_scale::run_spec(&spec)
        .map_err(|e| ArgError(format!("dpv-scale: {e}")))?;
    println!(
        "fabric: k={} → {} devices; {} destination(s) verified in {} partition(s) on {} worker(s)",
        spec.k, report.devices, report.queried, spec.partitions, spec.workers
    );
    let (mut full, mut bh, mut loops) = (0u64, 0u64, 0u64);
    for v in &report.verdicts {
        full += u64::from(v.none == 0 && v.partial == 0);
        bh += u64::from(v.bh_devices > 0 || v.bh_local > 0);
        loops += u64::from(!v.loop_devices.is_empty());
    }
    println!(
        "verdicts: {full} fully reachable, {bh} with blackholes, {loops} with loops; digest {:016x}",
        report.digest
    );
    if a.has("check-serial") {
        let serial = netrepro_core::dpv_scale::run_spec(&netrepro_core::dpv_scale::DpvScaleSpec {
            partitions: 1,
            workers: 1,
            ..spec
        })
        .map_err(|e| ArgError(format!("dpv-scale serial check: {e}")))?;
        if serial.rendered != report.rendered {
            return Err(ArgError(format!(
                "partitioned verdicts diverge from serial: {:016x} != {:016x}",
                report.digest, serial.digest
            )));
        }
        println!(
            "serial check: byte-identical at P={} W={} vs P=1 W=1",
            spec.partitions, spec.workers
        );
    }
    if let Some(path) = a.get("out") {
        let json = format!(
            "{{\"k\": {}, \"devices\": {}, \"queried\": {}, \"partitions\": {}, \
             \"workers\": {}, \"link_down\": {}, \"digest\": \"{:016x}\", \
             \"full\": {full}, \"blackholed\": {bh}, \"looping\": {loops}}}\n",
            spec.k, report.devices, report.queried, spec.partitions, spec.workers,
            spec.link_down, report.digest
        );
        std::fs::write(path, json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Build a fault injector from `--faults <profile>` (disabled when the
/// flag is absent). The plan is seeded independently of the workload
/// seed so `--seed` sweeps keep the same fault schedule.
fn faults_from(a: &Args, seed: u64) -> Result<FaultInjector, ArgError> {
    match a.get("faults") {
        Some(spec) => Ok(FaultPlan::parse(spec, seed).map_err(ArgError)?.injector()),
        None => Ok(FaultInjector::disabled()),
    }
}

/// Print the resilience ledger after a fault-injected run: headline
/// counters, the per-site breakdown, the deterministic trace, and the
/// trust diagnosis.
fn print_resilience(faults: &FaultInjector) {
    if !faults.enabled() {
        return;
    }
    let r = faults.report();
    println!(
        "faults ({} profile, seed {}): {} injected, {} absorbed, {} escaped ({:.0}% absorption)",
        r.profile,
        r.seed,
        r.injected,
        r.absorbed,
        r.escaped,
        100.0 * r.absorption_rate()
    );
    for s in &r.by_site {
        if s.injected > 0 {
            println!(
                "  {:<12} {:>3} injected  {:>3} absorbed  {:>3} escaped",
                s.site, s.injected, s.absorbed, s.escaped
            );
        }
    }
    let trace: Vec<String> = r
        .trace
        .iter()
        .map(|e| {
            let mark = match e.outcome {
                FaultOutcome::Absorbed => "+",
                FaultOutcome::Escaped => "!",
            };
            format!("{}{}@{}", mark, e.kind.name(), e.site.name())
        })
        .collect();
    if !trace.is_empty() {
        println!("fault trace: {}", trace.join(" "));
    }
    let d = diagnose_resilience(&r);
    println!("resilience diagnosis: {:?} — {}", d.cause, d.evidence);
}

fn system_from(a: &Args) -> Result<TargetSystem, ArgError> {
    let spec = a.get("system").unwrap_or("ncflow");
    TargetSystem::parse(spec).ok_or_else(|| {
        ArgError(format!("--system must be ncflow|arrow|apkeep|ap|rps, got '{spec}'"))
    })
}

/// Parse a comma-separated list through `parse`, rejecting unknown or
/// empty entries with the flag's name in the message.
fn parse_csv<T>(
    spec: &str,
    parse: impl Fn(&str) -> Option<T>,
    flag: &str,
) -> Result<Vec<T>, ArgError> {
    let mut out = Vec::new();
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        out.push(parse(tok).ok_or_else(|| ArgError(format!("{flag}: unknown value '{tok}'")))?);
    }
    if out.is_empty() {
        return Err(ArgError(format!("{flag}: empty list")));
    }
    Ok(out)
}

/// `netrepro session`
pub fn session(a: &Args) -> CmdResult {
    let system = system_from(a)?;
    let seed: u64 = a.get_or("seed", 2023)?;
    let mut faults = faults_from(a, seed)?;
    if a.has("auto") {
        let attempts = AutoEngineer::default().run_with_faults(system, seed, &mut faults);
        for (i, at) in attempts.iter().enumerate() {
            println!(
                "attempt {} ({:?}): {} prompts, {} words, {} LoC, accepted={}",
                i + 1,
                at.style,
                at.report.total_prompts(),
                at.report.total_words(),
                at.report.artifact.loc,
                at.accepted
            );
        }
        print_resilience(&faults);
        return Ok(());
    }
    let r = ReproductionSession::new(Participant::preset(system), seed).run_with_faults(&mut faults);
    println!(
        "participant {} reproducing {}: {} prompts, {} words",
        r.participant,
        system.name(),
        r.total_prompts(),
        r.total_words()
    );
    println!(
        "artifact: {} LoC across {} components ({}% of the open-source prototype)",
        r.artifact.loc,
        r.artifact.components,
        (100.0 * r.artifact.loc_ratio()).round()
    );
    println!("residual defects: {:?}", r.residual_defects);
    let spec = netrepro_core::paper::PaperSpec::for_system(system);
    let (report, d) = analysis::gate::gate_artifacts(&spec, &r.component_artifacts);
    println!("static audit: {}", report.summary_line());
    println!("static diagnosis: {:?} — {}", d.cause, d.evidence);
    print_resilience(&faults);
    // Exit non-zero on rejection, matching `analyze`: a failure verdict
    // with exit 0 reads as success to any script driving the CLI.
    if d.cause == RootCause::StaticallyRejected {
        return Err(ArgError(
            "session rejected: static gate found error-severity defects".into(),
        ));
    }
    if faults.enabled() {
        let escaped = faults.report().escaped;
        if escaped > 0 {
            return Err(ArgError(format!(
                "session rejected: {escaped} injected fault(s) escaped"
            )));
        }
    }
    Ok(())
}

/// `netrepro validate`
pub fn validate(a: &Args) -> CmdResult {
    let seed: u64 = a.get_or("seed", 2023)?;
    let mut faults = faults_from(a, seed)?;
    match a.get("participant").unwrap_or("a") {
        "a" => {
            let inst = val::te_instance(&TopologySpec::new("CRL", 33, seed), 100, 4);
            let v = val::validate_ncflow_with_faults(&inst, &mut faults)
                .map_err(|e| ArgError(e.to_string()))?;
            let d = diagnose_te(&v);
            println!(
                "NCFlow on {}: obj diff {:.3}%, latency {:?} vs {:?} ({:.1}x)",
                v.instance,
                v.obj_diff_pct(),
                v.latency_open,
                v.latency_repro,
                v.latency_ratio()
            );
            println!("diagnosis: {:?} — {}", d.cause, d.evidence);
        }
        "b" => {
            let mut te = val::te_instance(&TopologySpec::new("OpticalA", 16, seed + 100), 10, 3);
            te.tm.scale(4.0);
            let scenarios = multi_fiber_scenarios(&te, 3, 3);
            let inst = ArrowInstance { te, scenarios, restoration_fraction: 0.5 };
            let v = val::validate_arrow_with_faults(&inst, &mut faults)
                .map_err(|e| ArgError(e.to_string()))?;
            let d = diagnose_te(&v);
            println!(
                "ARROW on {}: committed {} (open) vs {} (faithful), diff {:.1}%",
                v.instance,
                format_flow(v.obj_open),
                format_flow(v.obj_repro),
                v.obj_diff_pct()
            );
            println!("diagnosis: {:?} — {}", d.cause, d.evidence);
        }
        "c" => {
            let ds = val::dpv_dataset("Internet2", 9, 12, seed);
            let v = val::validate_apkeep_with_faults(&ds, "Internet2", &mut faults);
            let d = diagnose_dpv(&v);
            println!(
                "APKeep on {}: atoms {} vs {} (equal={})",
                v.dataset, v.atoms_open, v.atoms_repro, v.results_equal
            );
            println!("diagnosis: {:?} — {}", d.cause, d.evidence);
        }
        "d" => {
            let ds = val::dpv_dataset("Purdue", 18, 14, seed);
            let queries = netrepro_graph::gen::sample_pairs(&ds.network.graph, 5, seed + 7);
            let v = val::validate_ap_with_faults(&ds, "Purdue", &queries, 100_000, &mut faults);
            let d = diagnose_dpv(&v);
            println!(
                "AP on {}: atoms {} vs {}; pred {:.1}x; verify {:.0}x (equal={})",
                v.dataset,
                v.atoms_open,
                v.atoms_repro,
                v.pred_ratio(),
                v.verify_ratio(),
                v.results_equal
            );
            println!("diagnosis: {:?} — {}", d.cause, d.evidence);
        }
        other => {
            return Err(ArgError(format!("--participant must be a|b|c|d, got '{other}'")))
        }
    }
    print_resilience(&faults);
    Ok(())
}

/// `netrepro analyze` — the Tier A static auditor on generated
/// artifacts: detect the §3.3 defect taxonomy without executing
/// anything. `--stage raw` audits what the LLM first produced,
/// `--stage final` audits what the session shipped after debugging.
/// Exit is non-zero when findings reach `--fail-on` (default: error).
/// `--effects` instead runs the workspace determinism analyzer (the
/// same engine as `repolint --effects`) on `--root` (default `.`).
pub fn analyze(a: &Args) -> CmdResult {
    if a.has("effects") {
        let root = std::path::PathBuf::from(a.get("root").unwrap_or("."));
        let report =
            analysis::effects::analyze(&root, &analysis::effects::EffectConfig::workspace_default())
                .map_err(|e| ArgError(format!("effects scan failed: {e}")))?;
        if a.has("json") {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
        }
        let findings = report.findings();
        let n = findings.count_at_least(Severity::Warning);
        if n > 0 {
            if !a.has("json") {
                print!("{}", findings.render_text());
            }
            return Err(ArgError(format!("{n} effect finding(s)")));
        }
        return Ok(());
    }
    if a.has("self-check") {
        let stats = analysis::selfcheck::self_check(8).map_err(ArgError)?;
        println!(
            "analyze self-check passed: {} artifact audits across all systems/styles, \
             {} latent defects all detected statically, zero false positives",
            stats.artifacts, stats.defects
        );
        return Ok(());
    }
    let system = system_from(a)?;
    let seed: u64 = a.get_or("seed", 2023)?;
    let stage = a.get("stage").unwrap_or("raw");
    let style_spec = a.get("style").unwrap_or("text");
    let style = PromptStyle::parse(style_spec).ok_or_else(|| {
        ArgError(format!("--style must be mono|text|pseudo, got '{style_spec}'"))
    })?;
    let spec = netrepro_core::paper::PaperSpec::for_system(system);
    let artifacts = match stage {
        "raw" => {
            let mut llm = netrepro_core::llm::SimulatedLlm::new(seed);
            spec.components
                .iter()
                .enumerate()
                .map(|(i, c)| llm.implement(c, i, style))
                .collect::<Vec<_>>()
        }
        "final" => {
            ReproductionSession::new(Participant::preset(system), seed).run().component_artifacts
        }
        other => return Err(ArgError(format!("--stage must be raw|final, got '{other}'"))),
    };
    let (report, diagnosis) = analysis::gate::gate_artifacts(&spec, &artifacts);
    if a.has("json") {
        println!("{}", report.render_json());
    } else {
        println!(
            "static audit: {} ({} component artifact(s), stage {stage}, seed {seed})",
            system.name(),
            artifacts.len()
        );
        print!("{}", report.render_text());
        println!("diagnosis: {:?} — {}", diagnosis.cause, diagnosis.evidence);
    }
    let fail_on = a.get("fail-on").unwrap_or("error");
    if fail_on != "never" {
        let sev = Severity::parse(fail_on)
            .ok_or_else(|| ArgError(format!("--fail-on must be error|warning|never, got '{fail_on}'")))?;
        let n = report.count_at_least(sev);
        if n > 0 {
            return Err(ArgError(format!("{n} finding(s) at or above severity '{sev}'")));
        }
    }
    Ok(())
}

/// Default sweep worker count: the machine's available parallelism,
/// capped at 8. The cap keeps speculative execution bounded — beyond
/// the matrix's class width, extra workers mostly execute cells a
/// breaker will discard at commit time.
fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Write-ahead journal sink over a real file. Each line is written and
/// flushed before the sweep moves on, so a `SIGKILL` between appends
/// loses at most the line being written — exactly the torn-trailing
/// case `parse_journal` recovers from.
struct FileJournal {
    file: std::fs::File,
    lines_written: u64,
    /// Crash-simulation aid: write only the first half of line K (no
    /// newline), sync, and exit(3) — a deterministic torn write.
    halt_after: Option<u64>,
    /// Sleep per appended line so an external test can land a SIGKILL
    /// mid-run.
    throttle_ms: u64,
}

impl FileJournal {
    fn new(file: std::fs::File, halt_after: Option<u64>, throttle_ms: u64) -> FileJournal {
        FileJournal { file, lines_written: 0, halt_after, throttle_ms }
    }
}

impl JournalSink for FileJournal {
    fn append(&mut self, line: &str) -> Result<(), String> {
        use std::io::Write;
        if self.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.throttle_ms));
        }
        if self.halt_after == Some(self.lines_written + 1) {
            let mut cut = line.len() / 2;
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            let _ = self.file.write_all(&line.as_bytes()[..cut]);
            let _ = self.file.sync_all();
            std::process::exit(3);
        }
        self.file.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
        self.file.flush().map_err(|e| e.to_string())?;
        self.lines_written += 1;
        Ok(())
    }
}

/// Wraps the shard child's [`FileJournal`] to inject [`ShardFault`]s:
/// process-level faults strike *before* the write-ahead append, so an
/// injected crash always leaves a clean journal prefix — exactly what
/// a real SIGKILL between appends leaves behind. The stall sleeps at
/// the CLI layer; `core::shard` itself never reads the wall clock.
struct ShardFaultSink {
    inner: FileJournal,
    /// The next append is the shard header (never faulted: the fault
    /// schedule covers journaled cells only).
    header_pending: bool,
    /// Pre-rolled fault per remaining cell, popped per work line.
    actions: std::collections::VecDeque<Option<ShardFault>>,
}

impl JournalSink for ShardFaultSink {
    fn append(&mut self, line: &str) -> Result<(), String> {
        if self.header_pending {
            self.header_pending = false;
            return self.inner.append(line);
        }
        match self.actions.pop_front().flatten() {
            Some(ShardFault::Crash) => {
                // Dedicated exit code so tests can tell an injected
                // crash from a real failure; the coordinator respawns
                // the lease at the next generation either way.
                std::process::exit(5);
            }
            Some(ShardFault::Stall) => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            None => {}
        }
        self.inner.append(line)
    }
}

/// Aggregate the sweep's cells into a per-(system, style, profile) text
/// table: coverage plus mean prompts/LoC over completed cells.
fn print_sweep_table(report: &SweepReport) {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Agg {
        cells: u64,
        completed: u64,
        quarantined: u64,
        skipped: u64,
        prompts: u64,
        loc: u64,
    }
    let mut rows: BTreeMap<String, Agg> = BTreeMap::new();
    for cell in &report.cells {
        let key = format!(
            "{:<8} {:<7} {:<6}",
            cell.cell.system.name(),
            cell.cell.style.name(),
            cell.cell.profile.name()
        );
        let agg = rows.entry(key).or_default();
        agg.cells += 1;
        match cell.status {
            harness::CellStatus::Completed => agg.completed += 1,
            harness::CellStatus::Quarantined => agg.quarantined += 1,
            harness::CellStatus::SkippedByBreaker => agg.skipped += 1,
        }
        if let Some(r) = &cell.result {
            agg.prompts += r.prompts;
            agg.loc += r.loc;
        }
    }
    println!(
        "{:<8} {:<7} {:<6}  {:>5} {:>5} {:>5} {:>5}  {:>11} {:>9}",
        "system", "style", "prof", "cells", "done", "quar", "skip", "avg-prompts", "avg-loc"
    );
    for (key, agg) in rows {
        let (avg_p, avg_l) = if agg.completed > 0 {
            (
                format!("{:.1}", agg.prompts as f64 / agg.completed as f64),
                format!("{:.0}", agg.loc as f64 / agg.completed as f64),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };
        println!(
            "{key}  {:>5} {:>5} {:>5} {:>5}  {avg_p:>11} {avg_l:>9}",
            agg.cells, agg.completed, agg.quarantined, agg.skipped
        );
    }
}

/// Parse the matrix + limit flags shared by `sweep` (serial and
/// coordinator alike) and the `sweep-shard` child, so all three build
/// the same [`SweepConfig`] — and therefore the same fingerprint —
/// from the same flag set.
fn sweep_config_from(a: &Args) -> Result<SweepConfig, ArgError> {
    let systems = parse_csv(
        a.get("systems").unwrap_or("ncflow,arrow,apkeep,ap"),
        TargetSystem::parse,
        "--systems",
    )?;
    let styles =
        parse_csv(a.get("styles").unwrap_or("text,pseudo"), PromptStyle::parse, "--styles")?;
    let profiles =
        parse_csv(a.get("profiles").unwrap_or("none,heavy"), FaultProfile::parse, "--profiles")?;
    let scales =
        parse_csv(a.get("scales").unwrap_or("paper"), harness::TopoScale::parse, "--scales")?;
    let n_seeds: u64 = a.get_or("seeds", 3)?;
    if n_seeds == 0 {
        return Err(ArgError("--seeds must be at least 1".into()));
    }
    let defaults = TaskLimits::default();
    let limits = TaskLimits {
        deadline_steps: a.get_or("deadline", defaults.deadline_steps)?,
        max_attempts: a.get_or("attempts", defaults.max_attempts)?,
        backoff_base: defaults.backoff_base,
        backoff_cap: defaults.backoff_cap,
        breaker_threshold: a.get_or("breaker", defaults.breaker_threshold)?,
    };
    Ok(SweepConfig { systems, styles, seeds: (0..n_seeds).collect(), profiles, scales, limits })
}

/// The sweep's worker count: `--workers N` or the machine default.
fn sweep_workers_from(a: &Args) -> Result<usize, ArgError> {
    let workers: usize = match a.get("workers") {
        Some(_) => a.get_or("workers", 1)?,
        None => default_workers(),
    };
    if workers == 0 {
        return Err(ArgError("--workers must be at least 1".into()));
    }
    Ok(workers)
}

/// A [`Sweep`] wired with the Tier A static gate and (optionally) the
/// deterministic memo. Memoization is on by default: execute_cell is a
/// pure function of the cell id, so the memo cannot change a single
/// journal or report byte (property-tested) — `--no-cache` exists for
/// A/B timing, not correctness.
fn sweep_runtime(config: &SweepConfig, workers: usize, cache: bool) -> Sweep {
    let mut runtime = Sweep::new(config.clone())
        .with_workers(workers)
        .with_gate(Box::new(|spec, arts| {
            let (report, _) = analysis::gate::gate_artifacts(spec, arts);
            analysis::gate::static_gate(&report)
        }));
    if cache {
        runtime = runtime.with_cache(CellMemo::shared());
    }
    runtime
}

/// The `--out`/`--json`/table tail shared by the serial sweep and the
/// shard coordinator — both must print a completed matrix identically.
fn emit_sweep_report(a: &Args, report: &SweepReport) -> CmdResult {
    if let Some(out) = a.get("out") {
        std::fs::write(out, report.render_json())
            .map_err(|e| ArgError(format!("{out}: {e}")))?;
    }
    if a.has("json") {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.summary());
        print_sweep_table(report);
    }
    Ok(())
}

/// `netrepro sweep` — the crash-safe orchestration runtime over the
/// full system × style × seed × profile matrix. Every finished cell is
/// appended to a JSONL journal before the sweep moves on; `--resume`
/// replays a journal (dropping a torn trailing record) and executes
/// only the remainder, producing a byte-identical report. With
/// `--shards N` the matrix runs as N coordinator-supervised child
/// processes instead ([`sweep_coordinator`]).
pub fn sweep(a: &Args) -> CmdResult {
    let config = sweep_config_from(a)?;
    let workers = sweep_workers_from(a)?;
    if a.has("shards") {
        return sweep_coordinator(a, &config, workers);
    }
    let runtime = sweep_runtime(&config, workers, !a.has("no-cache"));
    let halt_after =
        if a.has("halt-after") { Some(a.require::<u64>("halt-after")?) } else { None };
    let throttle_ms: u64 = a.get_or("throttle-ms", 0)?;

    let report = if let Some(path) = a.get("resume") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read journal {path}: {e}")))?;
        let replay = harness::parse_journal(&text, &config).map_err(|e| ArgError(e.to_string()))?;
        if replay.dropped_partial {
            eprintln!("journal {path}: dropped a torn trailing record; its cell re-runs");
        }
        eprintln!(
            "resuming {path}: {} of {} cells journaled",
            replay.records.len(),
            config.total_cells()
        );
        // Truncate the torn tail so appended lines continue the valid
        // prefix, then hand the append handle to the sweep.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| ArgError(format!("cannot reopen {path}: {e}")))?;
        file.set_len(replay.valid_bytes).map_err(|e| ArgError(format!("truncate {path}: {e}")))?;
        drop(file);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| ArgError(format!("cannot append to {path}: {e}")))?;
        let mut sink = FileJournal::new(file, halt_after, throttle_ms);
        runtime.run_from(&replay, &mut sink).map_err(ArgError)?
    } else {
        let path = a.get("journal").unwrap_or("results/sweep.jsonl");
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ArgError(format!("{}: {e}", parent.display())))?;
            }
        }
        let file = std::fs::File::create(path)
            .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
        let mut sink = FileJournal::new(file, halt_after, throttle_ms);
        runtime.run(&mut sink).map_err(ArgError)?
    };
    emit_sweep_report(a, &report)
}

/// Path of the shard journal for lease `seq` inside the shard
/// directory.
fn shard_file(dir: &str, seq: u64) -> String {
    format!("{dir}/shard-{seq}.jsonl")
}

/// The argv for one `sweep-shard` child: the lease identity plus the
/// matrix/limit flags that rebuild the coordinator's exact config. Any
/// drift is caught by the shard header's fingerprint check, not left
/// to silently skew the matrix.
fn child_args(
    a: &Args,
    config: &SweepConfig,
    workers: usize,
    lease: Lease,
    generation: u32,
    journal: &str,
) -> Vec<String> {
    let mut v: Vec<String> = [
        "sweep-shard",
        "--seq", &lease.seq.to_string(),
        "--start", &lease.start.to_string(),
        "--end", &lease.end.to_string(),
        "--generation", &generation.to_string(),
        "--journal", journal,
        "--workers", &workers.to_string(),
        "--systems", a.get("systems").unwrap_or("ncflow,arrow,apkeep,ap"),
        "--styles", a.get("styles").unwrap_or("text,pseudo"),
        "--profiles", a.get("profiles").unwrap_or("none,heavy"),
        "--scales", a.get("scales").unwrap_or("paper"),
        "--seeds", &config.seeds.len().to_string(),
        "--deadline", &config.limits.deadline_steps.to_string(),
        "--attempts", &config.limits.max_attempts.to_string(),
        "--breaker", &config.limits.breaker_threshold.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(t) = a.get("throttle-ms") {
        v.push("--throttle-ms".into());
        v.push(t.into());
    }
    if let Some(k) = a.get("halt-after") {
        v.push("--halt-after".into());
        v.push(k.into());
    }
    if a.has("no-cache") {
        v.push("--no-cache".into());
    }
    v
}

/// `netrepro sweep --shards N` — the multi-process coordinator.
///
/// Partitions the matrix into contiguous leases, journals each lease
/// into the coordinator ledger *before* spawning its `sweep-shard`
/// child (write-ahead: no shard journal can exist without a durable
/// lease line), supervises the fleet with capped-exponential-backoff
/// restarts up to `--max-restarts` per lease, and — once every cell's
/// work is journaled — merges the shard journals into the canonical
/// journal, byte-identical to a serial run. `--resume` truncates the
/// ledger and every shard journal to their valid prefixes, harvests
/// the finished works, and re-leases the remaining runs with
/// work-stealing splits.
fn sweep_coordinator(a: &Args, config: &SweepConfig, workers: usize) -> CmdResult {
    let shards: usize = a.require("shards")?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    let max_restarts: u32 = a.get_or("max-restarts", 8)?;
    let total = config.total_cells() as u64;
    let exe = std::env::current_exe().map_err(|e| ArgError(format!("current_exe: {e}")))?;

    let resuming = a.get("resume");
    let path = resuming.or_else(|| a.get("journal")).unwrap_or("results/sweep.jsonl");
    let dir = format!("{path}.shards");
    let coord_path = format!("{dir}/coordinator.jsonl");

    let mut works: std::collections::BTreeMap<u64, CellWork> = std::collections::BTreeMap::new();
    let mut ledger;
    let to_run: Vec<Lease>;

    if resuming.is_some() {
        let text = std::fs::read_to_string(&coord_path).map_err(|e| {
            ArgError(format!(
                "cannot read coordinator ledger {coord_path}: {e} \
                 (was this journal written with --shards?)"
            ))
        })?;
        let replay = shard::parse_coord_journal(&text, config, shards)
            .map_err(|e| ArgError(e.to_string()))?;
        if replay.dropped_partial {
            eprintln!("coordinator ledger {coord_path}: dropped a torn trailing record");
        }
        // Harvest every journaled work from the shard files of every
        // issued lease — a lease whose child never wrote a byte (or
        // whose file is a torn header) simply contributes nothing.
        for lease in &replay.leases {
            let sp = shard_file(&dir, lease.seq);
            let stext = std::fs::read_to_string(&sp).unwrap_or_default();
            let sr = shard::parse_shard_journal(&stext, config, *lease)
                .map_err(|e| ArgError(format!("{sp}: {e}")))?;
            shard::collect_works(*lease, &sr, &mut works);
        }
        let runs = shard::remaining_runs(total, &works);
        to_run = shard::plan_leases(&runs, shards, replay.next_seq());
        eprintln!(
            "resuming {path}: {} of {total} cells journaled across {} shard journal(s); \
             {} fresh lease(s)",
            works.len(),
            replay.leases.len(),
            to_run.len()
        );
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&coord_path)
            .map_err(|e| ArgError(format!("cannot reopen {coord_path}: {e}")))?;
        file.set_len(replay.valid_bytes)
            .map_err(|e| ArgError(format!("truncate {coord_path}: {e}")))?;
        drop(file);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&coord_path)
            .map_err(|e| ArgError(format!("cannot append to {coord_path}: {e}")))?;
        ledger = FileJournal::new(file, None, 0);
        if !replay.has_header {
            ledger
                .append(&shard::CoordHeader::new(config, shards).line().map_err(ArgError)?)
                .map_err(ArgError)?;
        }
    } else {
        // A fresh run owns the shard directory: stale journals from an
        // abandoned run must not be harvested into this one.
        if std::path::Path::new(&dir).exists() {
            std::fs::remove_dir_all(&dir).map_err(|e| ArgError(format!("{dir}: {e}")))?;
        }
        std::fs::create_dir_all(&dir).map_err(|e| ArgError(format!("{dir}: {e}")))?;
        let file = std::fs::File::create(&coord_path)
            .map_err(|e| ArgError(format!("cannot create {coord_path}: {e}")))?;
        ledger = FileJournal::new(file, None, 0);
        ledger
            .append(&shard::CoordHeader::new(config, shards).line().map_err(ArgError)?)
            .map_err(ArgError)?;
        to_run = shard::partition(total, shards)
            .iter()
            .enumerate()
            .map(|(i, r)| Lease { seq: i as u64, start: r.start, end: r.end })
            .collect();
    }

    struct Slot {
        lease: Lease,
        child: Option<std::process::Child>,
        generation: u32,
        restarts: u32,
    }
    let mut slots: Vec<Slot> = Vec::new();
    for lease in to_run {
        ledger.append(&shard::CoordLine::Lease { lease }.line().map_err(ArgError)?).map_err(ArgError)?;
        let sp = shard_file(&dir, lease.seq);
        let child = std::process::Command::new(&exe)
            .args(child_args(a, config, workers, lease, 0, &sp))
            .spawn()
            .map_err(|e| ArgError(format!("spawn shard {}: {e}", lease.seq)))?;
        slots.push(Slot { lease, child: Some(child), generation: 0, restarts: 0 });
    }

    let mut exhausted = 0usize;
    while slots.iter().any(|s| s.child.is_some()) {
        std::thread::sleep(std::time::Duration::from_millis(10));
        for slot in &mut slots {
            let Some(child) = slot.child.as_mut() else { continue };
            let status = match child.try_wait() {
                Ok(None) => continue,
                Ok(Some(status)) => status,
                Err(e) => return Err(ArgError(format!("wait on shard {}: {e}", slot.lease.seq))),
            };
            slot.child = None;
            let sp = shard_file(&dir, slot.lease.seq);
            let stext = std::fs::read_to_string(&sp).unwrap_or_default();
            let complete = shard::parse_shard_journal(&stext, config, slot.lease)
                .map(|sr| sr.works.len() as u64 == slot.lease.range().len())
                .unwrap_or(false);
            if status.success() && complete {
                ledger
                    .append(&shard::CoordLine::Done { seq: slot.lease.seq }.line().map_err(ArgError)?)
                    .map_err(ArgError)?;
                continue;
            }
            slot.restarts += 1;
            if slot.restarts > max_restarts {
                eprintln!(
                    "shard {} (cells {}): {status}; restart cap --max-restarts {max_restarts} \
                     exhausted, giving up on this lease",
                    slot.lease.seq,
                    slot.lease.range()
                );
                exhausted += 1;
                continue;
            }
            let wait = config.limits.backoff(slot.restarts);
            eprintln!(
                "shard {} (cells {}): {status}; restart {}/{max_restarts} after {wait}ms",
                slot.lease.seq,
                slot.lease.range(),
                slot.restarts
            );
            std::thread::sleep(std::time::Duration::from_millis(wait));
            slot.generation += 1;
            let child = std::process::Command::new(&exe)
                .args(child_args(a, config, workers, slot.lease, slot.generation, &sp))
                .spawn()
                .map_err(|e| ArgError(format!("respawn shard {}: {e}", slot.lease.seq)))?;
            slot.child = Some(child);
        }
    }

    for slot in &slots {
        let sp = shard_file(&dir, slot.lease.seq);
        let stext = std::fs::read_to_string(&sp).unwrap_or_default();
        if let Ok(sr) = shard::parse_shard_journal(&stext, config, slot.lease) {
            shard::collect_works(slot.lease, &sr, &mut works);
        }
    }
    let (covered, missing) = shard::coverage_of(total, &works);
    if !missing.is_empty() {
        eprintln!("partial coverage: {covered} of {total} cells journaled; missing runs:");
        for r in &missing {
            eprintln!("  cells {r}");
        }
        return Err(ArgError(format!(
            "sharded sweep incomplete: {exhausted} lease(s) exhausted the restart cap; \
             re-run with --shards {shards} --resume {path} to continue"
        )));
    }

    // The final journal is derived state, recomputed wholesale from the
    // shard journals — so an interrupted merge is simply overwritten.
    let merger = sweep_runtime(config, workers, false);
    let file = std::fs::File::create(path)
        .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
    let mut sink = FileJournal::new(file, None, 0);
    let report = shard::merge(&merger, &works, &mut sink).map_err(ArgError)?;
    emit_sweep_report(a, &report)
}

/// `netrepro sweep-shard` — the coordinator-spawned child that
/// executes one lease into its per-shard write-ahead journal. Internal,
/// but runnable by hand for debugging: it resumes its own journal the
/// same way the top-level sweep does (truncate to the valid prefix,
/// execute the remainder).
pub fn sweep_shard(a: &Args) -> CmdResult {
    let config = sweep_config_from(a)?;
    let workers = sweep_workers_from(a)?;
    let lease = Lease { seq: a.require("seq")?, start: a.require("start")?, end: a.require("end")? };
    let generation: u32 = a.get_or("generation", 0)?;
    let path = a
        .get("journal")
        .ok_or_else(|| ArgError("sweep-shard needs --journal PATH".into()))?;
    let halt_after =
        if a.has("halt-after") { Some(a.require::<u64>("halt-after")?) } else { None };
    let throttle_ms: u64 = a.get_or("throttle-ms", 0)?;

    let cells = config.expand();
    if lease.start > lease.end || lease.end as usize > cells.len() {
        return Err(ArgError(format!(
            "lease range {} outside the {}-cell matrix",
            lease.range(),
            cells.len()
        )));
    }
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let replay =
        shard::parse_shard_journal(&text, &config, lease).map_err(|e| ArgError(e.to_string()))?;
    if replay.dropped_partial {
        eprintln!("shard journal {path}: dropped a torn trailing record; its cell re-runs");
    }
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        // Keep the valid prefix: the explicit set_len below is the only
        // truncation a resume performs.
        .truncate(false)
        .open(path)
        .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    file.set_len(replay.valid_bytes).map_err(|e| ArgError(format!("truncate {path}: {e}")))?;
    drop(file);
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| ArgError(format!("cannot append to {path}: {e}")))?;

    // Injected shard faults are rolled up front for the cells this
    // generation will journal — pure in (cell, generation), so a
    // respawned child rolls a fresh schedule instead of replaying the
    // exact crash that killed it.
    let todo = &cells[lease.start as usize + replay.works.len()..lease.end as usize];
    let actions = todo.iter().map(|&c| shard::roll_shard_fault(c, generation)).collect();

    let sweep = sweep_runtime(&config, workers, !a.has("no-cache"));
    let mut sink = ShardFaultSink {
        inner: FileJournal::new(file, halt_after, throttle_ms),
        header_pending: !replay.has_header,
        actions,
    };
    shard::run_shard(&sweep, lease, &replay, &mut sink).map_err(ArgError)
}

/// One worker-count row of the bench sweep table.
#[derive(serde::Serialize)]
struct BenchRun {
    workers: u64,
    cold_secs: f64,
    warm_secs: f64,
    cold_cells_per_sec: f64,
    warm_cells_per_sec: f64,
    warm_cold_speedup: f64,
    /// Work-memo hit rate during the warm pass — deterministic (a count
    /// ratio, not a timing), so the regression gate can hold it tight.
    warm_work_hit_rate: f64,
}

/// One matrix's worth of bench rows.
#[derive(serde::Serialize)]
struct BenchSection {
    matrix_cells: u64,
    runs: Vec<BenchRun>,
}

/// LP kernel micro-benchmark.
#[derive(serde::Serialize)]
struct LpBench {
    cold_solves_per_sec: f64,
    cached_solves_per_sec: f64,
    /// Deterministic: (N-1)/N for N same-fingerprint solves.
    hit_rate: f64,
}

/// BDD kernel micro-benchmark.
#[derive(serde::Serialize)]
struct BddBench {
    applies_per_sec: f64,
}

/// One rung of the `lp_scale` ladder: the sparse-LU revised simplex
/// vs the dense tableau solver on an NCFlow-style MCF instance.
#[derive(serde::Serialize)]
struct LpScaleRow {
    scale: String,
    nodes: u64,
    commodities: u64,
    lp_rows: u64,
    lp_cols: u64,
    revised_secs: f64,
    revised_iterations: u64,
    /// `None` when the dense solver is skipped (the 100× rung, where
    /// its cubic tableau is intractable).
    dense_secs: Option<f64>,
    dense_over_revised: Option<f64>,
    /// Deterministic invariant, not a timing: whenever both solvers
    /// run, their objectives must agree to relative 1e-6.
    objectives_match: bool,
}

/// One shard-count row of the sharded-sweep bench.
#[derive(serde::Serialize)]
struct ShardBenchRun {
    shards: u64,
    secs: f64,
    cells_per_sec: f64,
    /// Deterministic invariant, not a timing: the merged journal must
    /// be byte-identical to the serial journal.
    merge_identical: bool,
}

/// The partitioned fat-tree DPV bench: serial vs partitioned-parallel
/// verification throughput on one seeded fabric.
#[derive(serde::Serialize)]
struct DpvScaleBench {
    k: u64,
    devices: u64,
    dests: u64,
    link_down: u64,
    serial_dests_per_sec: f64,
    parallel_dests_per_sec: f64,
    parallel_speedup: f64,
    /// Deterministic invariant, not a timing: the partitioned verdict
    /// stream must be byte-identical to the serial one.
    verdict_identical: bool,
}

/// The full `netrepro bench` output (`BENCH_6.json`).
#[derive(serde::Serialize)]
struct BenchReport {
    id: String,
    caption: String,
    cache_scheme: String,
    sections: std::collections::BTreeMap<String, BenchSection>,
    sweep_shards: Vec<ShardBenchRun>,
    dpv_scale: DpvScaleBench,
    lp: LpBench,
    lp_scale: Vec<LpScaleRow>,
    bdd: BddBench,
}

/// The full experiment matrix the paper's validation loop sweeps:
/// 4 systems × 3 styles × 28 seeds × 4 profiles = 1344 cells.
fn bench_full_config() -> SweepConfig {
    SweepConfig {
        systems: vec![
            TargetSystem::NcFlow,
            TargetSystem::Arrow,
            TargetSystem::ApKeep,
            TargetSystem::ApVerifier,
        ],
        styles: vec![
            PromptStyle::Monolithic,
            PromptStyle::ModularText,
            PromptStyle::ModularPseudocode,
        ],
        seeds: (0..28).collect(),
        profiles: vec![
            FaultProfile::None,
            FaultProfile::Light,
            FaultProfile::Heavy,
            FaultProfile::Chaos,
        ],
        scales: vec![harness::TopoScale::Paper],
        limits: TaskLimits::default(),
    }
}

/// A 112-cell matrix for CI: small enough to run on every push, varied
/// enough (two systems, two profiles) to exercise the same paths, and
/// large enough that its timings are not pure thread-spawn noise.
fn bench_quick_config() -> SweepConfig {
    SweepConfig {
        systems: vec![TargetSystem::RockPaperScissors, TargetSystem::ApVerifier],
        styles: vec![PromptStyle::ModularText],
        seeds: (0..28).collect(),
        profiles: vec![FaultProfile::None, FaultProfile::Heavy],
        scales: vec![harness::TopoScale::Paper],
        limits: TaskLimits::default(),
    }
}

/// Cold-then-warm timing of one matrix at one worker count, sharing one
/// memo between the two passes.
fn bench_sweep(config: &SweepConfig, workers: usize) -> Result<BenchRun, ArgError> {
    let gate = || -> harness::GateFn {
        Box::new(|spec, arts| {
            let (report, _) = analysis::gate::gate_artifacts(spec, arts);
            analysis::gate::static_gate(&report)
        })
    };
    let memo = CellMemo::shared();
    let cells = config.total_cells() as f64;

    let sweep = Sweep::new(config.clone())
        .with_workers(workers)
        .with_gate(gate())
        .with_cache(std::sync::Arc::clone(&memo));
    let t0 = std::time::Instant::now();
    sweep.run(&mut harness::MemoryJournal::new()).map_err(ArgError)?;
    let cold_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let after_cold = memo.work_stats();

    // The warm pass is tiny (microseconds per cell), so a single
    // timing is mostly scheduler noise — take the best of three.
    let mut warm_secs = f64::INFINITY;
    for _ in 0..3 {
        let sweep = Sweep::new(config.clone())
            .with_workers(workers)
            .with_gate(gate())
            .with_cache(std::sync::Arc::clone(&memo));
        let t0 = std::time::Instant::now();
        sweep.run(&mut harness::MemoryJournal::new()).map_err(ArgError)?;
        warm_secs = warm_secs.min(t0.elapsed().as_secs_f64().max(1e-9));
    }
    let after_warm = memo.work_stats();

    let hits = after_warm.hits - after_cold.hits;
    let lookups = hits + (after_warm.misses - after_cold.misses);
    Ok(BenchRun {
        workers: workers as u64,
        cold_secs,
        warm_secs,
        cold_cells_per_sec: cells / cold_secs,
        warm_cells_per_sec: cells / warm_secs,
        warm_cold_speedup: cold_secs / warm_secs,
        warm_work_hit_rate: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
    })
}

/// A small LP whose solve cost is representative of the per-commodity
/// subproblems NCFlow's R2 phase issues.
fn bench_lp_problem() -> netrepro_lp::Problem {
    use netrepro_lp::{Problem, Sense};
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> =
        (0..8).map(|i| p.add_var(&format!("x{i}"), 0.0, 10.0, 1.0 + 0.25 * i as f64)).collect();
    for w in vars.windows(2) {
        p.add_le(&[(w[0], 1.0), (w[1], 2.0)], 12.0);
    }
    let all: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
    p.add_le(&all, 40.0);
    p
}

fn bench_lp() -> Result<LpBench, ArgError> {
    use netrepro_lp::fallback::FallbackSolver;
    const N: u32 = 500;
    let problem = bench_lp_problem();

    let solver = RevisedSimplex::default();
    let t0 = std::time::Instant::now();
    for _ in 0..N {
        solver.solve(&problem).map_err(|e| ArgError(format!("lp bench: {e}")))?;
    }
    let cold = t0.elapsed().as_secs_f64().max(1e-9);

    let cached =
        FallbackSolver::new(RevisedSimplex::default(), DenseSimplex::default()).with_cache();
    let t0 = std::time::Instant::now();
    for _ in 0..N {
        cached.solve(&problem).map_err(|e| ArgError(format!("lp bench: {e}")))?;
    }
    let warm = t0.elapsed().as_secs_f64().max(1e-9);
    let (hits, misses) = cached.cache_stats().unwrap_or((0, 0));
    Ok(LpBench {
        cold_solves_per_sec: f64::from(N) / cold,
        cached_solves_per_sec: f64::from(N) / warm,
        hit_rate: if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 },
    })
}

/// The `lp_scale` ladder (see `core::validate::lp_scale_specs`):
/// revised at every rung, dense only where tractable, objectives
/// cross-checked whenever both run. `quick` drops the revised-only
/// 100× rung so the CI gate stays fast; the 10× rung — where the ≥5×
/// speedup floor is enforced — runs in both modes.
fn bench_lp_scale(quick: bool) -> Result<Vec<LpScaleRow>, ArgError> {
    use netrepro_core::validate::{lp_scale_instance, lp_scale_specs};
    use netrepro_te::mcf::solve_mcf;
    let mut rows = Vec::new();
    for spec in lp_scale_specs() {
        if quick && !spec.run_dense {
            continue;
        }
        let inst = lp_scale_instance(&spec);
        let t0 = std::time::Instant::now();
        let revised = solve_mcf(&inst, &RevisedSimplex::default())
            .map_err(|e| ArgError(format!("lp_scale {} revised: {e}", spec.label)))?;
        let revised_secs = t0.elapsed().as_secs_f64().max(1e-9);
        let (dense_secs, dense_over_revised, objectives_match) = if spec.run_dense {
            let t1 = std::time::Instant::now();
            let dense = solve_mcf(&inst, &DenseSimplex::default())
                .map_err(|e| ArgError(format!("lp_scale {} dense: {e}", spec.label)))?;
            let secs = t1.elapsed().as_secs_f64().max(1e-9);
            let rel = (dense.total_flow - revised.total_flow).abs()
                / revised.total_flow.abs().max(1.0);
            (Some(secs), Some(secs / revised_secs), rel <= 1e-6)
        } else {
            (None, None, true)
        };
        rows.push(LpScaleRow {
            scale: spec.label.to_string(),
            nodes: spec.nodes as u64,
            commodities: spec.commodities as u64,
            lp_rows: inst.graph.num_edges() as u64 + spec.commodities as u64,
            lp_cols: (spec.commodities * spec.paths) as u64,
            revised_secs,
            revised_iterations: revised.lp_iterations,
            dense_secs,
            dense_over_revised,
            objectives_match,
        });
    }
    Ok(rows)
}

fn bench_bdd() -> BddBench {
    use netrepro_bdd::BddManager;
    const VARS: u32 = 24;
    const ROUNDS: u32 = 200;
    let mut m = BddManager::new(VARS, EngineProfile::Cached);
    let t0 = std::time::Instant::now();
    let mut ops = 0u64;
    for round in 0..ROUNDS {
        let mut acc = m.var(round % VARS);
        for v in 0..VARS {
            let x = m.var(v);
            acc = if v % 2 == 0 { m.and(acc, x) } else { m.or(acc, x) };
            let n = m.not(acc);
            acc = m.or(acc, n);
            ops += 3;
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    BddBench { applies_per_sec: ops as f64 / secs }
}

/// Partitioned fat-tree DPV: one churned k=8 fabric, all 128 host
/// destinations, serial vs P=4/W=4 — plus the byte-identity gate the
/// timing rides on.
fn bench_dpv_scale() -> Result<DpvScaleBench, ArgError> {
    use netrepro_core::dpv_scale::{run_spec, DpvScaleSpec};
    let spec = DpvScaleSpec { link_down: 6, ..DpvScaleSpec::new(8, 2023) };
    let t0 = std::time::Instant::now();
    let serial = run_spec(&spec).map_err(|e| ArgError(format!("dpv_scale bench: {e}")))?;
    let serial_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let par_spec = DpvScaleSpec { partitions: 4, workers: 4, ..spec };
    let t1 = std::time::Instant::now();
    let parallel = run_spec(&par_spec).map_err(|e| ArgError(format!("dpv_scale bench: {e}")))?;
    let par_secs = t1.elapsed().as_secs_f64().max(1e-9);
    Ok(DpvScaleBench {
        k: spec.k as u64,
        devices: serial.devices as u64,
        dests: serial.queried as u64,
        link_down: spec.link_down as u64,
        serial_dests_per_sec: serial.queried as f64 / serial_secs,
        parallel_dests_per_sec: parallel.queried as f64 / par_secs,
        parallel_speedup: serial_secs / par_secs,
        verdict_identical: parallel.rendered == serial.rendered,
    })
}

/// Relative closeness for the regression gate's ratio metrics.
fn within_tolerance(current: f64, baseline: f64, tol: f64) -> bool {
    if baseline.abs() < 1e-12 {
        return current.abs() < 1e-12;
    }
    ((current - baseline) / baseline).abs() <= tol
}

/// Compare this run's *ratio* metrics against a committed baseline.
/// Hit rates are count ratios — deterministic per matrix — so ±20% is
/// generous; raw throughput and speedups are machine-dependent and
/// only gated by the speedup floor, not against the baseline.
fn bench_check(current: &BenchReport, baseline: &serde_json::Value) -> Result<(), ArgError> {
    const TOL: f64 = 0.20;
    const SPEEDUP_FLOOR: f64 = 1.5;
    /// Revised-vs-dense floor on the 10× `lp_scale` rung: the sparse-LU
    /// kernel must keep the fast-vs-slow solver gap wide open.
    const LP_SCALE_FLOOR: f64 = 5.0;
    let mut failures: Vec<String> = Vec::new();

    for (name, section) in &current.sections {
        let base_runs = &baseline["sections"][name.as_str()]["runs"];
        for run in &section.runs {
            let base = base_runs
                .as_array()
                .and_then(|rs| rs.iter().find(|r| r["workers"].as_u64() == Some(run.workers)));
            let Some(base) = base else { continue };
            let base_hit = base["warm_work_hit_rate"].as_f64().unwrap_or(0.0);
            if !within_tolerance(run.warm_work_hit_rate, base_hit, TOL) {
                failures.push(format!(
                    "{name} workers={}: warm_work_hit_rate {:.3} vs baseline {base_hit:.3}",
                    run.workers, run.warm_work_hit_rate
                ));
            }
            if run.warm_cold_speedup < SPEEDUP_FLOOR {
                failures.push(format!(
                    "{name} workers={}: warm/cold speedup {:.2}x below the {SPEEDUP_FLOOR}x floor",
                    run.workers, run.warm_cold_speedup
                ));
            }
        }
    }
    // The shard rows gate a deterministic invariant of *this* run, not
    // a baseline-relative ratio: the merged journal must equal the
    // serial journal byte-for-byte.
    for run in &current.sweep_shards {
        if !run.merge_identical {
            failures.push(format!(
                "sweep_shards shards={}: merged journal diverged from the serial journal",
                run.shards
            ));
        }
    }
    // Likewise for the partitioned DPV row: byte-identity to the serial
    // verifier is an invariant of this run, independent of any baseline.
    if !current.dpv_scale.verdict_identical {
        failures.push(
            "dpv_scale: partitioned verdict stream diverged from the serial verifier".to_string(),
        );
    }
    // lp_scale gates are invariants of *this* run (objectives must
    // agree wherever both solvers ran; the 10× rung must clear the
    // revised-vs-dense floor), independent of any baseline.
    for row in &current.lp_scale {
        if !row.objectives_match {
            failures.push(format!(
                "lp_scale {}: revised and dense objectives diverged",
                row.scale
            ));
        }
        if row.scale == "10x" {
            match row.dense_over_revised {
                Some(ratio) if ratio < LP_SCALE_FLOOR => failures.push(format!(
                    "lp_scale 10x: dense/revised {ratio:.1}x below the {LP_SCALE_FLOOR}x floor"
                )),
                Some(_) => {}
                None => failures.push(
                    "lp_scale 10x: dense solver row missing, floor not provable".to_string(),
                ),
            }
        }
    }
    let base_lp_hit = baseline["lp"]["hit_rate"].as_f64().unwrap_or(0.0);
    if !within_tolerance(current.lp.hit_rate, base_lp_hit, TOL) {
        failures.push(format!(
            "lp: cache hit rate {:.3} vs baseline {base_lp_hit:.3}",
            current.lp.hit_rate
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(ArgError(format!("bench regression gate failed:\n  {}", failures.join("\n  "))))
    }
}

/// `netrepro bench` — throughput of the memoized sweep runtime plus
/// LP/BDD kernel micro-benchmarks. `--quick` restricts to the 32-cell
/// CI matrix; `--check BASELINE.json` applies the regression gate
/// (±20% on deterministic ratio metrics, 1.5x warm/cold speedup floor).
pub fn bench(a: &Args) -> CmdResult {
    let quick = a.has("quick");
    let mut sections = std::collections::BTreeMap::new();

    let quick_cfg = bench_quick_config();
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        runs.push(bench_sweep(&quick_cfg, workers)?);
    }
    sections.insert(
        "quick".to_string(),
        BenchSection { matrix_cells: quick_cfg.total_cells() as u64, runs },
    );

    if !quick {
        let full_cfg = bench_full_config();
        let mut runs = Vec::new();
        for workers in [1usize, 4] {
            runs.push(bench_sweep(&full_cfg, workers)?);
        }
        sections.insert(
            "full".to_string(),
            BenchSection { matrix_cells: full_cfg.total_cells() as u64, runs },
        );
    }

    // The sharded pipeline over the quick matrix: `run_sharded`
    // exercises partition → per-shard journaling (serde included) →
    // parse-back → merge in-process, against a serial byte baseline.
    let shard_cfg = bench_quick_config();
    let mut serial_sink = harness::MemoryJournal::new();
    sweep_runtime(&shard_cfg, 1, false).run(&mut serial_sink).map_err(ArgError)?;
    let mut sweep_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        let runtime = sweep_runtime(&shard_cfg, 1, false);
        let mut sink = harness::MemoryJournal::new();
        let t0 = std::time::Instant::now();
        shard::run_sharded(&runtime, shards, &mut sink).map_err(ArgError)?;
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        sweep_shards.push(ShardBenchRun {
            shards: shards as u64,
            secs,
            cells_per_sec: shard_cfg.total_cells() as f64 / secs,
            merge_identical: sink.text() == serial_sink.text(),
        });
    }

    let report = BenchReport {
        id: "bench_7".to_string(),
        caption: "cold vs warm sweep throughput, sharded-merge pipeline, solver-kernel \
                  micro-benchmarks, and the lp_scale revised-vs-dense ladder"
            .to_string(),
        cache_scheme: netrepro_core::cache::SCHEME.to_string(),
        sections,
        sweep_shards,
        dpv_scale: bench_dpv_scale()?,
        lp: bench_lp()?,
        lp_scale: bench_lp_scale(quick)?,
        bdd: bench_bdd(),
    };

    let rendered = serde_json::to_string_pretty(&report)
        .map_err(|e| ArgError(format!("render bench report: {e}")))?;
    if let Some(out) = a.get("out") {
        std::fs::write(out, &rendered).map_err(|e| ArgError(format!("{out}: {e}")))?;
    }
    if a.has("json") {
        println!("{rendered}");
    } else {
        for (name, s) in &report.sections {
            println!("{name} matrix ({} cells):", s.matrix_cells);
            for r in &s.runs {
                println!(
                    "  workers {}: cold {:>8.1} cells/s, warm {:>10.1} cells/s \
                     ({:.1}x, warm hit rate {:.3})",
                    r.workers,
                    r.cold_cells_per_sec,
                    r.warm_cells_per_sec,
                    r.warm_cold_speedup,
                    r.warm_work_hit_rate
                );
            }
        }
        for r in &report.sweep_shards {
            println!(
                "shards {}: {:>8.1} cells/s (merge identical: {})",
                r.shards, r.cells_per_sec, r.merge_identical
            );
        }
        println!(
            "dpv_scale k={} ({} devices): {:>6.1} dests/s serial, {:>6.1} dests/s at P=4 \
             ({:.2}x, verdicts identical: {})",
            report.dpv_scale.k,
            report.dpv_scale.devices,
            report.dpv_scale.serial_dests_per_sec,
            report.dpv_scale.parallel_dests_per_sec,
            report.dpv_scale.parallel_speedup,
            report.dpv_scale.verdict_identical
        );
        println!(
            "lp: {:.0} solves/s cold, {:.0} solves/s cached (hit rate {:.3})",
            report.lp.cold_solves_per_sec, report.lp.cached_solves_per_sec, report.lp.hit_rate
        );
        for r in &report.lp_scale {
            match (r.dense_secs, r.dense_over_revised) {
                (Some(d), Some(ratio)) => println!(
                    "lp_scale {}: revised {:.3}s, dense {:.3}s ({:.1}x, objectives match: {})",
                    r.scale, r.revised_secs, d, ratio, r.objectives_match
                ),
                _ => println!(
                    "lp_scale {}: revised {:.3}s ({} iterations, dense skipped)",
                    r.scale, r.revised_secs, r.revised_iterations
                ),
            }
        }
        println!("bdd: {:.0} applies/s", report.bdd.applies_per_sec);
    }

    if let Some(path) = a.get("check") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read baseline {path}: {e}")))?;
        let baseline: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| ArgError(format!("{path}: bad JSON: {e}")))?;
        bench_check(&report, &baseline)?;
        println!("bench regression gate passed against {path}");
    }
    Ok(())
}

/// `netrepro rps serve|play`
pub fn rps(a: &Args) -> CmdResult {
    let addr = a.get("addr").unwrap_or("127.0.0.1:4444").to_string();
    match a.pos(1) {
        Some("serve") => {
            let server = netrepro_rps::RpsServer::bind(&addr[..])
                .map_err(|e| ArgError(format!("bind {addr}: {e}")))?;
            println!("serving rock-paper-scissors on {addr} (ctrl-c to stop)");
            server.serve_forever().map_err(|e| ArgError(e.to_string()))
        }
        Some("play") => {
            let moves = a.get("moves").unwrap_or("RPSRPS");
            let mut client = netrepro_rps::RpsClient::connect(&addr[..])
                .map_err(|e| ArgError(format!("connect {addr}: {e}")))?;
            let (mut w, mut l, mut dr) = (0, 0, 0);
            for ch in moves.chars() {
                let m = netrepro_rps::Move::parse(&ch.to_string())
                    .ok_or_else(|| ArgError(format!("bad move '{ch}' (use R/P/S)")))?;
                let r = client.play(m).map_err(|e| ArgError(e.to_string()))?;
                match r.outcome {
                    netrepro_rps::Outcome::Win => w += 1,
                    netrepro_rps::Outcome::Lose => l += 1,
                    netrepro_rps::Outcome::Draw => dr += 1,
                }
                println!(
                    "round {}: {} vs {} -> {:?}",
                    r.round,
                    r.you.letter(),
                    r.server.letter(),
                    r.outcome
                );
            }
            let n = client.disconnect().map_err(|e| ArgError(e.to_string()))?;
            println!("{w} wins / {l} losses / {dr} draws over {n} rounds");
            Ok(())
        }
        _ => Err(ArgError("rps needs a mode: serve|play".into())),
    }
}

/// The daemon's per-job runtime, wired exactly like the one-shot
/// sweep's (same gate, and the one warm memo shared across every
/// request) — the CLI-side half of the determinism contract: a job
/// submitted over the wire runs through the identical pipeline as
/// `netrepro sweep`, so its journal bytes cannot depend on the path.
fn serve_factory(cache: bool) -> netrepro_serve::RuntimeFactory {
    let memo = if cache { Some(CellMemo::shared()) } else { None };
    std::sync::Arc::new(move |config: &SweepConfig| {
        let mut runtime = Sweep::new(config.clone()).with_gate(Box::new(|spec, arts| {
            let (report, _) = analysis::gate::gate_artifacts(spec, arts);
            analysis::gate::static_gate(&report)
        }));
        if let Some(memo) = &memo {
            runtime = runtime.with_cache(std::sync::Arc::clone(memo));
        }
        runtime
    })
}

/// `netrepro serve` — the persistent, multi-tenant sweep daemon.
/// Recovers its write-ahead ledger from `--dir` on startup (resuming
/// any job that was in flight when the last process died), then
/// accepts job verbs over TCP. There is no signal handler (the
/// workspace forbids unsafe code): stop it with SIGKILL/SIGTERM —
/// the ledger makes that safe — or drain it first via
/// `netrepro submit --drain`.
/// [`JobStorage`](netrepro_serve::JobStorage) wrapper that sleeps
/// after every journal append — the same crash-window widener as
/// `sweep --throttle-ms`, so the kill/resume CI job can SIGKILL the
/// daemon reliably mid-matrix. Pacing never touches the bytes.
struct ThrottledStorage {
    inner: netrepro_serve::FileStorage,
    throttle_ms: u64,
}

struct ThrottledSink {
    inner: Box<dyn JournalSink + Send>,
    throttle_ms: u64,
}

impl JournalSink for ThrottledSink {
    fn append(&mut self, line: &str) -> Result<(), String> {
        self.inner.append(line)?;
        std::thread::sleep(std::time::Duration::from_millis(self.throttle_ms));
        Ok(())
    }
}

impl netrepro_serve::JobStorage for ThrottledStorage {
    fn ledger_load(&self) -> Result<String, String> {
        self.inner.ledger_load()
    }

    fn ledger_truncate(&self, valid_bytes: u64) -> Result<(), String> {
        self.inner.ledger_truncate(valid_bytes)
    }

    fn ledger_append(&self, line: &str) -> Result<(), String> {
        self.inner.ledger_append(line)
    }

    fn journal_load(&self, job: u64) -> Result<String, String> {
        self.inner.journal_load(job)
    }

    fn journal_truncate(&self, job: u64, valid_bytes: u64) -> Result<(), String> {
        self.inner.journal_truncate(job, valid_bytes)
    }

    fn journal_sink(&self, job: u64) -> Result<Box<dyn JournalSink + Send>, String> {
        let inner = self.inner.journal_sink(job)?;
        Ok(Box::new(ThrottledSink { inner, throttle_ms: self.throttle_ms }))
    }
}

pub fn serve(a: &Args) -> CmdResult {
    let addr = a.get("addr").unwrap_or("127.0.0.1:4545").to_string();
    let dir = a.get("dir").unwrap_or("results/serve");
    let defaults = netrepro_serve::SchedConfig::default();
    let cfg = netrepro_serve::SchedConfig {
        workers: sweep_workers_from(a)?,
        queue_cap: a.get_or("queue-cap", defaults.queue_cap)?,
        tenant_quota: a.get_or("tenant-quota", defaults.tenant_quota)?,
        breaker_threshold: a.get_or("job-breaker", defaults.breaker_threshold)?,
        quantum: a.get_or("quantum", defaults.quantum)?,
    };
    let file_storage = netrepro_serve::FileStorage::open(dir).map_err(ArgError)?;
    let throttle_ms: u64 = a.get_or("throttle-ms", 0)?;
    let storage: std::sync::Arc<dyn netrepro_serve::JobStorage> = if throttle_ms > 0 {
        std::sync::Arc::new(ThrottledStorage { inner: file_storage, throttle_ms })
    } else {
        std::sync::Arc::new(file_storage)
    };
    let factory = serve_factory(!a.has("no-cache"));
    let sched = std::sync::Arc::new(
        netrepro_serve::Scheduler::recover(cfg, factory, storage).map_err(ArgError)?,
    );
    let (queued, running, done) = sched.health();
    let _workers = sched.start_workers();
    let daemon = netrepro_serve::Daemon::bind(&addr[..], sched).map_err(ArgError)?;
    println!(
        "serving sweep jobs on {addr} (state in {dir}; recovered {queued} queued, \
         {running} running, {done} finished)"
    );
    daemon.serve_forever().map_err(ArgError)
}

/// Render one wire response for humans.
fn print_job_response(resp: &netrepro_rps::JobResponse) {
    print!("{}", resp.wire());
}

/// `netrepro submit` — client side of the job protocol. By default
/// submits one sweep job built from the same matrix flags as
/// `netrepro sweep` (or a raw `--spec` token) and prints the job id;
/// `--wait` polls until the job is terminal and fetches the report.
/// The control verbs (`--status`, `--results`, `--cancel`,
/// `--health`, `--drain`) talk to a running daemon without
/// submitting anything.
pub fn submit(a: &Args) -> CmdResult {
    let addr = a.get("addr").unwrap_or("127.0.0.1:4545");
    let mut client = netrepro_serve::JobClient::connect(addr)
        .map_err(|e| ArgError(format!("connect {addr}: {e}")))?;
    let wire_err = |e: netrepro_rps::ProtocolError| ArgError(e.to_string());

    if a.has("status") {
        print_job_response(&client.status(a.require("status")?).map_err(wire_err)?);
        return Ok(());
    }
    if a.has("cancel") {
        print_job_response(&client.cancel(a.require("cancel")?).map_err(wire_err)?);
        return Ok(());
    }
    if a.has("health") {
        print_job_response(&client.health().map_err(wire_err)?);
        return Ok(());
    }
    if a.has("drain") {
        print_job_response(&client.drain().map_err(wire_err)?);
        return Ok(());
    }
    if a.has("results") {
        let id = a.require("results")?;
        return match client.results(id).map_err(wire_err)? {
            Ok(payload) => emit_job_report(a, &payload),
            Err(other) => Err(ArgError(format!("job {id} has no results yet: {}", other.wire().trim_end()))),
        };
    }

    let tenant = a.get("tenant").unwrap_or("cli");
    let nonce: u64 = a.get_or("nonce", 0)?;
    let spec_token = match a.get("spec") {
        Some(s) => s.to_string(),
        None => {
            let config = sweep_config_from(a)?;
            let clock_limit: u64 = a.get_or("clock", 0)?;
            netrepro_serve::JobSpec { config, clock_limit }.wire()
        }
    };
    let id = match client.submit(tenant, nonce, &spec_token).map_err(wire_err)? {
        netrepro_rps::JobResponse::Accepted(id) => id,
        other => return Err(ArgError(format!("daemon refused the job: {}", other.wire().trim_end()))),
    };
    eprintln!("job {id} accepted (tenant {tenant}, nonce {nonce})");
    if !a.has("wait") {
        println!("{id}");
        return Ok(());
    }
    loop {
        match client.status(id).map_err(wire_err)? {
            netrepro_rps::JobResponse::State { state, journaled, total, .. } => {
                if state == netrepro_rps::JobState::Done {
                    eprintln!("job {id} done ({journaled}/{total} cells)");
                    break;
                }
                if !state.is_live() {
                    return Err(ArgError(format!("job {id} ended {}", state.wire())));
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            other => return Err(ArgError(format!("bad status reply: {}", other.wire().trim_end()))),
        }
    }
    match client.results(id).map_err(wire_err)? {
        Ok(payload) => emit_job_report(a, &payload),
        Err(other) => Err(ArgError(format!("results refused: {}", other.wire().trim_end()))),
    }
}

/// `--out`/stdout tail for a fetched report payload (already JSON).
fn emit_job_report(a: &Args, payload: &str) -> CmdResult {
    if let Some(out) = a.get("out") {
        std::fs::write(out, payload).map_err(|e| ArgError(format!("{out}: {e}")))?;
        return Ok(());
    }
    println!("{payload}");
    Ok(())
}
