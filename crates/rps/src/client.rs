//! The RPS client.

use crate::protocol::{Move, Outcome, Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One round's result from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundResult {
    /// The client's move.
    pub you: Move,
    /// The server's move.
    pub server: Move,
    /// Outcome for the client.
    pub outcome: Outcome,
    /// 1-based round number.
    pub round: u64,
}

/// A connected client.
#[derive(Debug)]
pub struct RpsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RpsClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<RpsClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(RpsClient { writer, reader: BufReader::new(stream) })
    }

    /// Play one round.
    pub fn play(&mut self, m: Move) -> io::Result<RoundResult> {
        self.writer.write_all(Request::Play(m).wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Result(you, server, outcome, round)) => {
                Ok(RoundResult { you, server, outcome, round })
            }
            Some(Response::Err(e)) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?} to MOVE"),
            )),
        }
    }

    /// Disconnect; returns rounds played per the server.
    pub fn disconnect(mut self) -> io::Result<u64> {
        self.writer.write_all(Request::Disconnect.wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Bye(n)) => Ok(n),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?} to DISCONNECT"),
            )),
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RpsServer;

    fn with_server(f: impl FnOnce(std::net::SocketAddr)) {
        let server = RpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let hs = server.serve_connections(1).unwrap();
            for h in hs {
                h.join().unwrap().unwrap();
            }
        });
        f(addr);
        t.join().unwrap();
    }

    #[test]
    fn full_session_round_trip() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            let r1 = c.play(Move::Paper).unwrap();
            assert_eq!(r1.outcome, Outcome::Win); // server opens with Rock
            assert_eq!(r1.round, 1);
            let r2 = c.play(Move::Paper).unwrap();
            assert_eq!(r2.outcome, Outcome::Draw); // server plays Paper
            let played = c.disconnect().unwrap();
            assert_eq!(played, 2);
        });
    }

    #[test]
    fn outcome_matches_local_rules() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            for (i, m) in [Move::Rock, Move::Scissors, Move::Rock].iter().enumerate() {
                let r = c.play(*m).unwrap();
                let expect = m.against(Move::from_index(i as u64));
                assert_eq!(r.outcome, expect);
            }
            c.disconnect().unwrap();
        });
    }
}
