//! The RPS client.

use crate::error::{read_frame, ProtocolError};
use crate::protocol::{Move, Outcome, Request, Response};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One round's result from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundResult {
    /// The client's move.
    pub you: Move,
    /// The server's move.
    pub server: Move,
    /// Outcome for the client.
    pub outcome: Outcome,
    /// 1-based round number.
    pub round: u64,
}

/// A connected client.
#[derive(Debug)]
pub struct RpsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RpsClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RpsClient, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(RpsClient { writer, reader: BufReader::new(stream) })
    }

    /// Connect, retrying with exponential backoff: after a failed
    /// attempt the client sleeps `base`, then `2*base`, `4*base`, …
    /// for up to `retries` additional attempts. This is the absorption
    /// path for a server that is still coming up (or was restarted
    /// under the fault injector).
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs + Clone,
        retries: u32,
        base: Duration,
    ) -> Result<RpsClient, ProtocolError> {
        let mut delay = base;
        let mut attempt = 0;
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if attempt >= retries => return Err(e),
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                    attempt += 1;
                }
            }
        }
    }

    /// Arm read/write deadlines on the socket (`None` disarms). A
    /// blocked read or write past its deadline surfaces as
    /// [`ProtocolError::Timeout`] instead of hanging the session.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ProtocolError> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(read)?;
        stream.set_write_timeout(write)?;
        Ok(())
    }

    /// Play one round.
    pub fn play(&mut self, m: Move) -> Result<RoundResult, ProtocolError> {
        self.writer.write_all(Request::Play(m).wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Result(you, server, outcome, round)) => {
                Ok(RoundResult { you, server, outcome, round })
            }
            Some(Response::Err(e)) => Err(ProtocolError::ServerError(e)),
            Some(other) => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "RESULT" })
            }
            None => Err(ProtocolError::Malformed(line)),
        }
    }

    /// Disconnect; returns rounds played per the server.
    pub fn disconnect(mut self) -> Result<u64, ProtocolError> {
        self.writer.write_all(Request::Disconnect.wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Bye(n)) => Ok(n),
            Some(other) => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "BYE" })
            }
            None => Err(ProtocolError::Malformed(line)),
        }
    }

    fn read_line(&mut self) -> Result<String, ProtocolError> {
        read_frame(&mut self.reader)?.ok_or(ProtocolError::PeerClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RpsServer;
    use std::io::Read;
    use std::net::TcpListener;

    fn with_server(f: impl FnOnce(std::net::SocketAddr)) {
        let server = RpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let hs = server.serve_connections(1).unwrap();
            for h in hs {
                h.join().unwrap().unwrap();
            }
        });
        f(addr);
        t.join().unwrap();
    }

    #[test]
    fn full_session_round_trip() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            let r1 = c.play(Move::Paper).unwrap();
            assert_eq!(r1.outcome, Outcome::Win); // server opens with Rock
            assert_eq!(r1.round, 1);
            let r2 = c.play(Move::Paper).unwrap();
            assert_eq!(r2.outcome, Outcome::Draw); // server plays Paper
            let played = c.disconnect().unwrap();
            assert_eq!(played, 2);
        });
    }

    #[test]
    fn outcome_matches_local_rules() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            for (i, m) in [Move::Rock, Move::Scissors, Move::Rock].iter().enumerate() {
                let r = c.play(*m).unwrap();
                let expect = m.against(Move::from_index(i as u64));
                assert_eq!(r.outcome, expect);
            }
            c.disconnect().unwrap();
        });
    }

    #[test]
    fn silent_server_times_out_instead_of_hanging() {
        // A listener that accepts and then says nothing — the injected
        // "stalled peer" fault.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink); // hold the socket open until the client gives up
        });
        let mut c = RpsClient::connect(addr).unwrap();
        c.set_timeouts(Some(Duration::from_millis(50)), None).unwrap();
        match c.play(Move::Rock) {
            Err(ProtocolError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        drop(c);
        t.join().unwrap();
    }

    #[test]
    fn backoff_connect_gives_up_with_typed_error() {
        // Grab an ephemeral port, then release it so nothing listens.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = std::time::Instant::now();
        let err =
            RpsClient::connect_with_backoff(dead, 2, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "got {err:?}");
        // Two retries: 10ms + 20ms of backoff at minimum.
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn backoff_connect_succeeds_immediately_when_up() {
        with_server(|addr| {
            let c = RpsClient::connect_with_backoff(addr, 3, Duration::from_millis(10)).unwrap();
            assert_eq!(c.disconnect().unwrap(), 0);
        });
    }
}
