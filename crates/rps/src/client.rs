//! The RPS client.

use crate::error::{read_frame, ProtocolError};
use crate::protocol::{Move, Outcome, Request, Response};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Ceiling on a single reconnect backoff sleep. The schedule is the
/// same capped-exponential shape as the sweep harness's
/// `TaskLimits::backoff` (`min(base << attempt, cap)`), in wall-time
/// units (this crate deliberately has no dependency on the harness).
pub const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// The capped-exponential backoff schedule: `min(base * 2^attempt,
/// cap)`, with the same overflow guard as `TaskLimits::backoff`
/// (attempts past the doubling range saturate at `cap`).
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
    base.saturating_mul(factor).min(cap)
}

/// One round's result from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundResult {
    /// The client's move.
    pub you: Move,
    /// The server's move.
    pub server: Move,
    /// Outcome for the client.
    pub outcome: Outcome,
    /// 1-based round number.
    pub round: u64,
}

/// A connected client.
#[derive(Debug)]
pub struct RpsClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RpsClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RpsClient, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(RpsClient { writer, reader: BufReader::new(stream) })
    }

    /// Connect, retrying with capped exponential backoff: after a
    /// failed attempt the client sleeps [`backoff_delay`]`(base,
    /// BACKOFF_CAP, attempt)` — `base`, `2*base`, `4*base`, … up to
    /// [`BACKOFF_CAP`] — for up to `retries` additional attempts.
    /// This is the absorption path for a server that is still coming
    /// up (or was restarted under the fault injector).
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs + Clone,
        retries: u32,
        base: Duration,
    ) -> Result<RpsClient, ProtocolError> {
        Self::connect_with_backoff_observed(addr, retries, base, |_, _| {})
    }

    /// [`connect_with_backoff`](Self::connect_with_backoff) with an
    /// observer called before each sleep with `(attempt, delay)`.
    /// Tests use it to assert the schedule by *counting attempts*
    /// instead of timing sleeps, and to bring a server up after a
    /// chosen number of failures.
    pub fn connect_with_backoff_observed(
        addr: impl ToSocketAddrs + Clone,
        retries: u32,
        base: Duration,
        mut observe: impl FnMut(u32, Duration),
    ) -> Result<RpsClient, ProtocolError> {
        let mut attempt = 0;
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if attempt >= retries => return Err(e),
                Err(_) => {
                    let delay = backoff_delay(base, BACKOFF_CAP, attempt);
                    observe(attempt, delay);
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }

    /// Arm read/write deadlines on the socket (`None` disarms). A
    /// blocked read or write past its deadline surfaces as
    /// [`ProtocolError::Timeout`] instead of hanging the session.
    pub fn set_timeouts(
        &self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ProtocolError> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(read)?;
        stream.set_write_timeout(write)?;
        Ok(())
    }

    /// Play one round.
    pub fn play(&mut self, m: Move) -> Result<RoundResult, ProtocolError> {
        self.writer.write_all(Request::Play(m).wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Result(you, server, outcome, round)) => {
                Ok(RoundResult { you, server, outcome, round })
            }
            Some(Response::Err(e)) => Err(ProtocolError::ServerError(e)),
            Some(other) => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "RESULT" })
            }
            None => Err(ProtocolError::Malformed(line)),
        }
    }

    /// Disconnect; returns rounds played per the server.
    pub fn disconnect(mut self) -> Result<u64, ProtocolError> {
        self.writer.write_all(Request::Disconnect.wire().as_bytes())?;
        let line = self.read_line()?;
        match Response::parse(&line) {
            Some(Response::Bye(n)) => Ok(n),
            Some(other) => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "BYE" })
            }
            None => Err(ProtocolError::Malformed(line)),
        }
    }

    fn read_line(&mut self) -> Result<String, ProtocolError> {
        read_frame(&mut self.reader)?.ok_or(ProtocolError::PeerClosed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RpsServer;
    use std::io::Read;
    use std::net::TcpListener;

    fn with_server(f: impl FnOnce(std::net::SocketAddr)) {
        let server = RpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            for r in server.serve_connections(1).unwrap() {
                r.unwrap();
            }
        });
        f(addr);
        t.join().unwrap();
    }

    #[test]
    fn full_session_round_trip() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            let r1 = c.play(Move::Paper).unwrap();
            assert_eq!(r1.outcome, Outcome::Win); // server opens with Rock
            assert_eq!(r1.round, 1);
            let r2 = c.play(Move::Paper).unwrap();
            assert_eq!(r2.outcome, Outcome::Draw); // server plays Paper
            let played = c.disconnect().unwrap();
            assert_eq!(played, 2);
        });
    }

    #[test]
    fn outcome_matches_local_rules() {
        with_server(|addr| {
            let mut c = RpsClient::connect(addr).unwrap();
            for (i, m) in [Move::Rock, Move::Scissors, Move::Rock].iter().enumerate() {
                let r = c.play(*m).unwrap();
                let expect = m.against(Move::from_index(i as u64));
                assert_eq!(r.outcome, expect);
            }
            c.disconnect().unwrap();
        });
    }

    #[test]
    fn silent_server_times_out_instead_of_hanging() {
        // A listener that accepts and then says nothing — the injected
        // "stalled peer" fault.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink); // hold the socket open until the client gives up
        });
        let mut c = RpsClient::connect(addr).unwrap();
        c.set_timeouts(Some(Duration::from_millis(50)), None).unwrap();
        match c.play(Move::Rock) {
            Err(ProtocolError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        drop(c);
        t.join().unwrap();
    }

    #[test]
    fn backoff_connect_gives_up_with_typed_error() {
        // Grab an ephemeral port, then release it so nothing listens.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = std::time::Instant::now();
        let err =
            RpsClient::connect_with_backoff(dead, 2, Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, ProtocolError::Io(_)), "got {err:?}");
        // Two retries: 10ms + 20ms of backoff at minimum.
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn backoff_connect_succeeds_immediately_when_up() {
        with_server(|addr| {
            let c = RpsClient::connect_with_backoff(addr, 3, Duration::from_millis(10)).unwrap();
            assert_eq!(c.disconnect().unwrap(), 0);
        });
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        // Pure schedule check — no sockets, no sleeping, no wallclock.
        // Mirrors the harness's TaskLimits defaults (base 8, cap 64)
        // in nanosecond units: 8, 16, 32, 64, then pinned at the cap.
        let base = Duration::from_nanos(8);
        let cap = Duration::from_nanos(64);
        let schedule: Vec<u64> =
            (0..6).map(|a| backoff_delay(base, cap, a).as_nanos() as u64).collect();
        assert_eq!(schedule, [8, 16, 32, 64, 64, 64]);
        // The overflow guard: attempts past the doubling range
        // saturate at the cap instead of wrapping.
        assert_eq!(backoff_delay(base, cap, 63), cap);
        assert_eq!(backoff_delay(base, cap, u32::MAX), cap);
    }

    #[test]
    fn backoff_connects_when_the_server_comes_up_late() {
        // Grab an ephemeral port, release it, and only re-bind it once
        // the client has already failed N times. The observer counts
        // attempts (no elapsed-time assertions) and records the delay
        // schedule the client actually used.
        const LATE: u32 = 2; // listener appears after the 3rd failure
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let base = Duration::from_millis(5);
        let mut observed: Vec<(u32, Duration)> = Vec::new();
        let mut late_listener = None;
        let c = RpsClient::connect_with_backoff_observed(dead, 5, base, |attempt, delay| {
            observed.push((attempt, delay));
            if attempt == LATE && late_listener.is_none() {
                // A connect() against a bound listener succeeds even
                // before accept(), so binding here is enough.
                late_listener = Some(TcpListener::bind(dead).unwrap());
            }
        })
        .unwrap();
        drop(c);
        assert!(late_listener.is_some());
        // Exactly LATE+1 failed attempts, each with the capped-
        // exponential delay from the shared schedule.
        let expect: Vec<(u32, Duration)> =
            (0..=LATE).map(|a| (a, backoff_delay(base, BACKOFF_CAP, a))).collect();
        assert_eq!(observed, expect);
        assert_eq!(
            observed.iter().map(|(_, d)| d.as_millis() as u64).collect::<Vec<_>>(),
            [5, 10, 20]
        );
    }
}
