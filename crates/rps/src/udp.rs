//! The UDP variant of the rock-paper-scissors pair.
//!
//! The paper's *prose* describes the motivating example as "a UDP
//! server and client", while its Figure 3 code uses `SOCK_STREAM`.
//! Both are provided; this is the datagram one. The wire protocol is
//! identical to the TCP variant (one request/response line per
//! datagram), and the server tracks per-peer round counters so
//! interleaved clients each get their own game.
//!
//! Datagrams can be dropped *or duplicated*, so the client exposes
//! [`UdpRpsClient::play_with_retry`] and tags every `MOVE` with a
//! per-session nonce (`MOVE R #7`). A retry re-sends the same nonce;
//! the server remembers the last nonce it answered per peer and
//! replays the cached reply for a duplicate instead of advancing the
//! round counter. Without the nonce, a retried datagram whose first
//! copy *was* delivered (only the reply was lost or late) would be
//! scored as two rounds — the client would silently skip a server
//! move and desynchronise its view of the game. Nonce-less `MOVE`s
//! (the TCP wire form) are still accepted and always score a fresh
//! round.

use crate::error::{ProtocolError, MAX_FRAME};
use crate::protocol::{Move, Request, Response};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Split a trailing ` #<nonce>` token off a request line. Lines
/// without one (the TCP wire form) pass through unchanged.
fn split_nonce(line: &str) -> (&str, Option<u64>) {
    if let Some((head, tail)) = line.trim_end().rsplit_once(' ') {
        if let Some(num) = tail.strip_prefix('#') {
            if let Ok(n) = num.parse() {
                return (head, Some(n));
            }
        }
    }
    (line, None)
}

/// A bound UDP server.
#[derive(Debug)]
pub struct UdpRpsServer {
    socket: UdpSocket,
    rounds: HashMap<SocketAddr, u64>,
    /// Per-peer duplicate-suppression window: the last nonce answered
    /// and the exact reply sent for it. A re-delivered datagram with
    /// the same nonce gets this reply again and scores no new round.
    replays: HashMap<SocketAddr, (u64, String)>,
}

impl UdpRpsServer {
    /// Bind to `addr` (port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<UdpRpsServer> {
        Ok(UdpRpsServer {
            socket: UdpSocket::bind(addr)?,
            rounds: HashMap::new(),
            replays: HashMap::new(),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Serve exactly `n` datagrams, then return. (The UDP server has no
    /// connection boundary, so tests and demos drive it by datagram
    /// count; `serve_forever` loops this.) Oversized datagrams get an
    /// `ERR` reply and count toward `n` like any other request.
    pub fn serve_datagrams(&mut self, n: usize) -> io::Result<()> {
        // One byte of headroom past the cap so truncation is detectable.
        let mut buf = [0u8; MAX_FRAME + 1];
        for _ in 0..n {
            let (len, peer) = self.socket.recv_from(&mut buf)?;
            let reply = if len > MAX_FRAME {
                Response::Err("oversized request".into()).wire()
            } else {
                let line = String::from_utf8_lossy(&buf[..len]);
                let (line, nonce) = split_nonce(&line);
                match Request::parse(line) {
                    Some(Request::Play(client_move)) => {
                        if let (Some(n), Some((last, cached))) = (nonce, self.replays.get(&peer)) {
                            if n == *last {
                                // Duplicate delivery of an answered
                                // round: replay, don't advance.
                                self.socket.send_to(cached.as_bytes(), peer)?;
                                continue;
                            }
                        }
                        let round = self.rounds.entry(peer).or_insert(0);
                        *round += 1;
                        let server_move = Move::from_index(*round - 1);
                        let resp = Response::Result(
                            client_move,
                            server_move,
                            client_move.against(server_move),
                            *round,
                        )
                        .wire();
                        if let Some(n) = nonce {
                            self.replays.insert(peer, (n, resp.clone()));
                        }
                        resp
                    }
                    Some(Request::Disconnect) => {
                        let played = self.rounds.remove(&peer).unwrap_or(0);
                        self.replays.remove(&peer);
                        Response::Bye(played).wire()
                    }
                    None => Response::Err("malformed request".into()).wire(),
                }
            };
            self.socket.send_to(reply.as_bytes(), peer)?;
        }
        Ok(())
    }

    /// Serve datagrams until the process dies.
    pub fn serve_forever(&mut self) -> io::Result<()> {
        loop {
            self.serve_datagrams(64)?;
        }
    }
}

/// A UDP client (connected socket; one request/response per datagram).
#[derive(Debug)]
pub struct UdpRpsClient {
    socket: UdpSocket,
    /// Monotone per-session nonce; one per *round*, shared by every
    /// retry of that round so replays are idempotent at the server.
    nonce: u64,
}

impl UdpRpsClient {
    /// Create a client talking to `server`.
    pub fn connect(server: impl ToSocketAddrs) -> Result<UdpRpsClient, ProtocolError> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(server)?;
        socket.set_read_timeout(Some(Duration::from_secs(5)))?;
        Ok(UdpRpsClient { socket, nonce: 0 })
    }

    /// Replace the receive deadline (default 5s).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ProtocolError> {
        self.socket.set_read_timeout(timeout)?;
        Ok(())
    }

    fn round_trip_raw(&mut self, wire: &str) -> Result<Response, ProtocolError> {
        self.socket.send(wire.as_bytes())?;
        let mut buf = [0u8; MAX_FRAME + 1];
        let len = self.socket.recv(&mut buf)?;
        if len > MAX_FRAME {
            return Err(ProtocolError::Oversized { len, cap: MAX_FRAME });
        }
        let line = String::from_utf8_lossy(&buf[..len]).into_owned();
        Response::parse(&line).ok_or(ProtocolError::Malformed(line))
    }

    /// Send one nonce-tagged `MOVE` and wait for its `RESULT`. Every
    /// retry of a round goes through here with the *same* nonce.
    fn play_nonce(
        &mut self,
        m: Move,
        nonce: u64,
    ) -> Result<crate::client::RoundResult, ProtocolError> {
        let wire = format!("MOVE {} #{}\n", m.letter(), nonce);
        match self.round_trip_raw(&wire)? {
            Response::Result(you, server, outcome, round) => {
                Ok(crate::client::RoundResult { you, server, outcome, round })
            }
            Response::Err(e) => Err(ProtocolError::ServerError(e)),
            other => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "RESULT" })
            }
        }
    }

    /// Play one round.
    pub fn play(&mut self, m: Move) -> Result<crate::client::RoundResult, ProtocolError> {
        self.nonce += 1;
        let nonce = self.nonce;
        self.play_nonce(m, nonce)
    }

    /// Play one round, absorbing up to `retries` datagram losses: each
    /// timed-out attempt is re-sent after an exponentially growing
    /// receive deadline (`base`, `2*base`, …). Non-timeout errors are
    /// surfaced immediately. All attempts carry the same nonce, so a
    /// retry whose first copy *was* delivered (only the reply went
    /// missing) replays the answered round instead of scoring a new
    /// one.
    pub fn play_with_retry(
        &mut self,
        m: Move,
        retries: u32,
        base: Duration,
    ) -> Result<crate::client::RoundResult, ProtocolError> {
        self.nonce += 1;
        let nonce = self.nonce;
        let mut deadline = base;
        let mut attempt = 0;
        loop {
            self.set_read_timeout(Some(deadline))?;
            match self.play_nonce(m, nonce) {
                Err(ProtocolError::Timeout) if attempt < retries => {
                    deadline = deadline.saturating_mul(2);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// End the game; returns rounds played.
    pub fn disconnect(mut self) -> Result<u64, ProtocolError> {
        match self.round_trip_raw(&Request::Disconnect.wire())? {
            Response::Bye(n) => Ok(n),
            other => {
                Err(ProtocolError::Unexpected { got: other.wire().trim().to_string(), expected: "BYE" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Outcome;

    #[test]
    fn udp_session_round_trips() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(4).unwrap());
        let mut c = UdpRpsClient::connect(addr).unwrap();
        let r1 = c.play(Move::Paper).unwrap();
        assert_eq!(r1.outcome, Outcome::Win);
        let r2 = c.play(Move::Rock).unwrap();
        assert_eq!(r2.outcome, Outcome::Lose); // server plays Paper
        let r3 = c.play(Move::Rock).unwrap();
        assert_eq!(r3.outcome, Outcome::Win); // server plays Scissors
        assert_eq!(c.disconnect().unwrap(), 3);
        t.join().unwrap();
    }

    #[test]
    fn udp_server_tracks_peers_independently() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(4).unwrap());
        let mut a = UdpRpsClient::connect(addr).unwrap();
        let mut b = UdpRpsClient::connect(addr).unwrap();
        assert_eq!(a.play(Move::Rock).unwrap().round, 1);
        assert_eq!(b.play(Move::Rock).unwrap().round, 1, "peer B must have its own counter");
        assert_eq!(a.play(Move::Rock).unwrap().round, 2);
        assert_eq!(b.play(Move::Rock).unwrap().round, 2);
        t.join().unwrap();
    }

    #[test]
    fn udp_malformed_datagram_gets_err() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(1).unwrap());
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        sock.send(b"JUMP high\n").unwrap();
        let mut buf = [0u8; 128];
        let len = sock.recv(&mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf[..len]).starts_with("ERR"));
        t.join().unwrap();
    }

    #[test]
    fn udp_oversized_datagram_gets_err() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(1).unwrap());
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        let huge = vec![b'A'; MAX_FRAME * 2];
        sock.send(&huge).unwrap();
        let mut buf = [0u8; 128];
        let len = sock.recv(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..len]).trim(), "ERR oversized request");
        t.join().unwrap();
    }

    #[test]
    fn play_with_retry_absorbs_a_dropped_datagram() {
        // Server that ignores the first datagram (the "drop") and
        // serves from the second on.
        let server_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = server_sock.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 512];
            let (_len, _peer) = server_sock.recv_from(&mut buf).unwrap(); // swallow
            let (len, peer) = server_sock.recv_from(&mut buf).unwrap();
            let line = String::from_utf8_lossy(&buf[..len]).into_owned();
            assert!(line.starts_with("MOVE"), "retry must resend the move, got {line:?}");
            let reply = Response::Result(Move::Rock, Move::Rock, Outcome::Draw, 1);
            server_sock.send_to(reply.wire().as_bytes(), peer).unwrap();
        });
        let mut c = UdpRpsClient::connect(addr).unwrap();
        let r = c.play_with_retry(Move::Rock, 3, Duration::from_millis(40)).unwrap();
        assert_eq!(r.outcome, Outcome::Draw);
        t.join().unwrap();
    }

    #[test]
    fn duplicate_datagram_replays_the_round_without_advancing() {
        // Inject a duplicate delivery by hand: the same nonce-tagged
        // MOVE arrives twice (as when a retry races a late original).
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(4).unwrap());
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        let mut buf = [0u8; 128];

        sock.send(b"MOVE R #1\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        let first = String::from_utf8_lossy(&buf[..len]).into_owned();
        assert_eq!(first.trim(), "RESULT R R DRAW 1");

        // The duplicate: byte-identical reply, round counter untouched.
        sock.send(b"MOVE R #1\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        let dup = String::from_utf8_lossy(&buf[..len]).into_owned();
        assert_eq!(dup, first, "duplicate must replay the cached reply");

        // A fresh nonce advances to round 2 (server plays Paper).
        sock.send(b"MOVE P #2\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..len]).trim(), "RESULT P P DRAW 2");

        sock.send(b"DISCONNECT\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..len]).trim(), "BYE 2");
        t.join().unwrap();
    }

    #[test]
    fn retry_reuses_the_nonce_when_the_reply_is_lost() {
        // The bug scenario: the first copy IS delivered but its reply
        // goes missing, so the client retries. The retry must carry
        // the same nonce so the server can recognise the replay.
        let server_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = server_sock.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 512];
            let (len, _peer) = server_sock.recv_from(&mut buf).unwrap();
            let first = String::from_utf8_lossy(&buf[..len]).into_owned();
            // Drop the reply (simulated loss), wait for the retry.
            let (len, peer) = server_sock.recv_from(&mut buf).unwrap();
            let second = String::from_utf8_lossy(&buf[..len]).into_owned();
            assert_eq!(first, second, "retry must replay the identical nonce-tagged frame");
            let reply = Response::Result(Move::Rock, Move::Rock, Outcome::Draw, 1);
            server_sock.send_to(reply.wire().as_bytes(), peer).unwrap();
        });
        let mut c = UdpRpsClient::connect(addr).unwrap();
        let r = c.play_with_retry(Move::Rock, 3, Duration::from_millis(40)).unwrap();
        assert_eq!(r.round, 1);
        t.join().unwrap();
    }

    #[test]
    fn nonceless_moves_still_score_fresh_rounds() {
        // TCP wire form without a nonce: every delivery is a round.
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(2).unwrap());
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        let mut buf = [0u8; 128];
        sock.send(b"MOVE R\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..len]).trim(), "RESULT R R DRAW 1");
        sock.send(b"MOVE R\n").unwrap();
        let len = sock.recv(&mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf[..len]).trim(), "RESULT R P LOSE 2");
        t.join().unwrap();
    }

    #[test]
    fn udp_timeout_is_typed_when_nobody_answers() {
        // Bind a peer socket that never replies.
        let silent = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = silent.local_addr().unwrap();
        let mut c = UdpRpsClient::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        match c.play(Move::Rock) {
            Err(ProtocolError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
