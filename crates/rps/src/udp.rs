//! The UDP variant of the rock-paper-scissors pair.
//!
//! The paper's *prose* describes the motivating example as "a UDP
//! server and client", while its Figure 3 code uses `SOCK_STREAM`.
//! Both are provided; this is the datagram one. The wire protocol is
//! identical to the TCP variant (one request/response line per
//! datagram), and the server tracks per-peer round counters so
//! interleaved clients each get their own game.

use crate::protocol::{Move, Request, Response};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};

/// A bound UDP server.
#[derive(Debug)]
pub struct UdpRpsServer {
    socket: UdpSocket,
    rounds: HashMap<SocketAddr, u64>,
}

impl UdpRpsServer {
    /// Bind to `addr` (port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<UdpRpsServer> {
        Ok(UdpRpsServer { socket: UdpSocket::bind(addr)?, rounds: HashMap::new() })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Serve exactly `n` datagrams, then return. (The UDP server has no
    /// connection boundary, so tests and demos drive it by datagram
    /// count; `serve_forever` loops this.)
    pub fn serve_datagrams(&mut self, n: usize) -> io::Result<()> {
        let mut buf = [0u8; 512];
        for _ in 0..n {
            let (len, peer) = self.socket.recv_from(&mut buf)?;
            let line = String::from_utf8_lossy(&buf[..len]);
            let reply = match Request::parse(&line) {
                Some(Request::Play(client_move)) => {
                    let round = self.rounds.entry(peer).or_insert(0);
                    *round += 1;
                    let server_move = Move::from_index(*round - 1);
                    Response::Result(client_move, server_move, client_move.against(server_move), *round)
                }
                Some(Request::Disconnect) => {
                    let played = self.rounds.remove(&peer).unwrap_or(0);
                    Response::Bye(played)
                }
                None => Response::Err("malformed request".into()),
            };
            self.socket.send_to(reply.wire().as_bytes(), peer)?;
        }
        Ok(())
    }

    /// Serve datagrams until the process dies.
    pub fn serve_forever(&mut self) -> io::Result<()> {
        loop {
            self.serve_datagrams(64)?;
        }
    }
}

/// A UDP client (connected socket; one request/response per datagram).
#[derive(Debug)]
pub struct UdpRpsClient {
    socket: UdpSocket,
}

impl UdpRpsClient {
    /// Create a client talking to `server`.
    pub fn connect(server: impl ToSocketAddrs) -> io::Result<UdpRpsClient> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(server)?;
        socket.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
        Ok(UdpRpsClient { socket })
    }

    fn round_trip(&mut self, req: Request) -> io::Result<Response> {
        self.socket.send(req.wire().as_bytes())?;
        let mut buf = [0u8; 512];
        let len = self.socket.recv(&mut buf)?;
        Response::parse(&String::from_utf8_lossy(&buf[..len]))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad response"))
    }

    /// Play one round.
    pub fn play(&mut self, m: Move) -> io::Result<crate::client::RoundResult> {
        match self.round_trip(Request::Play(m))? {
            Response::Result(you, server, outcome, round) => {
                Ok(crate::client::RoundResult { you, server, outcome, round })
            }
            Response::Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?} to MOVE"),
            )),
        }
    }

    /// End the game; returns rounds played.
    pub fn disconnect(mut self) -> io::Result<u64> {
        match self.round_trip(Request::Disconnect)? {
            Response::Bye(n) => Ok(n),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response {other:?} to DISCONNECT"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Outcome;

    #[test]
    fn udp_session_round_trips() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(4).unwrap());
        let mut c = UdpRpsClient::connect(addr).unwrap();
        let r1 = c.play(Move::Paper).unwrap();
        assert_eq!(r1.outcome, Outcome::Win);
        let r2 = c.play(Move::Rock).unwrap();
        assert_eq!(r2.outcome, Outcome::Lose); // server plays Paper
        let r3 = c.play(Move::Rock).unwrap();
        assert_eq!(r3.outcome, Outcome::Win); // server plays Scissors
        assert_eq!(c.disconnect().unwrap(), 3);
        t.join().unwrap();
    }

    #[test]
    fn udp_server_tracks_peers_independently() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(4).unwrap());
        let mut a = UdpRpsClient::connect(addr).unwrap();
        let mut b = UdpRpsClient::connect(addr).unwrap();
        assert_eq!(a.play(Move::Rock).unwrap().round, 1);
        assert_eq!(b.play(Move::Rock).unwrap().round, 1, "peer B must have its own counter");
        assert_eq!(a.play(Move::Rock).unwrap().round, 2);
        assert_eq!(b.play(Move::Rock).unwrap().round, 2);
        t.join().unwrap();
    }

    #[test]
    fn udp_malformed_datagram_gets_err() {
        let mut server = UdpRpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.serve_datagrams(1).unwrap());
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.connect(addr).unwrap();
        sock.send(b"JUMP high\n").unwrap();
        let mut buf = [0u8; 128];
        let len = sock.recv(&mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf[..len]).starts_with("ERR"));
        t.join().unwrap();
    }
}
