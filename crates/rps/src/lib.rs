//! `netrepro-rps` — the rock-paper-scissors client/server of the
//! paper's Figure 3.
//!
//! The paper's motivating example has an undergraduate prompt ChatGPT
//! into a 93-LoC Python client/server pair in four prompts. (The prose
//! says "UDP" but the generated code in Figure 3 uses `SOCK_STREAM`;
//! we implement the TCP protocol the figure actually shows.)
//!
//! Design notes, per the session's Rust networking guides: this program
//! serves a handful of interactive connections and does no concurrent
//! I/O fan-out, which is exactly the case the Tokio tutorial lists under
//! "when not to use Tokio" — so it uses blocking `std::net` sockets with
//! a thread per connection.
//!
//! The wire protocol is line-based text, one message per line:
//!
//! ```text
//! client -> server:  MOVE <R|P|S>        play a round
//!                    DISCONNECT          end the session
//! server -> client:  RESULT <you> <me> <WIN|LOSE|DRAW> <round>
//!                    BYE <rounds-played>
//!                    ERR <reason>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod server;
pub mod udp;

pub use client::RpsClient;
pub use error::{ProtocolError, MAX_FRAME};
pub use protocol::{Move, Outcome};
pub use server::RpsServer;
pub use udp::{UdpRpsClient, UdpRpsServer};
