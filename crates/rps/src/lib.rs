//! `netrepro-rps` — the rock-paper-scissors client/server of the
//! paper's Figure 3.
//!
//! The paper's motivating example has an undergraduate prompt ChatGPT
//! into a 93-LoC Python client/server pair in four prompts. (The prose
//! says "UDP" but the generated code in Figure 3 uses `SOCK_STREAM`;
//! we implement the TCP protocol the figure actually shows.)
//!
//! Design notes, per the session's Rust networking guides: this program
//! serves a handful of interactive connections and does no concurrent
//! I/O fan-out, which is exactly the case the Tokio tutorial lists under
//! "when not to use Tokio" — so it uses blocking `std::net` sockets with
//! a thread per connection.
//!
//! The wire protocol is line-based text, one message per line:
//!
//! ```text
//! client -> server:  MOVE <R|P|S>        play a round
//!                    DISCONNECT          end the session
//! server -> client:  RESULT <you> <me> <WIN|LOSE|DRAW> <round>
//!                    BYE <rounds-played>
//!                    ERR <reason>
//! ```
//!
//! The same transport discipline (typed errors, frame caps, read
//! timeouts) is reused by the `netrepro serve` job daemon, which
//! extends the line protocol with job-service verbs — see [`job`]:
//!
//! ```text
//! client -> server:  SUBMIT <tenant> <nonce> <spec>
//!                    STATUS <id> | CANCEL <id> | RESULTS <id>
//!                    HEALTH | DRAIN
//! server -> client:  ACCEPTED <id> | REJECTED <reason>
//!                    STATE <id> <state> <journaled> <total>
//!                    RESULTS <id> <len>  (then <len> raw bytes)
//!                    HEALTH <queued> <running> <done>
//!                    DRAINING <in-flight> | ERR <reason>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod job;
pub mod protocol;
pub mod server;
pub mod udp;

pub use client::RpsClient;
pub use error::{ProtocolError, MAX_FRAME, MAX_JOB_FRAME};
pub use job::{JobRequest, JobResponse, JobState, RejectReason};
pub use protocol::{Move, Outcome};
pub use server::RpsServer;
pub use udp::{UdpRpsClient, UdpRpsServer};

/// Read one newline-terminated job-service frame (cap
/// [`MAX_JOB_FRAME`]) from a buffered reader. Same contract as the
/// game's internal frame reader: `Ok(None)` on clean EOF before any
/// bytes, [`ProtocolError::PeerClosed`] on EOF mid-frame,
/// [`ProtocolError::Oversized`] as soon as the cap is crossed.
pub fn read_job_frame(
    reader: &mut impl std::io::BufRead,
) -> Result<Option<String>, ProtocolError> {
    error::read_frame_capped(reader, MAX_JOB_FRAME)
}
