//! Typed protocol errors and frame limits.
//!
//! The seed implementation funnelled every failure through
//! `io::Error::new(InvalidData, ...)`, which made "the peer sent
//! garbage" indistinguishable from "the socket died". The
//! fault-injection harness needs to tell those apart to decide whether
//! a fault was absorbed (retried, reconnected) or escaped, so the
//! crate now reports [`ProtocolError`] everywhere.

use std::io;

/// Maximum accepted frame length in bytes (one protocol line or one
/// datagram, excluding the newline). Anything longer is rejected as
/// [`ProtocolError::Oversized`] instead of being buffered without
/// bound — a peer streaming an endless line can no longer pin memory.
pub const MAX_FRAME: usize = 256;

/// Maximum accepted frame length for the job-service verbs
/// (`SUBMIT`/`STATUS`/…): a job spec carries a whole matrix
/// description, so the cap is wider than the game's, but still a hard
/// bound — an over-long submission is rejected as
/// [`ProtocolError::Oversized`], which the daemon reports as the
/// typed `payload-too-large` admission rejection.
pub const MAX_JOB_FRAME: usize = 4096;

/// Everything that can go wrong on the RPS wire.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A read or write hit its configured deadline.
    Timeout,
    /// The peer closed the connection mid-session.
    PeerClosed,
    /// A frame did not parse (bad verb, bad move, invalid UTF-8).
    Malformed(String),
    /// A frame exceeded [`MAX_FRAME`].
    Oversized {
        /// Observed length (or a lower bound, if rejection was early).
        len: usize,
        /// The limit that was exceeded.
        cap: usize,
    },
    /// A syntactically valid response arrived where a different kind
    /// was required (e.g. `BYE` in answer to `MOVE`).
    Unexpected {
        /// The response that arrived.
        got: String,
        /// What the state machine was waiting for.
        expected: &'static str,
    },
    /// The server answered with an explicit `ERR` line.
    ServerError(String),
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProtocolError::Timeout,
            io::ErrorKind::UnexpectedEof => ProtocolError::PeerClosed,
            _ => ProtocolError::Io(e),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
            ProtocolError::Timeout => write!(f, "timed out waiting for the peer"),
            ProtocolError::PeerClosed => write!(f, "peer closed the connection"),
            ProtocolError::Malformed(line) => write!(f, "malformed frame: {line:?}"),
            ProtocolError::Oversized { len, cap } => {
                write!(f, "oversized frame: {len} bytes exceeds the {cap}-byte limit")
            }
            ProtocolError::Unexpected { got, expected } => {
                write!(f, "unexpected response {got:?} (expected {expected})")
            }
            ProtocolError::ServerError(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Read one newline-terminated frame, enforcing [`MAX_FRAME`].
///
/// Returns `Ok(None)` on clean EOF before any bytes of a new frame,
/// [`ProtocolError::PeerClosed`] on EOF mid-frame,
/// [`ProtocolError::Oversized`] as soon as the limit is crossed (the
/// rest of the line is *not* drained — the caller should drop the
/// connection), and [`ProtocolError::Malformed`] on invalid UTF-8.
pub(crate) fn read_frame(reader: &mut impl io::BufRead) -> Result<Option<String>, ProtocolError> {
    read_frame_capped(reader, MAX_FRAME)
}

/// [`read_frame`] with an explicit cap — the job-service listener
/// reads with [`MAX_JOB_FRAME`], the game with [`MAX_FRAME`].
pub(crate) fn read_frame_capped(
    reader: &mut impl io::BufRead,
    cap: usize,
) -> Result<Option<String>, ProtocolError> {
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let (consumed, done) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                if frame.is_empty() {
                    return Ok(None);
                }
                return Err(ProtocolError::PeerClosed);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    frame.extend_from_slice(&buf[..pos]);
                    (pos + 1, true)
                }
                None => {
                    frame.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if frame.len() > cap {
            return Err(ProtocolError::Oversized { len: frame.len(), cap });
        }
        if done {
            break;
        }
    }
    match String::from_utf8(frame) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(ProtocolError::Malformed("<invalid utf-8>".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_split_on_newlines() {
        let mut r = BufReader::new(&b"MOVE R\nDISCONNECT\n"[..]);
        assert_eq!(read_frame(&mut r).unwrap(), Some("MOVE R".to_string()));
        assert_eq!(read_frame(&mut r).unwrap(), Some("DISCONNECT".to_string()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_peer_closed() {
        let mut r = BufReader::new(&b"MOV"[..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::PeerClosed)));
    }

    #[test]
    fn oversized_frame_is_rejected_before_the_newline() {
        let big = vec![b'x'; MAX_FRAME * 4]; // no newline at all
        let mut r = BufReader::new(&big[..]);
        match read_frame(&mut r) {
            Err(ProtocolError::Oversized { len, cap }) => {
                assert!(len > cap);
                assert_eq!(cap, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut r = BufReader::new(&[0xff, 0xfe, b'\n'][..]);
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn timeouts_map_from_io_kinds() {
        let e: ProtocolError = io::Error::new(io::ErrorKind::WouldBlock, "t").into();
        assert!(matches!(e, ProtocolError::Timeout));
        let e: ProtocolError = io::Error::new(io::ErrorKind::TimedOut, "t").into();
        assert!(matches!(e, ProtocolError::Timeout));
        let e: ProtocolError = io::Error::new(io::ErrorKind::ConnectionReset, "t").into();
        assert!(matches!(e, ProtocolError::Io(_)));
    }
}
