//! Moves, outcomes and the line protocol.

/// A rock-paper-scissors move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Rock.
    Rock,
    /// Paper.
    Paper,
    /// Scissors.
    Scissors,
}

impl Move {
    /// Parse the single-letter encoding (`R`/`P`/`S`, case-insensitive).
    pub fn parse(s: &str) -> Option<Move> {
        match s.trim().to_ascii_uppercase().as_str() {
            "R" => Some(Move::Rock),
            "P" => Some(Move::Paper),
            "S" => Some(Move::Scissors),
            _ => None,
        }
    }

    /// Single-letter encoding.
    pub fn letter(self) -> char {
        match self {
            Move::Rock => 'R',
            Move::Paper => 'P',
            Move::Scissors => 'S',
        }
    }

    /// The move this one defeats.
    pub fn beats(self) -> Move {
        match self {
            Move::Rock => Move::Scissors,
            Move::Paper => Move::Rock,
            Move::Scissors => Move::Paper,
        }
    }

    /// Outcome from this move's perspective against `other`.
    pub fn against(self, other: Move) -> Outcome {
        if self == other {
            Outcome::Draw
        } else if self.beats() == other {
            Outcome::Win
        } else {
            Outcome::Lose
        }
    }

    /// Deterministic move from a round counter (the server's "AI").
    pub fn from_index(i: u64) -> Move {
        match i % 3 {
            0 => Move::Rock,
            1 => Move::Paper,
            _ => Move::Scissors,
        }
    }
}

/// Round outcome from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Client won.
    Win,
    /// Client lost.
    Lose,
    /// Draw.
    Draw,
}

impl Outcome {
    /// Wire encoding.
    pub fn wire(self) -> &'static str {
        match self {
            Outcome::Win => "WIN",
            Outcome::Lose => "LOSE",
            Outcome::Draw => "DRAW",
        }
    }

    /// Parse the wire encoding.
    pub fn parse(s: &str) -> Option<Outcome> {
        match s {
            "WIN" => Some(Outcome::Win),
            "LOSE" => Some(Outcome::Lose),
            "DRAW" => Some(Outcome::Draw),
            _ => None,
        }
    }
}

/// Encodability check for fields that must occupy one wire token:
/// `Some(s)` when `s` is non-empty and whitespace-free, else `None`.
pub(crate) fn no_space(s: &str) -> Option<&str> {
    if !s.is_empty() && !s.chars().any(|c| c.is_whitespace()) {
        Some(s)
    } else {
        None
    }
}

/// A parsed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Play a round.
    Play(Move),
    /// End the session.
    Disconnect,
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Option<Request> {
        let mut parts = line.split_whitespace();
        match parts.next()? {
            "MOVE" => Move::parse(parts.next()?).map(Request::Play),
            "DISCONNECT" => Some(Request::Disconnect),
            _ => None,
        }
    }

    /// Wire encoding (with trailing newline).
    pub fn wire(self) -> String {
        match self {
            Request::Play(m) => format!("MOVE {}\n", m.letter()),
            Request::Disconnect => "DISCONNECT\n".to_string(),
        }
    }
}

/// A parsed server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Round result: client move, server move, outcome, round number.
    Result(Move, Move, Outcome, u64),
    /// Session over after N rounds.
    Bye(u64),
    /// Protocol error.
    Err(String),
}

impl Response {
    /// Parse one response line.
    pub fn parse(line: &str) -> Option<Response> {
        let mut parts = line.split_whitespace();
        match parts.next()? {
            "RESULT" => {
                let you = Move::parse(parts.next()?)?;
                let me = Move::parse(parts.next()?)?;
                let outcome = Outcome::parse(parts.next()?)?;
                let round = parts.next()?.parse().ok()?;
                Some(Response::Result(you, me, outcome, round))
            }
            "BYE" => Some(Response::Bye(parts.next()?.parse().ok()?)),
            "ERR" => Some(Response::Err(parts.collect::<Vec<_>>().join(" "))),
            _ => None,
        }
    }

    /// Wire encoding (with trailing newline).
    pub fn wire(&self) -> String {
        match self {
            Response::Result(you, me, o, round) => {
                format!("RESULT {} {} {} {}\n", you.letter(), me.letter(), o.wire(), round)
            }
            Response::Bye(n) => format!("BYE {n}\n"),
            Response::Err(e) => format!("ERR {e}\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_parsing_is_lenient() {
        assert_eq!(Move::parse(" r "), Some(Move::Rock));
        assert_eq!(Move::parse("P"), Some(Move::Paper));
        assert_eq!(Move::parse("s"), Some(Move::Scissors));
        assert_eq!(Move::parse("x"), None);
        assert_eq!(Move::parse(""), None);
    }

    #[test]
    fn game_rules() {
        use Move::*;
        assert_eq!(Rock.against(Scissors), Outcome::Win);
        assert_eq!(Rock.against(Paper), Outcome::Lose);
        assert_eq!(Rock.against(Rock), Outcome::Draw);
        assert_eq!(Paper.against(Rock), Outcome::Win);
        assert_eq!(Scissors.against(Paper), Outcome::Win);
    }

    #[test]
    fn rules_are_antisymmetric() {
        for a in [Move::Rock, Move::Paper, Move::Scissors] {
            for b in [Move::Rock, Move::Paper, Move::Scissors] {
                match a.against(b) {
                    Outcome::Win => assert_eq!(b.against(a), Outcome::Lose),
                    Outcome::Lose => assert_eq!(b.against(a), Outcome::Win),
                    Outcome::Draw => assert_eq!(b.against(a), Outcome::Draw),
                }
            }
        }
    }

    #[test]
    fn request_round_trip() {
        for r in [Request::Play(Move::Paper), Request::Disconnect] {
            assert_eq!(Request::parse(&r.wire()), Some(r));
        }
        assert_eq!(Request::parse("MOVE"), None);
        assert_eq!(Request::parse("JUMP R"), None);
    }

    #[test]
    fn response_round_trip() {
        let rs = [
            Response::Result(Move::Rock, Move::Scissors, Outcome::Win, 3),
            Response::Bye(7),
            Response::Err("bad move".to_string()),
        ];
        for r in rs {
            assert_eq!(Response::parse(&r.wire()), Some(r.clone()));
        }
    }

    #[test]
    fn server_ai_cycles() {
        assert_eq!(Move::from_index(0), Move::Rock);
        assert_eq!(Move::from_index(1), Move::Paper);
        assert_eq!(Move::from_index(2), Move::Scissors);
        assert_eq!(Move::from_index(3), Move::Rock);
    }
}
