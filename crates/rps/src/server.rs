//! The RPS server: blocking `std::net`, one thread per connection.

use crate::error::{read_frame, ProtocolError};
use crate::protocol::{Move, Request, Response};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Ceiling on the per-connection read deadline inside
/// [`RpsServer::serve_connections`]. Even when no explicit timeout is
/// armed, a client that connects and then wedges is dropped after
/// this long, so it can pin only its own handler thread — never the
/// whole batch.
pub const SERVE_READ_TIMEOUT_CAP: Duration = Duration::from_secs(30);

/// A bound server. Accept loops run on demand via
/// [`RpsServer::serve_connections`] (tests, examples) or
/// [`RpsServer::serve_forever`] (the demo binary).
#[derive(Debug)]
pub struct RpsServer {
    listener: TcpListener,
    read_timeout: Option<Duration>,
}

impl RpsServer {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<RpsServer> {
        Ok(RpsServer { listener: TcpListener::bind(addr)?, read_timeout: None })
    }

    /// Arm a per-connection read deadline: a client that connects and
    /// then goes silent is dropped with [`ProtocolError::Timeout`]
    /// instead of pinning its thread forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept exactly `n` connections and serve them **concurrently**
    /// on scoped threads, returning each session's result in accept
    /// order once all have finished. A connection starts being served
    /// the moment it is accepted — a wedged client occupies only its
    /// own handler thread (bounded by the armed read timeout, capped
    /// at [`SERVE_READ_TIMEOUT_CAP`]) and cannot starve the others.
    pub fn serve_connections(&self, n: usize) -> io::Result<Vec<Result<u64, ProtocolError>>> {
        let timeout = Some(self.read_timeout.map_or(SERVE_READ_TIMEOUT_CAP, |t| {
            t.min(SERVE_READ_TIMEOUT_CAP)
        }));
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for _ in 0..n {
                let (stream, _) = self.listener.accept()?;
                handles.push(s.spawn(move || handle_connection(stream, timeout)));
            }
            Ok(handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ProtocolError::Io(io::Error::other("connection handler panicked")))
                    })
                })
                .collect())
        })
    }

    /// Accept connections until the process dies.
    pub fn serve_forever(&self) -> io::Result<()> {
        loop {
            let (stream, peer) = self.listener.accept()?;
            let timeout = self.read_timeout;
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(stream, timeout) {
                    eprintln!("connection {peer}: {e}");
                }
            });
        }
    }
}

/// Serve one client until `DISCONNECT`/EOF. Returns rounds played.
///
/// Malformed lines get an `ERR` reply and the session continues;
/// oversized frames get a final `ERR` and the connection is dropped
/// with [`ProtocolError::Oversized`] (the remainder of the line is
/// never buffered).
fn handle_connection(
    stream: TcpStream,
    read_timeout: Option<Duration>,
) -> Result<u64, ProtocolError> {
    stream.set_read_timeout(read_timeout)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut round: u64 = 0;
    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF without DISCONNECT
            Err(e @ ProtocolError::Oversized { .. }) => {
                let _ = writer.write_all(Response::Err("oversized request".into()).wire().as_bytes());
                return Err(e);
            }
            Err(ProtocolError::Malformed(_)) => {
                writer.write_all(Response::Err("malformed request".into()).wire().as_bytes())?;
                continue;
            }
            Err(e) => return Err(e),
        };
        match Request::parse(&line) {
            Some(Request::Play(client_move)) => {
                round += 1;
                // Deterministic cycling opponent: easy to test against
                // and fair over any multiple of three rounds.
                let server_move = Move::from_index(round - 1);
                let outcome = client_move.against(server_move);
                let resp = Response::Result(client_move, server_move, outcome, round);
                writer.write_all(resp.wire().as_bytes())?;
            }
            Some(Request::Disconnect) => {
                writer.write_all(Response::Bye(round).wire().as_bytes())?;
                break;
            }
            None => {
                writer.write_all(Response::Err("malformed request".into()).wire().as_bytes())?;
            }
        }
    }
    Ok(round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MAX_FRAME;
    use std::io::BufRead;

    fn raw_session(lines: &[&str]) -> Vec<String> {
        let server = RpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let lines: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for l in &lines {
                stream.write_all(format!("{l}\n").as_bytes()).unwrap();
            }
            // Half-close so the server sees EOF even when the script
            // never sends DISCONNECT.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let reader = BufReader::new(stream);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });
        let results = server.serve_connections(1).unwrap();
        let out = client.join().unwrap();
        for r in results {
            r.unwrap();
        }
        out
    }

    #[test]
    fn plays_rounds_and_says_bye() {
        let out = raw_session(&["MOVE P", "MOVE R", "DISCONNECT"]);
        assert_eq!(out.len(), 3);
        // Round 1: server plays R, client P wins.
        assert_eq!(out[0], "RESULT P R WIN 1");
        // Round 2: server plays P, client R loses.
        assert_eq!(out[1], "RESULT R P LOSE 2");
        assert_eq!(out[2], "BYE 2");
    }

    #[test]
    fn malformed_input_gets_err_not_disconnect() {
        let out = raw_session(&["JUMP", "MOVE S", "DISCONNECT"]);
        assert!(out[0].starts_with("ERR"));
        assert_eq!(out[1], "RESULT S R LOSE 1"); // server opens with Rock
        assert_eq!(out[2], "BYE 1");
    }

    #[test]
    fn eof_without_disconnect_is_clean() {
        let out = raw_session(&["MOVE R"]);
        assert_eq!(out.len(), 1);
        assert!(out[0].starts_with("RESULT R R DRAW 1"));
    }

    #[test]
    fn oversized_frame_drops_the_connection_with_typed_error() {
        let server = RpsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let huge = vec![b'A'; MAX_FRAME * 8]; // no newline needed
            stream.write_all(&huge).unwrap();
            let reader = BufReader::new(stream);
            reader.lines().map_while(Result::ok).collect::<Vec<_>>()
        });
        let results = server.serve_connections(1).unwrap();
        let out = client.join().unwrap();
        let res = results.into_iter().next().unwrap();
        assert!(matches!(res, Err(ProtocolError::Oversized { .. })), "got {res:?}");
        assert!(out.iter().any(|l| l.starts_with("ERR")), "client must see the ERR: {out:?}");
    }

    #[test]
    fn silent_client_is_dropped_on_read_timeout() {
        let mut server = RpsServer::bind("127.0.0.1:0").unwrap();
        server.set_read_timeout(Some(Duration::from_millis(50)));
        let addr = server.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(300));
            drop(stream);
        });
        let results = server.serve_connections(1).unwrap();
        let res = results.into_iter().next().unwrap();
        assert!(matches!(res, Err(ProtocolError::Timeout)), "got {res:?}");
        client.join().unwrap();
    }

    #[test]
    fn wedged_client_does_not_starve_a_concurrent_one() {
        use crate::client::RpsClient;
        let mut server = RpsServer::bind("127.0.0.1:0").unwrap();
        server.set_read_timeout(Some(Duration::from_millis(600)));
        let addr = server.local_addr().unwrap();

        // Client A connects first and wedges: never sends a byte,
        // holds the socket open past the server's read deadline.
        let a = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(900));
            drop(stream);
        });
        // Client B connects second and plays a full session at once.
        let b = std::thread::spawn(move || {
            // Let A win the accept race.
            std::thread::sleep(Duration::from_millis(100));
            let start = std::time::Instant::now();
            let mut c = RpsClient::connect(addr).unwrap();
            let r = c.play(Move::Paper).unwrap();
            assert_eq!(r.round, 1);
            assert_eq!(c.disconnect().unwrap(), 1);
            start.elapsed()
        });

        let results = server.serve_connections(2).unwrap();
        let b_elapsed = b.join().unwrap();
        a.join().unwrap();

        // Accept order: A first (timed out), B second (clean session).
        assert!(matches!(results[0], Err(ProtocolError::Timeout)), "got {:?}", results[0]);
        assert!(matches!(results[1], Ok(1)), "got {:?}", results[1]);
        // B's whole session must finish while A is still wedged; a
        // sequential server would have made it wait out A's 600ms
        // read deadline first.
        assert!(
            b_elapsed < Duration::from_millis(400),
            "client B was starved behind the wedged client: {b_elapsed:?}"
        );
    }
}
