//! The job-service verbs: the line protocol spoken by `netrepro serve`.
//!
//! The serve daemon reuses this crate's transport discipline — typed
//! [`ProtocolError`](crate::ProtocolError)s, hard frame caps, read
//! timeouts — and extends the line protocol with job verbs:
//!
//! ```text
//! client -> server:  SUBMIT <tenant> <nonce> <spec>   enqueue a sweep job
//!                    STATUS <id>                      query one job
//!                    CANCEL <id>                      cancel a queued/running job
//!                    RESULTS <id>                     fetch a finished job's report
//!                    HEALTH                           daemon liveness + queue depths
//!                    DRAIN                            stop admitting, finish in flight
//! server -> client:  ACCEPTED <id>
//!                    REJECTED <reason>
//!                    STATE <id> <state> <journaled> <total>
//!                    RESULTS <id> <len>   (followed by <len> raw bytes)
//!                    HEALTH <queued> <running> <done>
//!                    DRAINING <in-flight>
//!                    ERR <reason>
//! ```
//!
//! `<tenant>` and `<spec>` are single whitespace-free tokens; the spec
//! is opaque to this crate (the serve crate defines its grammar). The
//! `<nonce>` makes submission idempotent: a client that retries a
//! `SUBMIT` whose `ACCEPTED` reply was lost gets the *same* job id
//! back instead of enqueueing the job twice — the same discipline the
//! UDP client uses for retried datagrams.

use crate::protocol::no_space;

/// Why the daemon refused to admit a job. Every rejection is typed so
/// clients can distinguish "back off and retry" (queue full) from
/// "don't bother" (payload too large) from "this tenant specifically
/// is being shed" (quota, breaker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity.
    QueueFull,
    /// The submitted spec exceeded the frame or spec-length cap.
    PayloadTooLarge,
    /// The tenant already has its maximum number of live jobs.
    TenantOverQuota,
    /// The tenant's circuit breaker is open after consecutive
    /// failed jobs.
    TenantBreakerOpen,
}

impl RejectReason {
    /// Wire encoding.
    pub fn wire(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::PayloadTooLarge => "payload-too-large",
            RejectReason::TenantOverQuota => "tenant-over-quota",
            RejectReason::TenantBreakerOpen => "tenant-breaker-open",
        }
    }

    /// Parse the wire encoding.
    pub fn parse(s: &str) -> Option<RejectReason> {
        match s {
            "queue-full" => Some(RejectReason::QueueFull),
            "payload-too-large" => Some(RejectReason::PayloadTooLarge),
            "tenant-over-quota" => Some(RejectReason::TenantOverQuota),
            "tenant-breaker-open" => Some(RejectReason::TenantBreakerOpen),
            _ => None,
        }
    }
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a scheduler slot.
    Queued,
    /// A scheduler worker is executing slices of it.
    Running,
    /// Every cell journaled; results available.
    Done,
    /// The job's execution failed (e.g. a poison job that panicked).
    Failed,
    /// Cancelled by the client before completion.
    Cancelled,
    /// The job's virtual-clock deadline expired mid-run.
    Deadline,
}

impl JobState {
    /// Wire encoding.
    pub fn wire(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Deadline => "deadline",
        }
    }

    /// Parse the wire encoding.
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "deadline" => Some(JobState::Deadline),
            _ => None,
        }
    }

    /// Whether the job can still change state.
    pub fn is_live(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// A parsed job-service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobRequest {
    /// Enqueue a job for `tenant` with an idempotency `nonce` and an
    /// opaque single-token `spec`.
    Submit {
        /// Tenant identity (single token; the fairness/quota key).
        tenant: String,
        /// Client-chosen idempotency nonce: a retried `SUBMIT` with
        /// the same `(tenant, nonce)` returns the original job id.
        nonce: u64,
        /// Opaque job spec token (the serve crate parses it).
        spec: String,
    },
    /// Query a job's state.
    Status(u64),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Fetch a finished job's report.
    Results(u64),
    /// Daemon liveness and queue depths.
    Health,
    /// Graceful drain: stop admitting, finish or checkpoint in-flight
    /// jobs, flush the ledger.
    Drain,
}

impl JobRequest {
    /// Parse one request line.
    pub fn parse(line: &str) -> Option<JobRequest> {
        let mut parts = line.split_whitespace();
        let req = match parts.next()? {
            "SUBMIT" => JobRequest::Submit {
                tenant: parts.next()?.to_string(),
                nonce: parts.next()?.parse().ok()?,
                spec: parts.next()?.to_string(),
            },
            "STATUS" => JobRequest::Status(parts.next()?.parse().ok()?),
            "CANCEL" => JobRequest::Cancel(parts.next()?.parse().ok()?),
            "RESULTS" => JobRequest::Results(parts.next()?.parse().ok()?),
            "HEALTH" => JobRequest::Health,
            "DRAIN" => JobRequest::Drain,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(req)
    }

    /// Wire encoding (with trailing newline). Returns `None` when the
    /// tenant or spec contains whitespace (unencodable as one token).
    pub fn wire(&self) -> Option<String> {
        Some(match self {
            JobRequest::Submit { tenant, nonce, spec } => {
                format!("SUBMIT {} {} {}\n", no_space(tenant)?, nonce, no_space(spec)?)
            }
            JobRequest::Status(id) => format!("STATUS {id}\n"),
            JobRequest::Cancel(id) => format!("CANCEL {id}\n"),
            JobRequest::Results(id) => format!("RESULTS {id}\n"),
            JobRequest::Health => "HEALTH\n".to_string(),
            JobRequest::Drain => "DRAIN\n".to_string(),
        })
    }
}

/// A parsed job-service response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResponse {
    /// The job was admitted under this id.
    Accepted(u64),
    /// The job was refused; the reason is always typed.
    Rejected(RejectReason),
    /// One job's lifecycle state and journal progress.
    State {
        /// Job id.
        id: u64,
        /// Lifecycle state.
        state: JobState,
        /// Cells committed to the job's journal so far.
        journaled: u64,
        /// Matrix size.
        total: u64,
    },
    /// Header for a results payload: `len` raw bytes follow the
    /// newline (the payload is *not* line-framed — read exactly `len`).
    ResultsHeader {
        /// Job id.
        id: u64,
        /// Payload length in bytes.
        len: u64,
    },
    /// Daemon liveness: queue depths by lifecycle bucket.
    Health {
        /// Jobs admitted but not yet running.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Jobs in a terminal state.
        done: u64,
    },
    /// Drain acknowledged; this many jobs are still in flight.
    Draining(u64),
    /// Protocol or lookup error.
    Err(String),
}

impl JobResponse {
    /// Parse one response line.
    pub fn parse(line: &str) -> Option<JobResponse> {
        let mut parts = line.split_whitespace();
        let resp = match parts.next()? {
            "ACCEPTED" => JobResponse::Accepted(parts.next()?.parse().ok()?),
            "REJECTED" => JobResponse::Rejected(RejectReason::parse(parts.next()?)?),
            "STATE" => JobResponse::State {
                id: parts.next()?.parse().ok()?,
                state: JobState::parse(parts.next()?)?,
                journaled: parts.next()?.parse().ok()?,
                total: parts.next()?.parse().ok()?,
            },
            "RESULTS" => JobResponse::ResultsHeader {
                id: parts.next()?.parse().ok()?,
                len: parts.next()?.parse().ok()?,
            },
            "HEALTH" => JobResponse::Health {
                queued: parts.next()?.parse().ok()?,
                running: parts.next()?.parse().ok()?,
                done: parts.next()?.parse().ok()?,
            },
            "DRAINING" => JobResponse::Draining(parts.next()?.parse().ok()?),
            "ERR" => return Some(JobResponse::Err(parts.collect::<Vec<_>>().join(" "))),
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(resp)
    }

    /// Wire encoding (with trailing newline).
    pub fn wire(&self) -> String {
        match self {
            JobResponse::Accepted(id) => format!("ACCEPTED {id}\n"),
            JobResponse::Rejected(r) => format!("REJECTED {}\n", r.wire()),
            JobResponse::State { id, state, journaled, total } => {
                format!("STATE {} {} {} {}\n", id, state.wire(), journaled, total)
            }
            JobResponse::ResultsHeader { id, len } => format!("RESULTS {id} {len}\n"),
            JobResponse::Health { queued, running, done } => {
                format!("HEALTH {queued} {running} {done}\n")
            }
            JobResponse::Draining(n) => format!("DRAINING {n}\n"),
            JobResponse::Err(e) => format!("ERR {e}\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = [
            JobRequest::Submit {
                tenant: "alice".to_string(),
                nonce: 7,
                spec: "systems=ncflow;seeds=2".to_string(),
            },
            JobRequest::Status(3),
            JobRequest::Cancel(9),
            JobRequest::Results(12),
            JobRequest::Health,
            JobRequest::Drain,
        ];
        for r in reqs {
            let wire = r.wire().expect("encodable");
            assert!(wire.ends_with('\n'));
            assert_eq!(JobRequest::parse(&wire), Some(r));
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = [
            JobResponse::Accepted(4),
            JobResponse::Rejected(RejectReason::QueueFull),
            JobResponse::Rejected(RejectReason::TenantBreakerOpen),
            JobResponse::State { id: 4, state: JobState::Running, journaled: 9, total: 24 },
            JobResponse::ResultsHeader { id: 4, len: 1024 },
            JobResponse::Health { queued: 1, running: 2, done: 3 },
            JobResponse::Draining(2),
            JobResponse::Err("no such job".to_string()),
        ];
        for r in resps {
            assert_eq!(JobResponse::parse(&r.wire()), Some(r.clone()));
        }
    }

    #[test]
    fn all_reject_reasons_round_trip() {
        for r in [
            RejectReason::QueueFull,
            RejectReason::PayloadTooLarge,
            RejectReason::TenantOverQuota,
            RejectReason::TenantBreakerOpen,
        ] {
            assert_eq!(RejectReason::parse(r.wire()), Some(r));
        }
        assert_eq!(RejectReason::parse("because"), None);
    }

    #[test]
    fn all_job_states_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Deadline,
        ] {
            assert_eq!(JobState::parse(s.wire()), Some(s));
        }
        assert!(JobState::Queued.is_live());
        assert!(JobState::Running.is_live());
        assert!(!JobState::Done.is_live());
        assert!(!JobState::Cancelled.is_live());
    }

    #[test]
    fn trailing_junk_is_rejected() {
        assert_eq!(JobRequest::parse("STATUS 3 extra"), None);
        assert_eq!(JobRequest::parse("HEALTH now"), None);
        assert_eq!(JobResponse::parse("ACCEPTED 3 4"), None);
    }

    #[test]
    fn spec_with_whitespace_is_unencodable() {
        let r = JobRequest::Submit {
            tenant: "a b".to_string(),
            nonce: 0,
            spec: "x".to_string(),
        };
        assert_eq!(r.wire(), None);
        let r = JobRequest::Submit {
            tenant: "a".to_string(),
            nonce: 0,
            spec: "x y".to_string(),
        };
        assert_eq!(r.wire(), None);
    }

    #[test]
    fn malformed_lines_do_not_parse() {
        for line in ["SUBMIT alice", "SUBMIT alice x spec", "STATUS", "JUMP 3", ""] {
            assert_eq!(JobRequest::parse(line), None, "{line:?}");
        }
        for line in ["STATE 1 flying 0 0", "REJECTED because", "HEALTH 1 2"] {
            assert_eq!(JobResponse::parse(line), None, "{line:?}");
        }
    }
}
