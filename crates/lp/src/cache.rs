//! Deterministic LP memoization: content-addressed model fingerprints
//! and a solve cache.
//!
//! The sweep and the TE pipelines re-solve structurally identical LPs
//! many times (NCFlow alone re-derives the same R1/R2 subproblems across
//! seeds, because the oracle side of a cell is seed-independent). A
//! [`SolveCache`] keyed by [`Problem::fingerprint`] lets
//! [`crate::fallback::FallbackSolver`] replay the earlier outcome
//! instead of pivoting again.
//!
//! Determinism argument: both simplex implementations are pure
//! functions of the model, so a fingerprint hit replays *exactly* the
//! `Solution` (or `LpError`) a fresh solve would have produced — the
//! cache can change wall-clock only, never observable output. The
//! fingerprint quantizes every coefficient via [`f64::to_bits`], so two
//! models collide only when they are float-identical; variable *names*
//! are deliberately excluded (they never influence the solve).

use crate::model::{ConstraintOp, Sense};
use crate::{LpError, Problem, Solution};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny streaming FNV-1a hasher. Not DoS-resistant — these keys are
/// derived from our own models, not attacker input — but fast, stable
/// across runs/platforms, and dependency-free.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    #[inline]
    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

impl Problem {
    /// A 64-bit content fingerprint of the model: sense, bounds,
    /// objective and every constraint coefficient, all quantized via
    /// [`f64::to_bits`]. Order-sensitive (term order is part of the
    /// model as built); variable names are excluded.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(match self.sense {
            Sense::Minimize => 0,
            Sense::Maximize => 1,
        });
        h.write_u64(self.vars.len() as u64);
        for v in &self.vars {
            h.write_f64(v.lo);
            h.write_f64(v.hi);
            h.write_f64(v.obj);
        }
        h.write_u64(self.constraints.len() as u64);
        for con in &self.constraints {
            h.write_u64(match con.op {
                ConstraintOp::Le => 0,
                ConstraintOp::Ge => 1,
                ConstraintOp::Eq => 2,
            });
            h.write_f64(con.rhs);
            h.write_u64(con.terms.len() as u64);
            for &(v, coef) in &con.terms {
                h.write_u64(v.index() as u64);
                h.write_f64(coef);
            }
        }
        h.finish()
    }
}

/// A memo of solve outcomes keyed by [`Problem::fingerprint`].
///
/// Interior-mutable (`Mutex` + atomics) because [`crate::LpSolver::solve`]
/// takes `&self` and NCFlow's R2 phase calls the solver from scoped
/// threads. Both `Ok` and `Err` outcomes are cached: the solvers are
/// deterministic, so an iteration-limit failure replays too.
#[derive(Debug, Default)]
pub struct SolveCache {
    map: Mutex<HashMap<u64, Result<Solution, LpError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// Replay the cached outcome for `key`, if present.
    // effect-allow(GlobalState): memoization + relaxed stat counters —
    // solvers are deterministic, so a hit replays the cold-run outcome.
    pub fn lookup(&self, key: u64) -> Option<Result<Solution, LpError>> {
        let map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        match map.get(&key) {
            Some(res) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(res.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record the outcome of a fresh solve.
    // effect-allow(GlobalState): memoization — keyed by the model
    // fingerprint, idempotent for deterministic solvers.
    pub fn insert(&self, key: u64, outcome: Result<Solution, LpError>) {
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        map.insert(key, outcome);
    }

    /// Lookups that found an entry.
    // effect-allow(GlobalState): observability-only relaxed counter.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    // effect-allow(GlobalState): observability-only relaxed counter.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct models cached so far.
    // effect-allow(GlobalState): observability-only cache size probe.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Status;

    fn base() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        p
    }

    #[test]
    fn identical_models_share_a_fingerprint() {
        assert_eq!(base().fingerprint(), base().fingerprint());
    }

    #[test]
    fn names_do_not_affect_the_fingerprint() {
        let mut renamed = Problem::new(Sense::Maximize);
        let x = renamed.add_var("alpha", 0.0, f64::INFINITY, 3.0);
        let y = renamed.add_var("beta", 0.0, f64::INFINITY, 2.0);
        renamed.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        renamed.add_le(&[(x, 1.0)], 2.0);
        assert_eq!(base().fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn sign_flip_changes_the_fingerprint() {
        let mut p = base();
        let x = crate::VarId(0);
        p.add_le(&[(x, -1.0)], 1.0);
        let mut q = base();
        q.add_le(&[(x, 1.0)], 1.0);
        assert_ne!(p.fingerprint(), q.fingerprint());
    }

    #[test]
    fn term_ordering_changes_the_fingerprint() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        let mut q = p.clone();
        p.add_le(&[(x, 1.0), (y, 2.0)], 3.0);
        q.add_le(&[(y, 2.0), (x, 1.0)], 3.0);
        // Same mathematical row, but term order is part of the built
        // model, and the solvers walk it in that order.
        assert_ne!(p.fingerprint(), q.fingerprint());
    }

    #[test]
    fn near_equal_floats_do_not_collide() {
        let mut p = base();
        let mut q = base();
        let x = crate::VarId(0);
        p.add_le(&[(x, 1.0)], 1.0);
        q.add_le(&[(x, 1.0 + 1e-12)], 1.0);
        assert_ne!(p.fingerprint(), q.fingerprint());
        // And the sense matters even with identical rows.
        let r = Problem::new(Sense::Minimize);
        let s = Problem::new(Sense::Maximize);
        assert_ne!(r.fingerprint(), s.fingerprint());
    }

    #[test]
    fn cache_replays_exact_outcomes() {
        let cache = SolveCache::new();
        let p = base();
        let key = p.fingerprint();
        assert!(cache.lookup(key).is_none());
        let sol = Solution {
            status: Status::Optimal,
            objective: 10.0,
            values: vec![2.0, 2.0],
            iterations: 3,
            degraded: false,
        };
        cache.insert(key, Ok(sol));
        let hit = cache.lookup(key).expect("hit").expect("ok");
        assert_eq!(hit.objective, 10.0);
        assert_eq!(hit.iterations, 3);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }
}
