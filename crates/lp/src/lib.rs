//! `netrepro-lp` — a linear-programming substrate.
//!
//! Both traffic-engineering systems reproduced in the HotNets'23 paper
//! (NCFlow, participant A; ARROW, participant B) reduce to linear
//! programs. The paper attributes participant A's up-to-111× latency gap
//! entirely to the LP-solver pairing: the open-source NCFlow uses Gurobi
//! while the LLM-reproduced one uses PuLP/CBC.
//!
//! This crate therefore ships two interchangeable solvers over the same
//! model and standard form:
//!
//! * [`revised::RevisedSimplex`] — the "Gurobi stand-in": presolve,
//!   sparse revised simplex with Dantzig pricing and periodic basis
//!   refactorisation.
//! * [`dense::DenseSimplex`] — the "PuLP/CBC stand-in": a textbook
//!   two-phase dense-tableau simplex with Bland's rule and no presolve.
//!
//! Both return identical optima (they solve the same LP); only speed
//! differs, which is exactly the behaviour Table A needs.
//!
//! # Example
//!
//! ```
//! use netrepro_lp::{Problem, Sense, LpSolver, revised::RevisedSimplex};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2, x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
//! p.add_le(&[(x, 1.0)], 2.0);
//! let sol = RevisedSimplex::default().solve(&p).unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dense;
pub mod duals;
pub mod fallback;
pub mod format;
pub mod model;
pub mod presolve;
pub mod revised;
pub mod standard;
pub(crate) mod sparse_lu;

pub use model::{ConstraintOp, Problem, Sense, VarId};
pub use standard::StandardLp;

/// Final status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// A solved LP: status, objective value and per-variable values (indexed
/// by [`VarId`]).
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve status. `objective`/`values` are meaningful only for
    /// [`Status::Optimal`].
    pub status: Status,
    /// Objective value in the problem's own sense.
    pub objective: f64,
    /// Value of each variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
    /// Simplex pivots performed (both phases).
    pub iterations: u64,
    /// Set when the solution came from a degraded path — e.g. the
    /// [`fallback::FallbackSolver`] recovered from a primary-solver
    /// failure with its slower backup. The solution is still feasible
    /// and optimal for the model; the tag records that the preferred
    /// solver did not produce it.
    pub degraded: bool,
}

impl Solution {
    /// Value of `v` in this solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }
}

/// Errors from model construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The iteration limit was exceeded (numerical trouble or cycling).
    IterationLimit(u64),
    /// The model references a variable that does not belong to it.
    ForeignVariable(VarId),
    /// A bound pair was inverted (`lo > hi`).
    BadBounds {
        /// The offending variable.
        var: VarId,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit(n) => write!(f, "simplex exceeded {n} iterations"),
            LpError::ForeignVariable(v) => write!(f, "variable {v:?} not in this problem"),
            LpError::BadBounds { var, lo, hi } => {
                write!(f, "variable {var:?} has inverted bounds [{lo}, {hi}]")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// A linear-programming solver.
pub trait LpSolver {
    /// Solve `problem`, returning a [`Solution`] or an error.
    fn solve(&self, problem: &Problem) -> Result<Solution, LpError>;

    /// Human-readable solver name for experiment reports.
    fn name(&self) -> &'static str;
}
