//! The user-facing LP model: variables with bounds, linear constraints
//! and a linear objective.

use crate::LpError;

/// Handle to a variable within one [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of this variable in [`crate::Solution::values`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximise the objective.
    Maximize,
    /// Minimise the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lo: f64,
    pub hi: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Sparse row: `(variable, coefficient)` with distinct variables.
    pub terms: Vec<(VarId, f64)>,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// An empty problem with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Problem { sense, vars: Vec::new(), constraints: Vec::new() }
    }

    /// The problem's optimisation sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a variable with bounds `[lo, hi]` (either may be infinite)
    /// and objective coefficient `obj`. Returns its handle.
    pub fn add_var(&mut self, name: &str, lo: f64, hi: f64, obj: f64) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable { name: name.to_string(), lo, hi, obj });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for debugging and LP dumps).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let var = &self.vars[v.index()];
        (var.lo, var.hi)
    }

    /// Set the objective coefficient of an existing variable.
    pub fn set_obj(&mut self, v: VarId, obj: f64) {
        self.vars[v.index()].obj = obj;
    }

    /// Add a `terms <= rhs` constraint.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Le, rhs);
    }

    /// Add a `terms >= rhs` constraint.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Ge, rhs);
    }

    /// Add a `terms == rhs` constraint.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) {
        self.add_constraint(terms, ConstraintOp::Eq, rhs);
    }

    /// Add a constraint with an explicit relation. Duplicate variables in
    /// `terms` are merged by summing their coefficients.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            if c == 0.0 {
                continue;
            }
            match merged.iter_mut().find(|(mv, _)| *mv == v) {
                Some((_, mc)) => *mc += c,
                None => merged.push((v, c)),
            }
        }
        self.constraints.push(Constraint { terms: merged, op, rhs });
    }

    /// Validate the model: every referenced variable exists and bounds
    /// are ordered.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lo > v.hi {
                return Err(LpError::BadBounds { var: VarId(i as u32), lo: v.lo, hi: v.hi });
            }
        }
        for c in &self.constraints {
            for &(v, _) in &c.terms {
                if v.index() >= self.vars.len() {
                    return Err(LpError::ForeignVariable(v));
                }
            }
        }
        Ok(())
    }

    /// Evaluate the objective at a point.
    pub fn objective_at(&self, values: &[f64]) -> f64 {
        self.vars.iter().zip(values).map(|(v, x)| v.obj * x).sum()
    }

    /// Check primal feasibility of a point within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lo - tol || x > v.hi + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * values[v.index()]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_assigns_sequential_ids() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var("a", 0.0, 1.0, 1.0);
        let b = p.add_var("b", 0.0, 1.0, 1.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.num_vars(), 2);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var("a", 0.0, 10.0, 1.0);
        p.add_le(&[(a, 1.0), (a, 2.0)], 6.0);
        assert_eq!(p.constraints[0].terms, vec![(a, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_var("a", 0.0, 10.0, 1.0);
        let b = p.add_var("b", 0.0, 10.0, 1.0);
        p.add_ge(&[(a, 0.0), (b, 1.0)], 1.0);
        assert_eq!(p.constraints[0].terms, vec![(b, 1.0)]);
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let v = p.add_var("x", 2.0, 1.0, 0.0);
        match p.validate() {
            Err(LpError::BadBounds { var, .. }) => assert_eq!(var, v),
            other => panic!("expected BadBounds, got {other:?}"),
        }
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 5.0, 1.0);
        let y = p.add_var("y", 0.0, 5.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 6.0);
        assert!(p.is_feasible(&[3.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 3.0], 1e-9)); // row violated
        assert!(!p.is_feasible(&[6.0, 0.0], 1e-9)); // bound violated
    }

    #[test]
    fn objective_at_dot_product() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, 5.0, 3.0);
        let _y = p.add_var("y", 0.0, 5.0, -1.0);
        assert_eq!(p.objective_at(&[2.0, 4.0]), 2.0);
    }
}
