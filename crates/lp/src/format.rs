//! CPLEX-LP text format: writer and parser.
//!
//! Two reasons this module exists. First, it is how real tool-chains
//! interoperate: PuLP (the solver the paper's participant A ended up
//! with) always serialises the model to an `.lp` file and hands it to a
//! CBC subprocess, so [`crate::dense::DenseSimplex`] — the PuLP/CBC
//! stand-in — round-trips every model through this format to reproduce
//! that pipeline's per-solve overhead with *real* work rather than a
//! timer. Second, dumping an LP is invaluable when debugging a TE
//! formulation.
//!
//! The dialect covers what this workspace generates: an objective,
//! `Subject To`, `Bounds` with `-inf`/`+inf`, and `End`.

use crate::model::{ConstraintOp, Problem, Sense};

/// Serialise `p` to CPLEX LP text.
pub fn write_lp(p: &Problem) -> String {
    // Canonical `v{i}` column names: user-chosen names need not be
    // unique, and the round-trip must preserve VarId assignment.
    let mut out = String::with_capacity(64 * (p.num_vars() + p.num_constraints()));
    out.push_str(match p.sense() {
        Sense::Maximize => "Maximize\n",
        Sense::Minimize => "Minimize\n",
    });
    out.push_str(" obj:");
    // Every column appears in the objective (zero coefficients
    // included) so the parser's first-appearance ordering reproduces
    // the original VarId assignment exactly.
    let mut first = true;
    for i in 0..p.num_vars() {
        let v = crate::VarId(i as u32);
        let c = p.vars[i].obj;
        push_term(&mut out, c, &format!("v{}", v.index()), first);
        first = false;
    }
    if first {
        out.push_str(" 0 x0_dummy");
    }
    out.push('\n');

    out.push_str("Subject To\n");
    for (ci, con) in p.constraints.iter().enumerate() {
        out.push_str(&format!(" c{ci}:"));
        let mut first = true;
        for &(v, c) in &con.terms {
            push_term(&mut out, c, &format!("v{}", v.index()), first);
            first = false;
        }
        if first {
            out.push_str(" 0 x0_dummy");
        }
        let op = match con.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        out.push_str(&format!(" {op} {}\n", fmt(con.rhs)));
    }

    out.push_str("Bounds\n");
    for i in 0..p.num_vars() {
        let v = crate::VarId(i as u32);
        let (lo, hi) = p.var_bounds(v);
        let name = format!("v{}", v.index());
        // Default in LP format is [0, +inf); write anything else.
        match (lo == 0.0, hi.is_infinite() && hi > 0.0) {
            (true, true) => {}
            _ => {
                let lo_s = if lo.is_infinite() { "-inf".to_string() } else { fmt(lo) };
                let hi_s = if hi.is_infinite() { "+inf".to_string() } else { fmt(hi) };
                out.push_str(&format!(" {lo_s} <= {name} <= {hi_s}\n"));
            }
        }
    }
    out.push_str("End\n");
    out
}

fn push_term(out: &mut String, c: f64, name: &str, first: bool) {
    if c >= 0.0 && !first {
        out.push_str(&format!(" + {} {}", fmt(c), name));
    } else if c >= 0.0 {
        out.push_str(&format!(" {} {}", fmt(c), name));
    } else {
        out.push_str(&format!(" - {} {}", fmt(-c), name));
    }
}

fn fmt(v: f64) -> String {
    // Full round-trip precision (the solver must see identical numbers).
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Parse error for LP text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LP parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse CPLEX LP text produced by [`write_lp`] back into a problem.
/// Variable order follows first appearance, so a write→parse round trip
/// over a [`write_lp`] output preserves `VarId` assignment.
pub fn parse_lp(text: &str) -> Result<Problem, ParseError> {
    #[derive(PartialEq)]
    enum Section {
        Objective,
        Constraints,
        Bounds,
        Done,
    }
    let mut sense = None;
    let mut section = None;
    let mut names: std::collections::HashMap<String, crate::VarId> = Default::default();
    // (terms, op, rhs) rows staged until all variables are known.
    type StagedRow = (Vec<(String, f64)>, ConstraintOp, f64);
    let mut obj_terms: Vec<(String, f64)> = Vec::new();
    let mut rows: Vec<StagedRow> = Vec::new();
    let mut bounds: Vec<(String, f64, f64)> = Vec::new();

    let err = |line: usize, m: &str| ParseError { line, message: m.to_string() };

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lno = ln + 1;
        if line.is_empty() || line.starts_with('\\') {
            continue;
        }
        match line.to_ascii_lowercase().as_str() {
            "maximize" | "max" => {
                sense = Some(Sense::Maximize);
                section = Some(Section::Objective);
                continue;
            }
            "minimize" | "min" => {
                sense = Some(Sense::Minimize);
                section = Some(Section::Objective);
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Some(Section::Constraints);
                continue;
            }
            "bounds" => {
                section = Some(Section::Bounds);
                continue;
            }
            "end" => {
                section = Some(Section::Done);
                continue;
            }
            _ => {}
        }
        match section {
            Some(Section::Objective) => {
                let body = line.split_once(':').map(|(_, b)| b).unwrap_or(line);
                obj_terms.extend(parse_terms(body).map_err(|m| err(lno, &m))?);
            }
            Some(Section::Constraints) => {
                let body = line.split_once(':').map(|(_, b)| b).unwrap_or(line);
                let (lhs, op, rhs) = split_relation(body).ok_or_else(|| err(lno, "no relation"))?;
                let terms = parse_terms(lhs).map_err(|m| err(lno, &m))?;
                let rhs: f64 = rhs.trim().parse().map_err(|_| err(lno, "bad rhs"))?;
                rows.push((terms, op, rhs));
            }
            Some(Section::Bounds) => {
                // form: lo <= name <= hi
                let parts: Vec<&str> = line.split("<=").map(|s| s.trim()).collect();
                if parts.len() != 3 {
                    return Err(err(lno, "unsupported bound form"));
                }
                let lo = parse_inf(parts[0]).ok_or_else(|| err(lno, "bad lower bound"))?;
                let hi = parse_inf(parts[2]).ok_or_else(|| err(lno, "bad upper bound"))?;
                bounds.push((parts[1].to_string(), lo, hi));
            }
            Some(Section::Done) | None => {
                return Err(err(lno, "content outside any section"));
            }
        }
    }

    let sense = sense.ok_or_else(|| err(0, "no objective sense"))?;
    let mut problem = Problem::new(sense);
    let mut ensure = |problem: &mut Problem, name: &str| -> crate::VarId {
        if let Some(&v) = names.get(name) {
            v
        } else {
            let v = problem.add_var(name, 0.0, f64::INFINITY, 0.0);
            names.insert(name.to_string(), v);
            v
        }
    };
    for (name, c) in &obj_terms {
        let v = ensure(&mut problem, name);
        let cur = problem.vars[v.index()].obj;
        problem.set_obj(v, cur + c);
    }
    for (terms, op, rhs) in rows {
        let ids: Vec<(crate::VarId, f64)> =
            terms.iter().map(|(n, c)| (ensure(&mut problem, n), *c)).collect();
        problem.add_constraint(&ids, op, rhs);
    }
    for (name, lo, hi) in bounds {
        let v = ensure(&mut problem, &name);
        problem.vars[v.index()].lo = lo;
        problem.vars[v.index()].hi = hi;
    }
    Ok(problem)
}

fn parse_inf(s: &str) -> Option<f64> {
    match s {
        "-inf" => Some(f64::NEG_INFINITY),
        "+inf" | "inf" => Some(f64::INFINITY),
        _ => s.parse().ok(),
    }
}

fn split_relation(body: &str) -> Option<(&str, ConstraintOp, &str)> {
    for (pat, op) in [("<=", ConstraintOp::Le), (">=", ConstraintOp::Ge), ("=", ConstraintOp::Eq)] {
        if let Some(pos) = body.find(pat) {
            return Some((&body[..pos], op, &body[pos + pat.len()..]));
        }
    }
    None
}

/// Parse `± coef name ± coef name …` (coefficient always explicit, the
/// form [`write_lp`] emits).
fn parse_terms(body: &str) -> Result<Vec<(String, f64)>, String> {
    let tokens: Vec<&str> = body.split_whitespace().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut sign = 1.0;
    while i < tokens.len() {
        match tokens[i] {
            "+" => {
                sign = 1.0;
                i += 1;
            }
            "-" => {
                sign = -1.0;
                i += 1;
            }
            t => {
                let coef: f64 = t.parse().map_err(|_| format!("bad coefficient '{t}'"))?;
                let name = tokens.get(i + 1).ok_or("dangling coefficient")?;
                out.push((name.to_string(), sign * coef));
                sign = 1.0;
                i += 2;
            }
        }
    }
    // Drop placeholder zero terms.
    out.retain(|(n, c)| !(n == "x0_dummy" && *c == 0.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revised::RevisedSimplex;
    use crate::{LpSolver, Status};

    fn sample() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 1.0, 8.0, 2.0);
        let z = p.add_var("z", f64::NEG_INFINITY, f64::INFINITY, -1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_ge(&[(x, 2.0), (z, -1.5)], -3.0);
        p.add_eq(&[(y, 1.0), (z, 1.0)], 2.0);
        p
    }

    #[test]
    fn writer_emits_sections() {
        let text = write_lp(&sample());
        for s in ["Maximize", "Subject To", "Bounds", "End"] {
            assert!(text.contains(s), "missing section {s} in:\n{text}");
        }
    }

    #[test]
    fn round_trip_preserves_shape() {
        let p = sample();
        let back = parse_lp(&write_lp(&p)).expect("parse");
        assert_eq!(back.num_vars(), p.num_vars());
        assert_eq!(back.num_constraints(), p.num_constraints());
        assert_eq!(back.sense(), p.sense());
        for i in 0..p.num_vars() {
            let v = crate::VarId(i as u32);
            assert_eq!(back.var_bounds(v), p.var_bounds(v), "bounds of var {i}");
        }
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let p = sample();
        let back = parse_lp(&write_lp(&p)).expect("parse");
        let s1 = RevisedSimplex::default().solve(&p).unwrap();
        let s2 = RevisedSimplex::default().solve(&back).unwrap();
        assert_eq!(s1.status, Status::Optimal);
        assert_eq!(s2.status, Status::Optimal);
        assert!((s1.objective - s2.objective).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_and_coefficients_survive() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, -2.5);
        p.add_ge(&[(x, -1.0)], -7.5);
        let back = parse_lp(&write_lp(&p)).unwrap();
        let s1 = RevisedSimplex::default().solve(&p).unwrap();
        let s2 = RevisedSimplex::default().solve(&back).unwrap();
        assert!((s1.objective - s2.objective).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_lp("this is not an lp").is_err());
        assert!(parse_lp("Maximize\n obj: 1 x\nSubject To\n c0: 1 x 4\nEnd\n").is_err());
    }

    #[test]
    fn empty_objective_round_trips() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 5.0, 0.0);
        p.add_ge(&[(x, 1.0)], 1.0);
        let back = parse_lp(&write_lp(&p)).unwrap();
        let s = RevisedSimplex::default().solve(&back).unwrap();
        assert_eq!(s.status, Status::Optimal);
    }
}
