//! Sparse LU factorization of a simplex basis, plus the product-form
//! eta file layered on top of it.
//!
//! The factorization is a left-looking column LU with partial pivoting
//! (max-magnitude pivot, ties broken toward the smallest original row
//! index — a fixed rule, so the factor is a canonical function of the
//! basis columns). `L` is stored as per-column multiplier lists in
//! original-row space, `U` column-wise in pivot-position space. Between
//! refactorizations each pivot appends one [`Eta`] (the entering
//! column's ftran image), so ftran/btran cost `O(lu_nnz + eta_nnz)`
//! instead of the dense `O(m²)` the old explicit `B⁻¹` paid.

/// Pivots smaller than this during factorization mean the basis is
/// numerically singular in that direction.
const SINGULAR_TOL: f64 = 1e-11;

/// Entries this small after elimination are dropped from the factors
/// (they are numerical noise and would only bloat the nnz counts that
/// drive the refactorization policy).
const DROP_TOL: f64 = 1e-13;

/// One product-form update: after the pivot that replaced basis
/// position `r`, `B_new = B_old · E` where `E` is the identity with
/// column `r` swapped for `w = B_old⁻¹ a_entering`.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// Basis position replaced by the pivot.
    pub r: usize,
    /// Nonzeros of `w` (basis-position index, value), including the
    /// pivot element at position `r`.
    pub w: Vec<(usize, f64)>,
    /// `w[r]`, kept separate so apply loops skip a search.
    pub pivot: f64,
}

impl Eta {
    /// Build an eta from the dense ftran image `w` of the entering
    /// column. Returns `None` when the pivot element is too small to
    /// divide by (the caller should refactorize instead of stacking an
    /// unstable eta).
    pub fn from_dense(w: &[f64], r: usize) -> Option<Eta> {
        let pivot = w[r];
        if pivot.abs() < 1e-10 {
            return None;
        }
        let mut nz = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if v != 0.0 {
                nz.push((i, v));
            }
        }
        Some(Eta { r, w: nz, pivot })
    }

    pub fn nnz(&self) -> usize {
        self.w.len()
    }

    /// `x ← E⁻¹ x` (ftran direction; creation order).
    pub fn apply_ftran(&self, x: &mut [f64]) {
        let xr = x[self.r] / self.pivot;
        for &(i, w) in &self.w {
            if i != self.r {
                x[i] -= w * xr;
            }
        }
        x[self.r] = xr;
    }

    /// `c ← c E⁻¹` (btran direction; reverse creation order).
    pub fn apply_btran(&self, c: &mut [f64]) {
        let mut s = 0.0;
        for &(i, w) in &self.w {
            if i != self.r {
                s += w * c[i];
            }
        }
        c[self.r] = (c[self.r] - s) / self.pivot;
    }
}

/// `P B = L U` for one basis matrix `B` given column-wise.
///
/// * `perm[k]` — original row that pivots at elimination step `k`.
/// * `l_cols[k]` — multipliers `(orig_row, l)` eliminating step `k`'s
///   pivot row from the still-unpivoted rows.
/// * `u_cols[k]` — strictly-upper entries `(j, u)` of `U`'s column `k`
///   in pivot-position space, with the diagonal split into `u_diag`.
#[derive(Debug)]
pub(crate) struct SparseLu {
    m: usize,
    perm: Vec<usize>,
    l_cols: Vec<Vec<(usize, f64)>>,
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    nnz: usize,
}

impl SparseLu {
    /// The factor of the identity basis (the artificial start): trivial
    /// permutation, empty `L`/`U` off-diagonals, unit diagonal. Never
    /// fails, which keeps the cold-start constructor infallible.
    pub fn identity(m: usize) -> SparseLu {
        SparseLu {
            m,
            perm: (0..m).collect(),
            l_cols: vec![Vec::new(); m],
            u_cols: vec![Vec::new(); m],
            u_diag: vec![1.0; m],
            nnz: m,
        }
    }

    /// Factorize the `m × m` matrix whose `k`-th column's nonzeros are
    /// `cols[k]` (original-row index, value). Returns `None` when a
    /// pivot column goes numerically singular.
    pub fn factorize(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<SparseLu> {
        debug_assert_eq!(cols.len(), m);
        const UNSET: usize = usize::MAX;
        let mut perm = Vec::with_capacity(m);
        let mut pos = vec![UNSET; m];
        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);
        let mut nnz = 0usize;
        // Dense scatter workspace in original-row space.
        let mut x = vec![0.0; m];

        for col in cols.iter() {
            for &(r, v) in col {
                x[r] += v;
            }
            // Left-looking elimination: subtract the contribution of
            // every earlier pivot column whose pivot row carries a
            // nonzero. Scanning steps in order keeps the arithmetic
            // sequence (and thus the factor) deterministic.
            let mut ucol = Vec::new();
            for (j, &lrow) in perm.iter().enumerate() {
                let ujk: f64 = x[lrow];
                if ujk == 0.0 {
                    continue;
                }
                x[lrow] = 0.0;
                if ujk.abs() > DROP_TOL {
                    ucol.push((j, ujk));
                    for &(row, l) in &l_cols[j] {
                        x[row] -= l * ujk;
                    }
                }
            }
            // Partial pivoting over the unpivoted rows: max |value|,
            // ties to the smallest original row index.
            let mut prow = UNSET;
            let mut pval = 0.0f64;
            for (row, &v) in x.iter().enumerate() {
                if pos[row] == UNSET && v.abs() > pval.abs() {
                    prow = row;
                    pval = v;
                }
            }
            if prow == UNSET || pval.abs() < SINGULAR_TOL {
                return None;
            }
            let mut lcol = Vec::new();
            for (row, v) in x.iter_mut().enumerate() {
                if *v == 0.0 {
                    continue;
                }
                if row != prow && pos[row] == UNSET {
                    let l = *v / pval;
                    if l.abs() > DROP_TOL {
                        lcol.push((row, l));
                    }
                }
                *v = 0.0;
            }
            let k = perm.len();
            pos[prow] = k;
            perm.push(prow);
            nnz += lcol.len() + ucol.len() + 1;
            l_cols.push(lcol);
            u_cols.push(ucol);
            u_diag.push(pval);
        }
        Some(SparseLu { m, perm, l_cols, u_cols, u_diag, nnz })
    }

    /// Total stored nonzeros across `L`, `U` and the diagonal.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Solve `B x = b`. `b` arrives in original-row space; the result
    /// is written back into `b` in *basis-position* space (`b[k]` is
    /// the coefficient of basis column `k`).
    pub fn ftran(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        // Forward solve L y = P b, y in pivot-position space. y[k]
        // overwrites b[perm[k]] only after that slot has been consumed,
        // so stage through a scratch read of the pivot row first.
        let mut y = vec![0.0; self.m];
        for (k, &prow) in self.perm.iter().enumerate() {
            let yk = b[prow];
            y[k] = yk;
            if yk != 0.0 {
                for &(row, l) in &self.l_cols[k] {
                    b[row] -= l * yk;
                }
            }
        }
        // Back solve U x = y in pivot-position space.
        for k in (0..self.m).rev() {
            let xk = y[k] / self.u_diag[k];
            y[k] = xk;
            if xk != 0.0 {
                for &(j, u) in &self.u_cols[k] {
                    y[j] -= u * xk;
                }
            }
        }
        b.copy_from_slice(&y);
    }

    /// Solve `yᵀ B = cᵀ`. `c` arrives in basis-position space; the
    /// result is written back into `c` in *original-row* space (the
    /// dual vector indexed by constraint row).
    pub fn btran(&self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Forward solve Uᵀ z = c (Uᵀ is lower triangular; u_cols[k]
        // holds exactly U's column k, i.e. Uᵀ's row k).
        let mut z = vec![0.0; self.m];
        for k in 0..self.m {
            let mut s = c[k];
            for &(j, u) in &self.u_cols[k] {
                s -= u * z[j];
            }
            z[k] = s / self.u_diag[k];
        }
        // Back solve Lᵀ v = z into original-row space: row k of Lᵀ is
        // the unit diagonal at perm[k] plus l_cols[k]'s entries, all of
        // which sit in rows that pivot *later* and are already solved.
        let mut v = vec![0.0; self.m];
        for k in (0..self.m).rev() {
            let mut s = z[k];
            for &(row, l) in &self.l_cols[k] {
                s -= l * v[row];
            }
            v[self.perm[k]] = s;
        }
        c.copy_from_slice(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Dense reference: invert via Gauss-Jordan (the representation the
    /// old revised simplex carried around), then multiply.
    struct DenseInv {
        m: usize,
        inv: Vec<f64>,
    }

    impl DenseInv {
        fn build(m: usize, cols: &[Vec<(usize, f64)>]) -> Option<DenseInv> {
            let mut a = vec![0.0; m * m];
            for (k, col) in cols.iter().enumerate() {
                for &(r, v) in col {
                    a[r * m + k] += v;
                }
            }
            let mut inv = vec![0.0; m * m];
            for i in 0..m {
                inv[i * m + i] = 1.0;
            }
            for c in 0..m {
                let mut p = c;
                for r in c + 1..m {
                    if a[r * m + c].abs() > a[p * m + c].abs() {
                        p = r;
                    }
                }
                if a[p * m + c].abs() < SINGULAR_TOL {
                    return None;
                }
                if p != c {
                    for j in 0..m {
                        a.swap(p * m + j, c * m + j);
                        inv.swap(p * m + j, c * m + j);
                    }
                }
                let d = a[c * m + c];
                for j in 0..m {
                    a[c * m + j] /= d;
                    inv[c * m + j] /= d;
                }
                for r in 0..m {
                    if r == c {
                        continue;
                    }
                    let f = a[r * m + c];
                    if f == 0.0 {
                        continue;
                    }
                    for j in 0..m {
                        a[r * m + j] -= f * a[c * m + j];
                        inv[r * m + j] -= f * inv[c * m + j];
                    }
                }
            }
            Some(DenseInv { m, inv })
        }

        /// `B⁻¹ b` — what the old `Core::ftran` computed.
        fn ftran(&self, b: &[f64]) -> Vec<f64> {
            (0..self.m)
                .map(|i| (0..self.m).map(|j| self.inv[i * self.m + j] * b[j]).sum())
                .collect()
        }

        /// `c B⁻¹` — what the old `Core::btran` computed.
        fn btran(&self, c: &[f64]) -> Vec<f64> {
            (0..self.m)
                .map(|j| (0..self.m).map(|i| c[i] * self.inv[i * self.m + j]).sum())
                .collect()
        }
    }

    /// Random well-conditioned sparse basis: a diagonally dominant
    /// matrix with random off-diagonal fill, so both the LU and the
    /// dense reference stay numerically honest and comparisons can be
    /// tight. Raw entries are reduced modulo `m` so one fixed-size
    /// generator serves every dimension.
    fn build_basis(m: usize, entries: &[(u32, u32, i32)], diag: &[(i32, bool)]) -> Vec<Vec<(usize, f64)>> {
        let mut cols = vec![Vec::new(); m];
        for (k, col) in cols.iter_mut().enumerate() {
            let (d, neg) = diag[k % diag.len()];
            // Dominant diagonal, magnitude well above the off-diag sum.
            let v = (d as f64 + 4.0 * m as f64) * if neg { -1.0 } else { 1.0 };
            col.push((k, v));
        }
        for &(r, k, v) in entries {
            let (r, k) = (r as usize % m, k as usize % m);
            if v != 0 && r != k {
                cols[k].push((r, v as f64 / 100.0));
            }
        }
        cols
    }

    proptest! {
        /// Sparse-LU ftran must agree with the dense `B⁻¹` multiply the
        /// old solver used, on random bases, to tight tolerance.
        #[test]
        fn ftran_matches_dense_inverse(
            mraw in 2u32..12,
            entries in proptest::collection::vec((0u32..12, 0u32..12, -400i32..400), 0..36),
            diag in proptest::collection::vec((1i32..100, any::<bool>()), 12),
            bvals in proptest::collection::vec(-100i32..100, 12),
        ) {
            let m = mraw as usize;
            let cols = build_basis(m, &entries, &diag);
            let lu = SparseLu::factorize(m, &cols);
            let dense = DenseInv::build(m, &cols);
            prop_assert_eq!(lu.is_some(), dense.is_some());
            let (Some(lu), Some(dense)) = (lu, dense) else { return Ok(()) };
            let b: Vec<f64> = (0..m).map(|i| bvals[i] as f64 / 10.0).collect();
            let want = dense.ftran(&b);
            let mut got = b;
            lu.ftran(&mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-6 * (1.0 + w.abs()),
                    "ftran diverged: {} vs {}", g, w);
            }
        }

        /// Same for btran against the dense row combination.
        #[test]
        fn btran_matches_dense_inverse(
            mraw in 2u32..12,
            entries in proptest::collection::vec((0u32..12, 0u32..12, -400i32..400), 0..36),
            diag in proptest::collection::vec((1i32..100, any::<bool>()), 12),
            cvals in proptest::collection::vec(-100i32..100, 12),
        ) {
            let m = mraw as usize;
            let cols = build_basis(m, &entries, &diag);
            let lu = SparseLu::factorize(m, &cols);
            let dense = DenseInv::build(m, &cols);
            prop_assert_eq!(lu.is_some(), dense.is_some());
            let (Some(lu), Some(dense)) = (lu, dense) else { return Ok(()) };
            let c: Vec<f64> = (0..m).map(|i| cvals[i] as f64 / 10.0).collect();
            let want = dense.btran(&c);
            let mut got = c;
            lu.btran(&mut got);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-6 * (1.0 + w.abs()),
                    "btran diverged: {} vs {}", g, w);
            }
        }

        /// Product-form etas must keep ftran/btran consistent with a
        /// from-scratch refactorization of the updated basis.
        #[test]
        fn eta_updates_match_refactorization(
            mraw in 3u32..10,
            entries in proptest::collection::vec((0u32..10, 0u32..10, -400i32..400), 0..30),
            diag in proptest::collection::vec((1i32..100, any::<bool>()), 10),
            rpos in 0u32..10,
            bvals in proptest::collection::vec(-100i32..100, 10),
        ) {
            let m = mraw as usize;
            let r = rpos as usize % m;
            let mut cols = build_basis(m, &entries, &diag);
            let lu = SparseLu::factorize(m, &cols);
            let Some(lu) = lu else { return Ok(()) };
            // Entering column: a dense-ish well-scaled vector.
            let a_q: Vec<(usize, f64)> = (0..m)
                .map(|i| (i, 1.0 + ((i * 7 + 3) % 5) as f64))
                .collect();
            let mut w = vec![0.0; m];
            for &(row, v) in &a_q {
                w[row] = v;
            }
            lu.ftran(&mut w);
            let Some(eta) = Eta::from_dense(&w, r) else { return Ok(()) };

            // Reference: refactorize the updated basis outright.
            cols[r] = a_q;
            let Some(fresh) = SparseLu::factorize(m, &cols) else { return Ok(()) };

            let b: Vec<f64> = (0..m).map(|i| bvals[i] as f64 / 10.0).collect();
            let mut via_eta = b.clone();
            lu.ftran(&mut via_eta);
            eta.apply_ftran(&mut via_eta);
            let mut via_fresh = b;
            fresh.ftran(&mut via_fresh);
            for (g, wv) in via_eta.iter().zip(&via_fresh) {
                prop_assert!((g - wv).abs() < 1e-5 * (1.0 + wv.abs()),
                    "eta ftran diverged: {} vs {}", g, wv);
            }

            let c: Vec<f64> = (0..m).map(|i| ((i * 11 + 1) % 7) as f64 - 3.0).collect();
            let mut cb_eta = c.clone();
            eta.apply_btran(&mut cb_eta);
            lu.btran(&mut cb_eta);
            let mut cb_fresh = c;
            fresh.btran(&mut cb_fresh);
            for (g, wv) in cb_eta.iter().zip(&cb_fresh) {
                prop_assert!((g - wv).abs() < 1e-5 * (1.0 + wv.abs()),
                    "eta btran diverged: {} vs {}", g, wv);
            }
        }
    }

    #[test]
    fn identity_roundtrip() {
        let m = 4;
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|k| vec![(k, 1.0)]).collect();
        let lu = SparseLu::factorize(m, &cols).expect("identity factors");
        let mut x = vec![3.0, -1.0, 0.5, 2.0];
        lu.ftran(&mut x);
        assert_eq!(x, vec![3.0, -1.0, 0.5, 2.0]);
        lu.btran(&mut x);
        assert_eq!(x, vec![3.0, -1.0, 0.5, 2.0]);
    }

    #[test]
    fn singular_matrix_is_refused() {
        let m = 3;
        // Two identical columns.
        let cols = vec![
            vec![(0, 1.0), (1, 2.0)],
            vec![(0, 1.0), (1, 2.0)],
            vec![(2, 1.0)],
        ];
        assert!(SparseLu::factorize(m, &cols).is_none());
    }

    #[test]
    fn permuted_system_solves_exactly() {
        // A permutation matrix exercises the pivoting bookkeeping.
        let m = 4;
        let cols = vec![
            vec![(2, 1.0)],
            vec![(0, 1.0)],
            vec![(3, 1.0)],
            vec![(1, 1.0)],
        ];
        let lu = SparseLu::factorize(m, &cols).expect("permutation factors");
        // B x = e_2 → x picks the column hitting row 2, i.e. position 0.
        let mut x = vec![0.0, 0.0, 1.0, 0.0];
        lu.ftran(&mut x);
        assert_eq!(x, vec![1.0, 0.0, 0.0, 0.0]);
    }
}
