//! A sparse revised simplex — the "Gurobi stand-in".
//!
//! The solver keeps an explicit dense basis inverse `B⁻¹` (refactorised
//! from scratch periodically for numerical hygiene), prices columns with
//! Dantzig's rule through the sparse constraint columns, and falls back
//! to Bland's rule when a run of degenerate pivots suggests cycling.
//! Combined with [`crate::presolve`], it is one to two orders of
//! magnitude faster than [`crate::dense::DenseSimplex`] on the
//! traffic-engineering LPs in this workspace — the gap Table A measures.

use crate::cache::Fnv;
use crate::presolve::presolve;
use crate::standard::StandardLp;
use crate::{LpError, LpSolver, Problem, Solution, Status};

const TOL: f64 = 1e-9;
const REFACTOR_EVERY: u64 = 256;
const DEGENERATE_SWITCH: u32 = 40;

/// An optimal basis exported from one solve, reusable as a warm start
/// for the next ([`RevisedSimplex::solve_with_basis`]).
///
/// The basis is only valid against a standard form with the *same*
/// constraint matrix `A` — objective and right-hand side may change
/// freely (that is exactly the re-solve pattern NCFlow's R1/R2 loops
/// produce). `structure` fingerprints the post-presolve matrix so a
/// stale basis is detected and silently ignored rather than misused.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Basis column indices into the standard form (no artificials).
    cols: Vec<usize>,
    /// Fingerprint of the standard-form structure the basis came from.
    structure: u64,
}

/// Fingerprint of the structural part of a standard form: dimensions
/// and the exact sparse constraint matrix, but neither `b` nor `c`.
fn structure_fingerprint(std: &StandardLp) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(std.m as u64);
    h.write_u64(std.n() as u64);
    for col in &std.cols {
        h.write_u64(col.len() as u64);
        for &(r, v) in col {
            h.write_u64(r as u64);
            h.write_f64(v);
        }
    }
    h.finish()
}

/// The revised-simplex solver. See the module docs.
#[derive(Debug, Clone)]
pub struct RevisedSimplex {
    /// Hard pivot limit; the default scales with problem size.
    pub max_iterations: Option<u64>,
    /// Whether to run presolve first (on by default).
    pub presolve: bool,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex { max_iterations: None, presolve: true }
    }
}

/// Dense row-major `m × m` matrix.
struct Square {
    m: usize,
    a: Vec<f64>,
}

impl Square {
    fn identity(m: usize) -> Self {
        let mut a = vec![0.0; m * m];
        for i in 0..m {
            a[i * m + i] = 1.0;
        }
        Square { m, a }
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.a[i * self.m..(i + 1) * self.m]
    }
}

struct Core<'a> {
    std: &'a StandardLp,
    /// Sparse columns including the artificial identity block.
    n_real: usize,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    binv: Square,
    xb: Vec<f64>,
    iterations: u64,
    degenerate_run: u32,
}

enum Step {
    Optimal,
    Unbounded,
    Pivoted,
}

impl<'a> Core<'a> {
    fn new(std: &'a StandardLp) -> Self {
        let m = std.m;
        let n_real = std.n();
        let n_total = n_real + m;
        let mut in_basis = vec![false; n_total];
        for slot in in_basis.iter_mut().skip(n_real) {
            *slot = true;
        }
        Core {
            std,
            n_real,
            basis: (n_real..n_total).collect(),
            in_basis,
            binv: Square::identity(m),
            xb: std.b.clone(),
            iterations: 0,
            degenerate_run: 0,
        }
    }

    /// Seed a core from a prior optimal basis instead of the artificial
    /// identity. Returns `None` when the basis matrix turns out singular
    /// or the implied point is infeasible for the (possibly new) `b` —
    /// the caller then falls back to the ordinary two-phase cold start.
    fn with_basis(std: &'a StandardLp, cols: Vec<usize>) -> Option<Self> {
        let m = std.m;
        let n_real = std.n();
        if cols.len() != m || cols.iter().any(|&j| j >= n_real) {
            return None;
        }
        let mut in_basis = vec![false; n_real + m];
        for &j in &cols {
            if in_basis[j] {
                return None; // repeated column: not a basis
            }
            in_basis[j] = true;
        }
        let mut core = Core {
            std,
            n_real,
            basis: cols,
            in_basis,
            binv: Square::identity(m),
            xb: std.b.clone(),
            iterations: 0,
            degenerate_run: 0,
        };
        // One refactorisation replaces the whole of phase 1.
        if !core.refactorise() {
            return None;
        }
        if core.xb.iter().any(|&x| x < -TOL) {
            return None; // prior basis is primal-infeasible for this b
        }
        for x in &mut core.xb {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        Some(core)
    }

    /// Sparse column `j` (artificials are unit vectors).
    fn col(&self, j: usize) -> ColRef<'_> {
        if j < self.n_real {
            ColRef::Sparse(&self.std.cols[j])
        } else {
            ColRef::Unit(j - self.n_real)
        }
    }

    /// `w = B⁻¹ a_j`.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.std.m;
        let mut w = vec![0.0; m];
        match self.col(j) {
            ColRef::Unit(r) => {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi = self.binv.a[i * m + r];
                }
            }
            ColRef::Sparse(col) => {
                for &(r, v) in col {
                    for (i, wi) in w.iter_mut().enumerate() {
                        *wi += self.binv.a[i * m + r] * v;
                    }
                }
            }
        }
        w
    }

    /// `y = c_B B⁻¹`.
    fn btran(&self, c: &dyn Fn(usize) -> f64) -> Vec<f64> {
        let m = self.std.m;
        let mut y = vec![0.0; m];
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = c(b);
            if cb != 0.0 {
                let row = self.binv.row(i);
                for j in 0..m {
                    y[j] += cb * row[j];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], c: &dyn Fn(usize) -> f64) -> f64 {
        let dot = match self.col(j) {
            ColRef::Unit(r) => y[r],
            ColRef::Sparse(col) => col.iter().map(|&(r, v)| y[r] * v).sum(),
        };
        c(j) - dot
    }

    /// One simplex pivot under cost `c`, with entering candidates drawn
    /// from `0..allow_below`.
    fn step(&mut self, c: &dyn Fn(usize) -> f64, allow_below: usize) -> Step {
        let y = self.btran(c);
        let use_bland = self.degenerate_run >= DEGENERATE_SWITCH;
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..allow_below {
            if self.in_basis[j] {
                continue;
            }
            let rj = self.reduced_cost(j, &y, c);
            if rj < -TOL {
                if use_bland {
                    entering = Some((j, rj));
                    break;
                }
                match entering {
                    Some((_, best)) if rj >= best => {}
                    _ => entering = Some((j, rj)),
                }
            }
        }
        let Some((q, _)) = entering else { return Step::Optimal };

        let w = self.ftran(q);
        let mut leave: Option<(usize, f64)> = None;
        for (i, &wi) in w.iter().enumerate().take(self.std.m) {
            if wi > TOL {
                let theta = self.xb[i] / wi;
                let better = match leave {
                    None => true,
                    Some((li, lt)) => {
                        theta < lt - TOL
                            || ((theta - lt).abs() <= TOL && self.basis[i] < self.basis[li])
                    }
                };
                if better {
                    leave = Some((i, theta));
                }
            }
        }
        let Some((lr, theta)) = leave else { return Step::Unbounded };

        if theta <= TOL {
            self.degenerate_run += 1;
        } else {
            self.degenerate_run = 0;
        }

        // Update solution and basis inverse (elementary row ops).
        for (i, &wi) in w.iter().enumerate().take(self.std.m) {
            if i != lr {
                self.xb[i] -= theta * wi;
                if self.xb[i] < 0.0 && self.xb[i] > -TOL {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.xb[lr] = theta;

        let m = self.std.m;
        let piv = w[lr];
        for j in 0..m {
            self.binv.a[lr * m + j] /= piv;
        }
        for (i, &f) in w.iter().enumerate().take(m) {
            if i == lr || f == 0.0 {
                continue;
            }
            for j in 0..m {
                let d = f * self.binv.a[lr * m + j];
                self.binv.a[i * m + j] -= d;
            }
        }

        self.in_basis[self.basis[lr]] = false;
        self.in_basis[q] = true;
        self.basis[lr] = q;
        self.iterations += 1;

        if self.iterations.is_multiple_of(REFACTOR_EVERY) {
            self.refactorise();
        }
        Step::Pivoted
    }

    /// Rebuild `B⁻¹` and `x_B` from scratch via Gauss–Jordan on the
    /// current basis matrix. Returns `false` when a pivot was too small
    /// (the basis is numerically singular in that direction and the
    /// previous estimate was kept).
    fn refactorise(&mut self) -> bool {
        let mut nonsingular = true;
        let m = self.std.m;
        // Assemble B column-wise into an augmented [B | I] system.
        let mut bm = vec![0.0; m * m];
        for (k, &j) in self.basis.iter().enumerate() {
            match self.col(j) {
                ColRef::Unit(r) => bm[r * m + k] = 1.0,
                ColRef::Sparse(col) => {
                    for &(r, v) in col {
                        bm[r * m + k] = v;
                    }
                }
            }
        }
        let mut inv = Square::identity(m);
        // Gauss-Jordan with partial pivoting.
        for c in 0..m {
            let mut p = c;
            for r in c + 1..m {
                if bm[r * m + c].abs() > bm[p * m + c].abs() {
                    p = r;
                }
            }
            if bm[p * m + c].abs() < 1e-12 {
                nonsingular = false;
                continue; // singular direction; keep previous estimate
            }
            if p != c {
                for j in 0..m {
                    bm.swap(p * m + j, c * m + j);
                    inv.a.swap(p * m + j, c * m + j);
                }
            }
            let d = bm[c * m + c];
            for j in 0..m {
                bm[c * m + j] /= d;
                inv.a[c * m + j] /= d;
            }
            for r in 0..m {
                if r == c {
                    continue;
                }
                let f = bm[r * m + c];
                if f == 0.0 {
                    continue;
                }
                for j in 0..m {
                    bm[r * m + j] -= f * bm[c * m + j];
                    inv.a[r * m + j] -= f * inv.a[c * m + j];
                }
            }
        }
        self.binv = inv;
        // x_B = B⁻¹ b
        let mut xb = vec![0.0; m];
        for (i, xbi) in xb.iter_mut().enumerate().take(m) {
            let row = self.binv.row(i);
            let mut s = 0.0;
            for (j, &bj) in self.std.b.iter().enumerate() {
                s += row[j] * bj;
            }
            *xbi = if s.abs() < TOL { 0.0 } else { s };
        }
        self.xb = xb;
        nonsingular
    }

    fn optimise(
        &mut self,
        c: &dyn Fn(usize) -> f64,
        allow_below: usize,
        limit: u64,
    ) -> Result<bool, LpError> {
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit(limit));
            }
            match self.step(c, allow_below) {
                Step::Optimal => return Ok(true),
                Step::Unbounded => return Ok(false),
                Step::Pivoted => {}
            }
        }
    }

    fn objective(&self, c: &dyn Fn(usize) -> f64) -> f64 {
        self.basis.iter().zip(&self.xb).map(|(&b, &x)| c(b) * x).sum()
    }

    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_real];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_real {
                x[b] = self.xb[i];
            }
        }
        x
    }
}

enum ColRef<'a> {
    Sparse(&'a [(usize, f64)]),
    Unit(usize),
}

impl RevisedSimplex {
    /// Solve `problem`, optionally warm-starting from a [`Basis`]
    /// exported by a previous solve of a structurally identical model
    /// (same constraint matrix; objective and RHS may differ).
    ///
    /// A valid warm basis replaces the whole of phase 1 with a single
    /// refactorisation; a stale, singular or infeasible one is ignored
    /// and the ordinary two-phase cold start runs instead, so the
    /// returned `Solution` is optimal either way. The second component
    /// is the optimal basis for chaining into the next solve (`None`
    /// when the optimum retained an artificial column or the model was
    /// decided before the simplex ran).
    pub fn solve_with_basis(
        &self,
        problem: &Problem,
        warm: Option<&Basis>,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        problem.validate()?;
        let pre;
        let effective: &Problem = if self.presolve {
            match presolve(problem) {
                Ok(reduced) => {
                    pre = reduced;
                    &pre
                }
                Err(status) => {
                    return Ok((
                        Solution {
                            status,
                            objective: 0.0,
                            values: vec![0.0; problem.num_vars()],
                            iterations: 0,
                            degraded: false,
                        },
                        None,
                    ))
                }
            }
        } else {
            problem
        };

        let std = StandardLp::from_problem(effective);
        let m = std.m;
        let n = std.n();

        if m == 0 {
            if std.c.iter().any(|&cj| cj < -TOL) {
                return Ok((
                    Solution {
                        status: Status::Unbounded,
                        objective: 0.0,
                        values: vec![0.0; problem.num_vars()],
                        iterations: 0,
                        degraded: false,
                    },
                    None,
                ));
            }
            let (values, objective) = std.recover(effective, &vec![0.0; n]);
            return Ok((
                Solution { status: Status::Optimal, objective, values, iterations: 0, degraded: false },
                None,
            ));
        }

        let limit = self
            .max_iterations
            .unwrap_or_else(|| 50_000u64.max(200 * (m as u64 + n as u64)));

        let structure = structure_fingerprint(&std);
        let warm_core = warm
            .filter(|b| b.structure == structure)
            .and_then(|b| Core::with_basis(&std, b.cols.clone()));

        let mut core = match warm_core {
            // The prior basis is primal-feasible here: skip phase 1.
            Some(core) => core,
            None => {
                let mut core = Core::new(&std);
                let n_real = n;
                let phase1 = move |j: usize| if j >= n_real { 1.0 } else { 0.0 };
                let finished = core.optimise(&phase1, n, limit)?;
                debug_assert!(finished, "phase 1 is bounded below by 0");
                if core.objective(&phase1) > 1e-7 {
                    return Ok((
                        Solution {
                            status: Status::Infeasible,
                            objective: 0.0,
                            values: vec![0.0; problem.num_vars()],
                            iterations: core.iterations,
                            degraded: false,
                        },
                        None,
                    ));
                }
                core
            }
        };

        // Phase 2.
        let c = std.c.clone();
        let phase2 = move |j: usize| if j < c.len() { c[j] } else { 0.0 };
        let bounded = core.optimise(&phase2, n, limit)?;
        if !bounded {
            return Ok((
                Solution {
                    status: Status::Unbounded,
                    objective: 0.0,
                    values: vec![0.0; problem.num_vars()],
                    iterations: core.iterations,
                    degraded: false,
                },
                None,
            ));
        }

        let x = core.extract();
        let (values, objective) = std.recover(effective, &x);
        // Export the basis only when fully structural: an artificial
        // stuck at zero level cannot be reconstructed by `with_basis`.
        let export = if core.basis.iter().all(|&j| j < n) {
            Some(Basis { cols: core.basis.clone(), structure })
        } else {
            None
        };
        Ok((
            Solution {
                status: Status::Optimal,
                objective,
                values,
                iterations: core.iterations,
                degraded: false,
            },
            export,
        ))
    }
}

impl LpSolver for RevisedSimplex {
    fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        self.solve_with_basis(problem, None).map(|(sol, _)| sol)
    }

    fn name(&self) -> &'static str {
        "revised-simplex (Gurobi stand-in)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn solve(p: &Problem) -> Solution {
        RevisedSimplex::default().solve(p).expect("solve")
    }

    #[test]
    fn max_two_vars() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn matches_dense_on_mixed_constraints() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_ge(&[(x, 1.0), (y, 2.0)], 6.0);
        p.add_ge(&[(x, 3.0), (y, 1.0)], 9.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.2).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(&[(x, 1.0)], 1.0);
        p.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_ge(&[(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
        p.add_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], 0.0);
        p.add_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], 0.0);
        p.add_le(&[(z, 1.0)], 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 0.05).abs() < 1e-6);
    }

    #[test]
    fn refactorisation_keeps_accuracy_on_longer_solves() {
        // A transportation-style LP big enough to trigger refactorisation.
        let mut p = Problem::new(Sense::Minimize);
        let srcs = 12;
        let dsts = 12;
        let mut vars = Vec::new();
        for i in 0..srcs {
            for j in 0..dsts {
                let cost = 1.0 + ((i * 7 + j * 13) % 10) as f64;
                vars.push(p.add_var(&format!("x{i}_{j}"), 0.0, f64::INFINITY, cost));
            }
        }
        for i in 0..srcs {
            let row: Vec<_> = (0..dsts).map(|j| (vars[i * dsts + j], 1.0)).collect();
            p.add_eq(&row, 10.0);
        }
        for j in 0..dsts {
            let col: Vec<_> = (0..srcs).map(|i| (vars[i * dsts + j], 1.0)).collect();
            p.add_eq(&col, 10.0);
        }
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(p.is_feasible(&s.values, 1e-5));
        // Cross-check against the dense solver.
        let d = crate::dense::DenseSimplex::default().solve(&p).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-4,
            "revised {} vs dense {}", s.objective, d.objective);
    }

    fn warm_pair() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 2.0)], 14.0);
        p.add_le(&[(x, 3.0), (y, 1.0)], 18.0);
        p
    }

    #[test]
    fn resolving_with_own_basis_takes_zero_pivots() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let p = warm_pair();
        let (cold, basis) = solver.solve_with_basis(&p, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&p, basis.as_ref()).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.iterations, 0, "optimal basis needs no pivots");
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_objective_change_matches_cold() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("structural optimum exports a basis");
        let mut q = warm_pair();
        q.set_obj(crate::VarId(0), 1.0);
        q.set_obj(crate::VarId(1), 4.0);
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_rhs_change_matches_cold() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("basis");
        let mut q = warm_pair();
        q.constraints[0].rhs = 10.0;
        q.constraints[1].rhs = 12.0;
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn stale_basis_is_ignored_not_misused() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("basis");
        let mut q = warm_pair();
        q.add_le(&[(crate::VarId(0), 1.0)], 1.0); // new row: new structure
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn presolve_toggle_agrees() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 7.0, 2.0);
        let y = p.add_var("y", 1.0, 9.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 8.0);
        p.add_le(&[(x, 1.0)], 100.0); // redundant singleton
        let with = RevisedSimplex::default().solve(&p).unwrap();
        let without =
            RevisedSimplex { presolve: false, ..Default::default() }.solve(&p).unwrap();
        assert!((with.objective - without.objective).abs() < 1e-6);
    }
}
