//! A sparse revised simplex — the "Gurobi stand-in".
//!
//! The basis is held as a sparse LU factorization ([`crate::sparse_lu`])
//! plus a product-form eta file that grows by one column per pivot, so
//! ftran/btran cost `O(nnz)` instead of the dense `O(m²)` of the old
//! explicit `B⁻¹`. Refactorization is driven by eta-file growth and a
//! periodic residual drift check, not a fixed cadence. Columns are
//! priced with Devex reference weights and rows leave through a Harris
//! two-pass ratio test — both with fixed deterministic tie-breaks, so
//! the pivot sequence is a canonical function of the input — with
//! Bland's rule taking over when a degenerate run suggests cycling.
//! Combined with [`crate::presolve`], it is one to two orders of
//! magnitude faster than [`crate::dense::DenseSimplex`] on the
//! traffic-engineering LPs in this workspace — the gap Table A measures.

use crate::cache::Fnv;
use crate::presolve::presolve;
use crate::sparse_lu::{Eta, SparseLu};
use crate::standard::StandardLp;
use crate::{LpError, LpSolver, Problem, Solution, Status};

const TOL: f64 = 1e-9;
const DEGENERATE_SWITCH: u32 = 40;
/// Harris pass-1 feasibility relaxation: rows may go this far negative
/// to buy a larger (more stable) pivot in pass 2.
const FEAS_TOL: f64 = 1e-7;
/// Minimum pivot magnitude admitted by the ratio tests.
const RATIO_PIVOT_TOL: f64 = 1e-9;
/// Residual drift check cadence (pivots) and threshold.
const DRIFT_CHECK_EVERY: u64 = 64;
const DRIFT_TOL: f64 = 1e-6;
/// Devex reference-weight overflow: reset the frame past this.
const DEVEX_RESET: f64 = 1e7;

/// Eta-file length that forces a refactorization (on top of the nnz
/// trigger): the classic `64 + m/4` compromise between update cost and
/// refactorization cost.
fn eta_limit(m: usize) -> usize {
    64 + m / 4
}

/// An optimal basis exported from one solve, reusable as a warm start
/// for the next ([`RevisedSimplex::solve_with_basis`]).
///
/// The basis is only valid against a standard form with the *same*
/// constraint matrix `A` — objective and right-hand side may change
/// freely (that is exactly the re-solve pattern NCFlow's R1/R2 loops
/// produce). `structure` fingerprints the post-presolve matrix so a
/// stale basis is detected and silently ignored rather than misused.
#[derive(Debug, Clone)]
pub struct Basis {
    /// Basis column indices into the standard form (no artificials).
    cols: Vec<usize>,
    /// Fingerprint of the standard-form structure the basis came from.
    structure: u64,
}

/// Fingerprint of the structural part of a standard form: dimensions
/// and the exact sparse constraint matrix, but neither `b` nor `c`.
fn structure_fingerprint(std: &StandardLp) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(std.m as u64);
    h.write_u64(std.n() as u64);
    for col in &std.cols {
        h.write_u64(col.len() as u64);
        for &(r, v) in col {
            h.write_u64(r as u64);
            h.write_f64(v);
        }
    }
    h.finish()
}

/// The revised-simplex solver. See the module docs.
#[derive(Debug, Clone)]
pub struct RevisedSimplex {
    /// Hard pivot limit; the default scales with problem size.
    pub max_iterations: Option<u64>,
    /// Whether to run presolve first (on by default).
    pub presolve: bool,
}

impl Default for RevisedSimplex {
    fn default() -> Self {
        RevisedSimplex { max_iterations: None, presolve: true }
    }
}

struct Core<'a> {
    std: &'a StandardLp,
    /// Sparse columns including the artificial identity block.
    n_real: usize,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// LU of the basis at the last (re)factorization…
    factor: SparseLu,
    /// …composed with one eta per pivot since.
    etas: Vec<Eta>,
    eta_nnz: usize,
    xb: Vec<f64>,
    iterations: u64,
    degenerate_run: u32,
    /// Devex reference weights, indexed like `in_basis` (real columns
    /// then artificials); reset to the unit frame per phase.
    devex: Vec<f64>,
}

enum Step {
    Optimal,
    Unbounded,
    Pivoted,
}

impl<'a> Core<'a> {
    fn new(std: &'a StandardLp) -> Self {
        let m = std.m;
        let n_real = std.n();
        let n_total = n_real + m;
        let mut in_basis = vec![false; n_total];
        for slot in in_basis.iter_mut().skip(n_real) {
            *slot = true;
        }
        Core {
            std,
            n_real,
            basis: (n_real..n_total).collect(),
            in_basis,
            factor: SparseLu::identity(m),
            etas: Vec::new(),
            eta_nnz: 0,
            xb: std.b.clone(),
            iterations: 0,
            degenerate_run: 0,
            devex: vec![1.0; n_total],
        }
    }

    /// Seed a core from a prior optimal basis instead of the artificial
    /// identity. Returns `None` when the basis matrix turns out singular
    /// or the implied point is infeasible for the (possibly new) `b` —
    /// the caller then falls back to the ordinary two-phase cold start.
    /// Borrows the candidate columns: nothing is allocated until they
    /// validate (the warm-start hot loop used to clone per call).
    fn with_basis(std: &'a StandardLp, cols: &[usize]) -> Option<Self> {
        let m = std.m;
        let n_real = std.n();
        if cols.len() != m || cols.iter().any(|&j| j >= n_real) {
            return None;
        }
        let mut in_basis = vec![false; n_real + m];
        for &j in cols {
            if in_basis[j] {
                return None; // repeated column: not a basis
            }
            in_basis[j] = true;
        }
        let mut core = Core {
            std,
            n_real,
            basis: cols.to_vec(),
            in_basis,
            factor: SparseLu::identity(m),
            etas: Vec::new(),
            eta_nnz: 0,
            xb: std.b.clone(),
            iterations: 0,
            degenerate_run: 0,
            devex: vec![1.0; n_real + m],
        };
        // One factorization replaces the whole of phase 1.
        if !core.refactorise() {
            return None;
        }
        if core.xb.iter().any(|&x| x < -TOL) {
            return None; // prior basis is primal-infeasible for this b
        }
        for x in &mut core.xb {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
        Some(core)
    }

    /// Materialize the current basis columns for factorization.
    fn basis_cols(&self) -> Vec<Vec<(usize, f64)>> {
        self.basis
            .iter()
            .map(|&j| match self.col(j) {
                ColRef::Unit(r) => vec![(r, 1.0)],
                ColRef::Sparse(col) => col.to_vec(),
            })
            .collect()
    }

    /// Sparse column `j` (artificials are unit vectors).
    fn col(&self, j: usize) -> ColRef<'_> {
        if j < self.n_real {
            ColRef::Sparse(&self.std.cols[j])
        } else {
            ColRef::Unit(j - self.n_real)
        }
    }

    /// `w = B⁻¹ a_j`: sparse gather, LU forward/back solve, then the
    /// eta file in creation order. Result in basis-position space.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.std.m;
        let mut w = vec![0.0; m];
        match self.col(j) {
            ColRef::Unit(r) => w[r] = 1.0,
            ColRef::Sparse(col) => {
                for &(r, v) in col {
                    w[r] += v;
                }
            }
        }
        self.factor.ftran(&mut w);
        for eta in &self.etas {
            eta.apply_ftran(&mut w);
        }
        w
    }

    /// `y = c_B B⁻¹`: eta file in reverse creation order, then the LU
    /// transpose solves. Result in original-row space (the duals).
    fn btran(&self, c: &dyn Fn(usize) -> f64) -> Vec<f64> {
        let mut y: Vec<f64> = Vec::with_capacity(self.std.m);
        y.extend(self.basis.iter().map(|&b| c(b)));
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut y);
        }
        self.factor.btran(&mut y);
        y
    }

    /// `ρ = e_lr B⁻¹` — the pivot row of the inverse, needed by the
    /// Devex weight update.
    fn btran_unit(&self, lr: usize) -> Vec<f64> {
        let mut y = vec![0.0; self.std.m];
        y[lr] = 1.0;
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut y);
        }
        self.factor.btran(&mut y);
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64], c: &dyn Fn(usize) -> f64) -> f64 {
        let dot = match self.col(j) {
            ColRef::Unit(r) => y[r],
            ColRef::Sparse(col) => col.iter().map(|&(r, v)| y[r] * v).sum(),
        };
        c(j) - dot
    }

    /// Devex pricing: maximise `r_j² / w_j` over the improving columns.
    /// Ascending scan with a strict-greater comparison makes the
    /// tie-break "smallest column index" — fixed and deterministic.
    fn price_devex(&self, y: &[f64], c: &dyn Fn(usize) -> f64, allow_below: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..allow_below {
            if self.in_basis[j] {
                continue;
            }
            let rj = self.reduced_cost(j, y, c);
            if rj < -TOL {
                let score = rj * rj / self.devex[j];
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((j, score));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Devex reference-weight update after the pivot `(q, lr)`, using
    /// the pivot row `ρ = e_lr B⁻¹` of the *pre-pivot* basis. Must run
    /// before the eta for this pivot is pushed.
    fn devex_update(&mut self, q: usize, lr: usize, alpha_q: f64, allow_below: usize) {
        let rho = self.btran_unit(lr);
        let wq = self.devex[q].max(1.0);
        let ref_weight = wq / (alpha_q * alpha_q);
        for j in 0..allow_below {
            if self.in_basis[j] || j == q {
                continue;
            }
            let alpha_j = match self.col(j) {
                ColRef::Unit(r) => rho[r],
                ColRef::Sparse(col) => col.iter().map(|&(r, v)| rho[r] * v).sum(),
            };
            if alpha_j != 0.0 {
                let cand = alpha_j * alpha_j * ref_weight;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                }
            }
        }
        // The leaving variable re-enters the nonbasic pool with the
        // reference weight; overflow resets the whole frame.
        self.devex[self.basis[lr]] = ref_weight.max(1.0);
        if ref_weight > DEVEX_RESET {
            self.devex.fill(1.0);
        }
    }

    /// One simplex pivot under cost `c`, with entering candidates drawn
    /// from `0..allow_below`.
    fn step(&mut self, c: &dyn Fn(usize) -> f64, allow_below: usize) -> Step {
        let y = self.btran(c);
        let use_bland = self.degenerate_run >= DEGENERATE_SWITCH;
        let entering = if use_bland {
            (0..allow_below)
                .find(|&j| !self.in_basis[j] && self.reduced_cost(j, &y, c) < -TOL)
        } else {
            self.price_devex(&y, c, allow_below)
        };
        let Some(q) = entering else { return Step::Optimal };

        let w = self.ftran(q);
        let leave = if use_bland {
            textbook_ratio(&w, &self.xb, &self.basis)
        } else {
            harris_ratio(&w, &self.xb, &self.basis)
        };
        let Some(lr) = leave else { return Step::Unbounded };
        let theta = self.xb[lr].max(0.0) / w[lr];

        if theta <= TOL {
            self.degenerate_run += 1;
        } else {
            self.degenerate_run = 0;
        }

        if !use_bland {
            self.devex_update(q, lr, w[lr], allow_below);
        }

        // Update the solution estimate.
        for (i, &wi) in w.iter().enumerate().take(self.std.m) {
            if i != lr {
                self.xb[i] -= theta * wi;
                if self.xb[i] < 0.0 && self.xb[i] > -TOL {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.xb[lr] = theta;

        self.in_basis[self.basis[lr]] = false;
        self.in_basis[q] = true;
        self.basis[lr] = q;
        self.iterations += 1;

        // Product-form update, then the growth/drift-driven
        // refactorization policy (no fixed cadence).
        match Eta::from_dense(&w, lr) {
            Some(eta) => {
                self.eta_nnz += eta.nnz();
                self.etas.push(eta);
                let grown = self.etas.len() >= eta_limit(self.std.m)
                    || self.eta_nnz > 2 * self.factor.nnz() + 64;
                if grown
                    || (self.iterations.is_multiple_of(DRIFT_CHECK_EVERY)
                        && self.drift_exceeded())
                {
                    self.refactorise();
                }
            }
            // Pivot too small for a stable eta: rebuild from scratch.
            None => {
                self.refactorise();
            }
        }
        Step::Pivoted
    }

    /// `‖B x_B − b‖∞` beyond tolerance means the eta-composed estimate
    /// has drifted and a refactorization is due.
    fn drift_exceeded(&self) -> bool {
        let m = self.std.m;
        let mut r = vec![0.0; m];
        for (k, &j) in self.basis.iter().enumerate() {
            let xk = self.xb[k];
            if xk == 0.0 {
                continue;
            }
            match self.col(j) {
                ColRef::Unit(row) => r[row] += xk,
                ColRef::Sparse(col) => {
                    for &(row, v) in col {
                        r[row] += v * xk;
                    }
                }
            }
        }
        let scale = 1.0 + self.std.b.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        r.iter()
            .zip(&self.std.b)
            .any(|(&ri, &bi)| (ri - bi).abs() > DRIFT_TOL * scale)
    }

    /// Rebuild the LU factor and `x_B` from scratch off the current
    /// basis matrix, discarding the eta file. Returns `false` when the
    /// basis is numerically singular (the previous factor and etas are
    /// kept as the best available estimate).
    fn refactorise(&mut self) -> bool {
        let cols = self.basis_cols();
        let Some(factor) = SparseLu::factorize(self.std.m, &cols) else {
            return false;
        };
        self.factor = factor;
        self.etas.clear();
        self.eta_nnz = 0;
        let mut xb = self.std.b.clone();
        self.factor.ftran(&mut xb);
        for x in &mut xb {
            if x.abs() < TOL {
                *x = 0.0;
            }
        }
        self.xb = xb;
        true
    }

    fn optimise(
        &mut self,
        c: &dyn Fn(usize) -> f64,
        allow_below: usize,
        limit: u64,
    ) -> Result<bool, LpError> {
        // Fresh Devex reference frame per phase (the cost vector the
        // weights approximate steepest-edge against has changed).
        self.devex.fill(1.0);
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit(limit));
            }
            match self.step(c, allow_below) {
                Step::Optimal => return Ok(true),
                Step::Unbounded => return Ok(false),
                Step::Pivoted => {}
            }
        }
    }

    fn objective(&self, c: &dyn Fn(usize) -> f64) -> f64 {
        self.basis.iter().zip(&self.xb).map(|(&b, &x)| c(b) * x).sum()
    }

    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_real];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_real {
                x[b] = self.xb[i];
            }
        }
        x
    }
}

enum ColRef<'a> {
    Sparse(&'a [(usize, f64)]),
    Unit(usize),
}

/// Harris two-pass ratio test. Pass 1 relaxes each binding row by
/// [`FEAS_TOL`] to compute the loosest admissible step `θ_max`; pass 2
/// picks, among the rows whose exact ratio fits under `θ_max`, the one
/// with the **largest pivot magnitude** (numerical stability), breaking
/// ties toward the smallest basis variable index. Returns the leaving
/// row, or `None` when the direction is unbounded.
pub(crate) fn harris_ratio(w: &[f64], xb: &[f64], basis: &[usize]) -> Option<usize> {
    let mut theta_max = f64::INFINITY;
    let mut any = false;
    for (i, &wi) in w.iter().enumerate() {
        if wi > RATIO_PIVOT_TOL {
            any = true;
            let bound = (xb[i].max(0.0) + FEAS_TOL) / wi;
            if bound < theta_max {
                theta_max = bound;
            }
        }
    }
    if !any {
        return None;
    }
    let mut best: Option<usize> = None;
    for (i, &wi) in w.iter().enumerate() {
        if wi > RATIO_PIVOT_TOL && xb[i].max(0.0) / wi <= theta_max {
            let better = match best {
                None => true,
                Some(bi) => wi > w[bi] || (wi == w[bi] && basis[i] < basis[bi]),
            };
            if better {
                best = Some(i);
            }
        }
    }
    best
}

/// The textbook single-pass minimum-ratio test (with the smallest-
/// basis-index tie-break the solver has always used under Bland's
/// rule). Kept both as the degenerate-run fallback and as the oracle
/// the Harris test is proptested against.
pub(crate) fn textbook_ratio(w: &[f64], xb: &[f64], basis: &[usize]) -> Option<usize> {
    let mut leave: Option<(usize, f64)> = None;
    for (i, &wi) in w.iter().enumerate() {
        if wi > TOL {
            let theta = xb[i] / wi;
            let better = match leave {
                None => true,
                Some((li, lt)) => {
                    theta < lt - TOL || ((theta - lt).abs() <= TOL && basis[i] < basis[li])
                }
            };
            if better {
                leave = Some((i, theta));
            }
        }
    }
    leave.map(|(i, _)| i)
}

impl RevisedSimplex {
    /// Solve `problem`, optionally warm-starting from a [`Basis`]
    /// exported by a previous solve of a structurally identical model
    /// (same constraint matrix; objective and RHS may differ).
    ///
    /// A valid warm basis replaces the whole of phase 1 with a single
    /// refactorisation; a stale, singular or infeasible one is ignored
    /// and the ordinary two-phase cold start runs instead, so the
    /// returned `Solution` is optimal either way. The second component
    /// is the optimal basis for chaining into the next solve (`None`
    /// when the optimum retained an artificial column or the model was
    /// decided before the simplex ran).
    pub fn solve_with_basis(
        &self,
        problem: &Problem,
        warm: Option<&Basis>,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        problem.validate()?;
        let pre;
        let effective: &Problem = if self.presolve {
            match presolve(problem) {
                Ok(reduced) => {
                    pre = reduced;
                    &pre
                }
                Err(status) => {
                    return Ok((
                        Solution {
                            status,
                            objective: 0.0,
                            values: vec![0.0; problem.num_vars()],
                            iterations: 0,
                            degraded: false,
                        },
                        None,
                    ))
                }
            }
        } else {
            problem
        };

        let std = StandardLp::from_problem(effective);
        let m = std.m;
        let n = std.n();

        if m == 0 {
            if std.c.iter().any(|&cj| cj < -TOL) {
                return Ok((
                    Solution {
                        status: Status::Unbounded,
                        objective: 0.0,
                        values: vec![0.0; problem.num_vars()],
                        iterations: 0,
                        degraded: false,
                    },
                    None,
                ));
            }
            let (values, objective) = std.recover(effective, &vec![0.0; n]);
            return Ok((
                Solution { status: Status::Optimal, objective, values, iterations: 0, degraded: false },
                None,
            ));
        }

        let limit = self
            .max_iterations
            .unwrap_or_else(|| 50_000u64.max(200 * (m as u64 + n as u64)));

        let structure = structure_fingerprint(&std);
        let warm_core = warm
            .filter(|b| b.structure == structure)
            .and_then(|b| Core::with_basis(&std, &b.cols));

        let mut core = match warm_core {
            // The prior basis is primal-feasible here: skip phase 1.
            Some(core) => core,
            None => {
                let mut core = Core::new(&std);
                let n_real = n;
                let phase1 = move |j: usize| if j >= n_real { 1.0 } else { 0.0 };
                let finished = core.optimise(&phase1, n, limit)?;
                debug_assert!(finished, "phase 1 is bounded below by 0");
                if core.objective(&phase1) > 1e-7 {
                    return Ok((
                        Solution {
                            status: Status::Infeasible,
                            objective: 0.0,
                            values: vec![0.0; problem.num_vars()],
                            iterations: core.iterations,
                            degraded: false,
                        },
                        None,
                    ));
                }
                core
            }
        };

        // Phase 2.
        let c = std.c.clone();
        let phase2 = move |j: usize| if j < c.len() { c[j] } else { 0.0 };
        let bounded = core.optimise(&phase2, n, limit)?;
        if !bounded {
            return Ok((
                Solution {
                    status: Status::Unbounded,
                    objective: 0.0,
                    values: vec![0.0; problem.num_vars()],
                    iterations: core.iterations,
                    degraded: false,
                },
                None,
            ));
        }

        let x = core.extract();
        let (values, objective) = std.recover(effective, &x);
        let iterations = core.iterations;
        // Export the basis only when fully structural: an artificial
        // stuck at zero level cannot be reconstructed by `with_basis`.
        // The core is finished, so the column vector moves out rather
        // than being cloned (the old per-solve churn).
        let export = if core.basis.iter().all(|&j| j < n) {
            Some(Basis { cols: std::mem::take(&mut core.basis), structure })
        } else {
            None
        };
        Ok((
            Solution { status: Status::Optimal, objective, values, iterations, degraded: false },
            export,
        ))
    }
}

impl LpSolver for RevisedSimplex {
    fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        self.solve_with_basis(problem, None).map(|(sol, _)| sol)
    }

    fn name(&self) -> &'static str {
        "revised-simplex (Gurobi stand-in)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn solve(p: &Problem) -> Solution {
        RevisedSimplex::default().solve(p).expect("solve")
    }

    #[test]
    fn max_two_vars() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn matches_dense_on_mixed_constraints() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_ge(&[(x, 1.0), (y, 2.0)], 6.0);
        p.add_ge(&[(x, 3.0), (y, 1.0)], 9.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.2).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(&[(x, 1.0)], 1.0);
        p.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_ge(&[(x, 1.0), (y, -1.0)], 0.0);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
        p.add_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], 0.0);
        p.add_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], 0.0);
        p.add_le(&[(z, 1.0)], 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 0.05).abs() < 1e-6);
    }

    #[test]
    fn refactorisation_keeps_accuracy_on_longer_solves() {
        // A transportation-style LP big enough to trigger refactorisation.
        let mut p = Problem::new(Sense::Minimize);
        let srcs = 12;
        let dsts = 12;
        let mut vars = Vec::new();
        for i in 0..srcs {
            for j in 0..dsts {
                let cost = 1.0 + ((i * 7 + j * 13) % 10) as f64;
                vars.push(p.add_var(&format!("x{i}_{j}"), 0.0, f64::INFINITY, cost));
            }
        }
        for i in 0..srcs {
            let row: Vec<_> = (0..dsts).map(|j| (vars[i * dsts + j], 1.0)).collect();
            p.add_eq(&row, 10.0);
        }
        for j in 0..dsts {
            let col: Vec<_> = (0..srcs).map(|i| (vars[i * dsts + j], 1.0)).collect();
            p.add_eq(&col, 10.0);
        }
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(p.is_feasible(&s.values, 1e-5));
        // Cross-check against the dense solver.
        let d = crate::dense::DenseSimplex::default().solve(&p).unwrap();
        assert!((s.objective - d.objective).abs() < 1e-4,
            "revised {} vs dense {}", s.objective, d.objective);
    }

    fn warm_pair() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 2.0)], 14.0);
        p.add_le(&[(x, 3.0), (y, 1.0)], 18.0);
        p
    }

    #[test]
    fn resolving_with_own_basis_takes_zero_pivots() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let p = warm_pair();
        let (cold, basis) = solver.solve_with_basis(&p, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&p, basis.as_ref()).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert_eq!(warm.iterations, 0, "optimal basis needs no pivots");
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_objective_change_matches_cold() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("structural optimum exports a basis");
        let mut q = warm_pair();
        q.set_obj(crate::VarId(0), 1.0);
        q.set_obj(crate::VarId(1), 4.0);
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_rhs_change_matches_cold() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("basis");
        let mut q = warm_pair();
        q.constraints[0].rhs = 10.0;
        q.constraints[1].rhs = 12.0;
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn stale_basis_is_ignored_not_misused() {
        let solver = RevisedSimplex { presolve: false, ..Default::default() };
        let (_, basis) = solver.solve_with_basis(&warm_pair(), None).unwrap();
        let basis = basis.expect("basis");
        let mut q = warm_pair();
        q.add_le(&[(crate::VarId(0), 1.0)], 1.0); // new row: new structure
        let (warm, _) = solver.solve_with_basis(&q, Some(&basis)).unwrap();
        let (cold, _) = solver.solve_with_basis(&q, None).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }

    #[test]
    fn presolve_toggle_agrees() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 7.0, 2.0);
        let y = p.add_var("y", 1.0, 9.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 8.0);
        p.add_le(&[(x, 1.0)], 100.0); // redundant singleton
        let with = RevisedSimplex::default().solve(&p).unwrap();
        let without =
            RevisedSimplex { presolve: false, ..Default::default() }.solve(&p).unwrap();
        assert!((with.objective - without.objective).abs() < 1e-6);
    }

    mod ratio_equivalence {
        use super::super::{harris_ratio, textbook_ratio};
        use proptest::prelude::*;

        proptest! {
            /// On non-degenerate instances — every candidate row's
            /// ratio separated from the others by a gap far wider than
            /// the Harris feasibility relaxation — the two-pass Harris
            /// test must leave on exactly the row the textbook
            /// minimum-ratio test picks.
            #[test]
            fn harris_matches_textbook_when_nondegenerate(
                mraw in 2u32..12,
                wvals in proptest::collection::vec(1i32..20, 12),
                keys in proptest::collection::vec(any::<u32>(), 12),
                negs in proptest::collection::vec(any::<bool>(), 12),
            ) {
                let m = mraw as usize;
                let mut cand: Vec<usize> = (0..m).filter(|&i| !negs[i]).collect();
                if cand.is_empty() {
                    cand.push(0);
                }
                // Rank candidate rows by a random key (index tie-break)
                // so the minimum ratio lands on an arbitrary row, then
                // hand out ratios with 0.5 gaps: unambiguously
                // non-degenerate against FEAS_TOL = 1e-7.
                let mut ranked = cand.clone();
                ranked.sort_by_key(|&i| (keys[i], i));
                let mut w = vec![0.0; m];
                let mut xb = vec![0.0; m];
                for i in 0..m {
                    w[i] = -(wvals[i] as f64) / 10.0;
                    xb[i] = wvals[(i + 1) % 12] as f64 / 10.0;
                }
                for (rank, &i) in ranked.iter().enumerate() {
                    w[i] = wvals[i] as f64 / 10.0;
                    xb[i] = (1.0 + rank as f64 * 0.5) * w[i];
                }
                let basis: Vec<usize> = (0..m).collect();
                let h = harris_ratio(&w, &xb, &basis);
                let t = textbook_ratio(&w, &xb, &basis);
                prop_assert_eq!(h, t);
                prop_assert_eq!(h, Some(ranked[0]));
            }
        }
    }
}
