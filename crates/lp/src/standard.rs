//! Conversion of a [`Problem`] to computational standard form:
//!
//! ```text
//!     minimize  c'x    subject to    Ax = b,   x >= 0,   b >= 0
//! ```
//!
//! Transformations applied:
//! * maximisation is negated into minimisation;
//! * a variable with finite lower bound `l` is shifted (`x = l + x'`);
//! * a free variable is split (`x = x⁺ − x⁻`);
//! * a finite upper bound becomes an explicit `x' <= u − l` row;
//! * `<=`/`>=` rows gain slack/surplus columns;
//! * rows are scaled so `b >= 0`.
//!
//! The struct remembers enough to map a standard-form point back to the
//! original variables and objective.

use crate::model::{ConstraintOp, Problem, Sense};

/// How one original variable maps into standard-form columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VarMap {
    /// `x = shift + col`
    Shifted {
        /// Standard-form column index.
        col: usize,
        /// Additive shift (the original lower bound).
        shift: f64,
    },
    /// `x = pos - neg` (free variable split)
    Split {
        /// Column for the positive part.
        pos: usize,
        /// Column for the negative part.
        neg: usize,
    },
    /// Variable was fixed (`lo == hi`) and eliminated.
    Fixed(f64),
}

/// A sparse column: `(row, coefficient)` pairs sorted by row.
pub type SparseCol = Vec<(usize, f64)>;

/// A problem in computational standard form.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Columns of `A` (structural + slack), stored sparsely.
    pub cols: Vec<SparseCol>,
    /// Right-hand side, all non-negative.
    pub b: Vec<f64>,
    /// Minimisation objective per column.
    pub c: Vec<f64>,
    /// Number of rows.
    pub m: usize,
    pub(crate) var_map: Vec<VarMap>,
    /// Constant objective offset accumulated by shifting/fixing.
    pub(crate) obj_offset: f64,
}

impl StandardLp {
    /// Convert `p` (already validated) to standard form.
    pub fn from_problem(p: &Problem) -> Self {
        let mut cols: Vec<SparseCol> = Vec::new();
        let mut c: Vec<f64> = Vec::new();
        let mut var_map: Vec<VarMap> = Vec::with_capacity(p.vars.len());
        let mut obj_offset = 0.0;
        // Rows: original constraints first, upper-bound rows appended.
        type Row = (Vec<(usize, f64)>, ConstraintOp, f64);
        let mut rows: Vec<Row> = p
            .constraints
            .iter()
            .map(|con| (Vec::new(), con.op, con.rhs))
            .collect();

        let sign = match p.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        for v in &p.vars {
            if v.lo == v.hi {
                var_map.push(VarMap::Fixed(v.lo));
                obj_offset += sign * v.obj * v.lo;
                continue;
            }
            if v.lo.is_finite() {
                let col = cols.len();
                cols.push(Vec::new());
                c.push(sign * v.obj);
                obj_offset += sign * v.obj * v.lo;
                var_map.push(VarMap::Shifted { col, shift: v.lo });
                if v.hi.is_finite() {
                    rows.push((vec![(col, 1.0)], ConstraintOp::Le, v.hi - v.lo));
                }
            } else if v.hi.is_finite() {
                // Only an upper bound: substitute x = hi - x', x' >= 0.
                let col = cols.len();
                cols.push(Vec::new());
                c.push(-sign * v.obj);
                obj_offset += sign * v.obj * v.hi;
                var_map.push(VarMap::Shifted { col: usize::MAX, shift: 0.0 });
                // Rewrite as a split with pos unused: encode via Shifted
                // is wrong; use a dedicated mapping below.
                let last = var_map.len() - 1;
                var_map[last] = VarMap::Split { pos: usize::MAX, neg: col };
                // x = hi - x'  =>  contributes -coef * x' and coef*hi to rhs.
                // Stored via the Split{pos:MAX} marker; see fill loop.
                // Shift bookkeeping handled there.
                let _ = last;
            } else {
                let pos = cols.len();
                cols.push(Vec::new());
                c.push(sign * v.obj);
                let neg = cols.len();
                cols.push(Vec::new());
                c.push(-sign * v.obj);
                var_map.push(VarMap::Split { pos, neg });
            }
        }

        // Fill constraint coefficients.
        for (ci, con) in p.constraints.iter().enumerate() {
            for &(v, coef) in &con.terms {
                match var_map[v.index()] {
                    VarMap::Fixed(val) => {
                        rows[ci].2 -= coef * val;
                    }
                    VarMap::Shifted { col, shift } => {
                        rows[ci].0.push((col, coef));
                        rows[ci].2 -= coef * shift;
                    }
                    VarMap::Split { pos, neg } => {
                        if pos == usize::MAX {
                            // x = hi - x' (upper-bound-only variable).
                            let hi = p.vars[v.index()].hi;
                            rows[ci].0.push((neg, -coef));
                            rows[ci].2 -= coef * hi;
                        } else {
                            rows[ci].0.push((pos, coef));
                            rows[ci].0.push((neg, -coef));
                        }
                    }
                }
            }
        }

        // Materialise rows into columns, adding slack/surplus and fixing
        // signs so that b >= 0.
        let m = rows.len();
        let mut b = vec![0.0; m];
        for (ri, (terms, op, rhs)) in rows.into_iter().enumerate() {
            let flip = if rhs < 0.0 { -1.0 } else { 1.0 };
            b[ri] = flip * rhs;
            for (col, coef) in terms {
                cols[col].push((ri, flip * coef));
            }
            match op {
                ConstraintOp::Eq => {}
                ConstraintOp::Le => {
                    let s = cols.len();
                    cols.push(vec![(ri, flip)]);
                    c.push(0.0);
                    let _ = s;
                }
                ConstraintOp::Ge => {
                    let s = cols.len();
                    cols.push(vec![(ri, -flip)]);
                    c.push(0.0);
                    let _ = s;
                }
            }
        }

        // Merge duplicate (row) entries inside each column and sort.
        for col in &mut cols {
            col.sort_by_key(|&(r, _)| r);
            let mut merged: SparseCol = Vec::with_capacity(col.len());
            for &(r, v) in col.iter() {
                match merged.last_mut() {
                    Some(&mut (lr, ref mut lv)) if lr == r => *lv += v,
                    _ => merged.push((r, v)),
                }
            }
            merged.retain(|&(_, v)| v != 0.0);
            *col = merged;
        }

        StandardLp { cols, b, m, c, var_map, obj_offset }
    }

    /// Number of columns (structural + slack).
    pub fn n(&self) -> usize {
        self.cols.len()
    }

    /// Map a standard-form point back to original-variable values and
    /// the original-sense objective.
    pub fn recover(&self, p: &Problem, x: &[f64]) -> (Vec<f64>, f64) {
        let mut values = vec![0.0; self.var_map.len()];
        for (i, vm) in self.var_map.iter().enumerate() {
            values[i] = match *vm {
                VarMap::Fixed(v) => v,
                VarMap::Shifted { col, shift } => shift + x[col],
                VarMap::Split { pos, neg } => {
                    if pos == usize::MAX {
                        p.var_bounds(crate::VarId(i as u32)).1 - x[neg]
                    } else {
                        x[pos] - x[neg]
                    }
                }
            };
        }
        let obj = p.objective_at(&values);
        (values, obj)
    }

    /// The minimisation objective of a standard-form point (used by the
    /// solvers' internal assertions).
    pub fn std_objective(&self, x: &[f64]) -> f64 {
        self.c.iter().zip(x).map(|(c, x)| c * x).sum::<f64>() + self.obj_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    #[test]
    fn le_rows_gain_slacks() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(&[(x, 1.0)], 4.0);
        let s = StandardLp::from_problem(&p);
        assert_eq!(s.m, 1);
        assert_eq!(s.n(), 2); // x + slack
        assert_eq!(s.b, vec![4.0]);
    }

    #[test]
    fn negative_rhs_rows_are_flipped() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_ge(&[(x, -1.0)], -4.0); // i.e. x <= 4
        let s = StandardLp::from_problem(&p);
        assert_eq!(s.b, vec![4.0]);
        // Row was multiplied by -1, so x's coefficient is +1 and the
        // surplus became +1 as well (a slack).
        assert_eq!(s.cols[0], vec![(0, 1.0)]);
        assert_eq!(s.cols[1], vec![(0, 1.0)]);
    }

    #[test]
    fn finite_lower_bound_shifts() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 2.0, f64::INFINITY, 3.0);
        p.add_ge(&[(x, 1.0)], 5.0);
        let s = StandardLp::from_problem(&p);
        // Row becomes x' >= 3.
        assert_eq!(s.b, vec![3.0]);
        assert_eq!(s.obj_offset, 6.0);
    }

    #[test]
    fn fixed_variable_is_eliminated() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 3.0, 3.0, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_ge(&[(x, 1.0), (y, 1.0)], 5.0);
        let s = StandardLp::from_problem(&p);
        // x contributes 3 to the row, leaving y >= 2; objective offset 6.
        assert_eq!(s.b, vec![2.0]);
        assert_eq!(s.obj_offset, 6.0);
        let (values, obj) = s.recover(&p, &[2.0, 0.0]);
        assert_eq!(values, vec![3.0, 2.0]);
        assert_eq!(obj, 8.0);
    }

    #[test]
    fn free_variable_is_split() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_eq(&[(x, 1.0)], -7.0);
        let s = StandardLp::from_problem(&p);
        assert_eq!(s.n(), 2);
        // Row flipped to b = 7: -pos + neg = 7.
        let (values, _) = s.recover(&p, &[0.0, 7.0]);
        assert!((values[0] + 7.0).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_becomes_row() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, 9.0, 1.0);
        let s = StandardLp::from_problem(&p);
        assert_eq!(s.m, 1);
        assert_eq!(s.b, vec![9.0]);
    }

    #[test]
    fn maximize_negates_objective() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, f64::INFINITY, 5.0);
        let s = StandardLp::from_problem(&p);
        assert_eq!(s.c[0], -5.0);
    }
}
