//! Dual values (shadow prices) for the original constraints.
//!
//! TE systems read duals constantly — link shadow prices tell a WAN
//! operator which capacity upgrade buys the most throughput — and the
//! duality gap is the sharpest possible correctness oracle for a
//! simplex implementation, which is why the property suite checks
//! strong duality on every random LP.
//!
//! Duals are recovered generically (solver-independently) from an
//! optimal primal point via complementary slackness: the optimal basis
//! certificate is re-derived by solving the KKT conditions restricted
//! to the tight constraints. For the LP shapes this workspace produces
//! (non-degenerate after perturbation-free solves) the simpler
//! *objective-sensitivity* definition is used instead: the dual of
//! constraint `i` is obtained from one extra solve with its rhs nudged
//! — exact for the piecewise-linear value function away from
//! breakpoints, and validated against strong duality.

use crate::{LpError, LpSolver, Problem, Solution, Status};

/// Dual values per original constraint, plus the certified bound.
#[derive(Debug, Clone)]
pub struct DualReport {
    /// Shadow price of each constraint (sensitivity of the optimal
    /// objective to its rhs), in the problem's own sense.
    pub duals: Vec<f64>,
    /// `Σ duals·rhs + Σ bound-duals·bound` — equals the primal optimum
    /// when strong duality holds at the probed point.
    pub dual_objective: f64,
}

/// Estimate duals by finite rhs perturbation (two-sided probe). `eps`
/// should be small relative to the rhs scale; `1e-5` suits the TE LPs.
pub fn duals_by_sensitivity(
    problem: &Problem,
    base: &Solution,
    solver: &dyn LpSolver,
    eps: f64,
) -> Result<DualReport, LpError> {
    assert_eq!(base.status, Status::Optimal, "duals need an optimal base");
    let mut duals = Vec::with_capacity(problem.num_constraints());
    for i in 0..problem.num_constraints() {
        let mut up = problem.clone();
        up.constraints[i].rhs += eps;
        let so = solver.solve(&up)?;
        let d = if so.status == Status::Optimal {
            (so.objective - base.objective) / eps
        } else {
            // Relaxing made it unbounded (can't happen for <=-relax) or
            // tightening direction needed; probe the other side.
            let mut down = problem.clone();
            down.constraints[i].rhs -= eps;
            let sd = solver.solve(&down)?;
            if sd.status == Status::Optimal {
                (base.objective - sd.objective) / eps
            } else {
                f64::NAN
            }
        };
        duals.push(d);
    }
    let dual_objective = duals
        .iter()
        .zip(&problem.constraints)
        .map(|(d, c)| d * c.rhs)
        .sum::<f64>();
    Ok(DualReport { duals, dual_objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::revised::RevisedSimplex;

    #[test]
    fn shadow_price_of_binding_capacity() {
        // max 3x + 2y st x + y <= 4, x <= 2: optimum (2,2), obj 10.
        // Relaxing x+y<=4 by 1 adds one unit of y: dual = 2.
        // Relaxing x<=2 swaps a unit of y for x: dual = 1.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        let solver = RevisedSimplex::default();
        let base = solver.solve(&p).unwrap();
        let d = duals_by_sensitivity(&p, &base, &solver, 1e-5).unwrap();
        assert!((d.duals[0] - 2.0).abs() < 1e-4, "duals {:?}", d.duals);
        assert!((d.duals[1] - 1.0).abs() < 1e-4, "duals {:?}", d.duals);
    }

    #[test]
    fn slack_constraint_has_zero_dual() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 3.0, 1.0);
        p.add_le(&[(x, 1.0)], 100.0); // never binds (bound binds first)
        let solver = RevisedSimplex::default();
        let base = solver.solve(&p).unwrap();
        let d = duals_by_sensitivity(&p, &base, &solver, 1e-5).unwrap();
        assert!(d.duals[0].abs() < 1e-6);
    }

    #[test]
    fn strong_duality_when_bounds_are_slack() {
        // All binding structure in constraints: dual objective == primal.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        let solver = RevisedSimplex::default();
        let base = solver.solve(&p).unwrap();
        let d = duals_by_sensitivity(&p, &base, &solver, 1e-5).unwrap();
        assert!(
            (d.dual_objective - base.objective).abs() < 1e-3,
            "dual {} vs primal {}",
            d.dual_objective,
            base.objective
        );
    }
}
