//! Graceful degradation: a primary solver backed by a slower fallback.
//!
//! The reproduction pipeline treats `RevisedSimplex` failures the way
//! the paper's participants treated a wedged Gurobi run: rather than
//! aborting the experiment, they re-ran the instance on the slower
//! stack. [`FallbackSolver`] encodes that policy — if the primary
//! solver returns an error (iteration limit from numerical trouble or
//! cycling), the same problem is handed to the fallback solver and the
//! recovered solution is tagged [`degraded`](crate::Solution::degraded).
//!
//! The pair can additionally carry a [`SolveCache`]
//! ([`FallbackSolver::with_cache`]): before either simplex runs, the
//! model's [`Problem::fingerprint`] is looked up and a hit replays the
//! earlier outcome — including the degradation bookkeeping, so the
//! attempt/degradation counters match a cache-off run exactly.

use crate::cache::SolveCache;
use crate::{LpError, LpSolver, Problem, Solution};
use std::sync::atomic::{AtomicU64, Ordering};

/// A solver pair: try `primary`, recover with `fallback`.
///
/// Degradations are counted internally (atomics, because
/// [`LpSolver::solve`] takes `&self`) so a caller can report how often
/// the primary path failed across a run.
pub struct FallbackSolver<P: LpSolver, F: LpSolver> {
    /// The preferred (fast) solver.
    pub primary: P,
    /// The recovery (slow but robust) solver.
    pub fallback: F,
    degradations: AtomicU64,
    attempts: AtomicU64,
    cache: Option<SolveCache>,
}

impl<P: LpSolver, F: LpSolver> FallbackSolver<P, F> {
    /// A fallback pair.
    pub fn new(primary: P, fallback: F) -> Self {
        FallbackSolver {
            primary,
            fallback,
            degradations: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            cache: None,
        }
    }

    /// Enable the deterministic solve memo: identical models (by
    /// [`Problem::fingerprint`]) replay their first outcome instead of
    /// re-running either simplex.
    pub fn with_cache(mut self) -> Self {
        self.cache = Some(SolveCache::new());
        self
    }

    /// `(hits, misses)` of the solve memo, if one is enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// How many solves fell back (primary failed, fallback recovered or
    /// was at least tried).
    pub fn degradations(&self) -> u64 {
        self.degradations.load(Ordering::Relaxed)
    }

    /// Total solves attempted through this pair.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }
}

impl<P: LpSolver, F: LpSolver> LpSolver for FallbackSolver<P, F> {
    // effect-allow(GlobalState): observability-only relaxed counters;
    // the solve outcome depends only on `problem`.
    fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let keyed = self.cache.as_ref().map(|c| (c, problem.fingerprint()));
        if let Some((cache, key)) = keyed {
            if let Some(outcome) = cache.lookup(key) {
                // A replayed degraded solve (or double failure) still
                // counts as a degradation: the counters must read the
                // same whether or not the memo was warm.
                if !matches!(&outcome, Ok(sol) if !sol.degraded) {
                    self.degradations.fetch_add(1, Ordering::Relaxed);
                }
                return outcome;
            }
        }
        let outcome = match self.primary.solve(problem) {
            Ok(sol) => Ok(sol),
            Err(_primary_err) => {
                self.degradations.fetch_add(1, Ordering::Relaxed);
                self.fallback.solve(problem).map(|mut sol| {
                    sol.degraded = true;
                    sol
                })
            }
        };
        if let Some((cache, key)) = keyed {
            cache.insert(key, outcome.clone());
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "fallback(primary->backup)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseSimplex;
    use crate::revised::RevisedSimplex;
    use crate::{Sense, Status};

    fn sample_problem() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        p
    }

    #[test]
    fn healthy_primary_is_not_degraded() {
        let s = FallbackSolver::new(RevisedSimplex::default(), DenseSimplex::default());
        let sol = s.solve(&sample_problem()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(!sol.degraded);
        assert_eq!(s.degradations(), 0);
        assert_eq!(s.attempts(), 1);
    }

    #[test]
    fn stalled_primary_falls_back_with_tag() {
        // An iteration cap of 1 stalls the revised simplex on any
        // non-trivial instance — the injected "numerical stall".
        let primary = RevisedSimplex { max_iterations: Some(1), ..Default::default() };
        let s = FallbackSolver::new(primary, DenseSimplex::default());
        let sol = s.solve(&sample_problem()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-6, "fallback optimum preserved");
        assert!(sol.degraded, "recovered solution must carry the Degraded tag");
        assert_eq!(s.degradations(), 1);
    }

    #[test]
    fn cached_pair_replays_without_resolving() {
        let s = FallbackSolver::new(RevisedSimplex::default(), DenseSimplex::default())
            .with_cache();
        let a = s.solve(&sample_problem()).unwrap();
        let b = s.solve(&sample_problem()).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.iterations, b.iterations, "a hit replays the exact solution");
        assert_eq!(s.cache_stats(), Some((1, 1)));
        assert_eq!(s.attempts(), 2);
        assert_eq!(s.degradations(), 0);
    }

    #[test]
    fn cached_degradation_keeps_counters_identical() {
        let primary = RevisedSimplex { max_iterations: Some(1), ..Default::default() };
        let s = FallbackSolver::new(primary, DenseSimplex::default()).with_cache();
        let a = s.solve(&sample_problem()).unwrap();
        let b = s.solve(&sample_problem()).unwrap();
        assert!(a.degraded && b.degraded, "replay preserves the Degraded tag");
        assert_eq!(s.degradations(), 2, "a replayed degradation still counts");
        assert_eq!(s.cache_stats(), Some((1, 1)));
    }

    #[test]
    fn both_failing_surfaces_the_fallback_error() {
        let primary = RevisedSimplex { max_iterations: Some(1), ..Default::default() };
        let backup = DenseSimplex { max_iterations: Some(1), ..Default::default() };
        let s = FallbackSolver::new(primary, backup);
        let err = s.solve(&sample_problem()).unwrap_err();
        assert!(matches!(err, LpError::IterationLimit(_)));
    }
}
