//! A textbook two-phase dense-tableau simplex with Bland's rule.
//!
//! This is the deliberately straightforward solver — the stand-in for the
//! PuLP/CBC tool-chain the paper's participant A used. Every pivot
//! touches the entire `m × (n + m)` tableau and entering variables are
//! chosen by Bland's anti-cycling rule, which converges slowly but never
//! cycles. No presolve is applied.

use crate::standard::StandardLp;
use crate::{LpError, LpSolver, Problem, Solution, Status};

const TOL: f64 = 1e-9;

/// The dense-tableau solver. See the module docs.
#[derive(Debug, Clone)]
pub struct DenseSimplex {
    /// Hard pivot limit; the default scales with problem size.
    pub max_iterations: Option<u64>,
    /// Round-trip the model through the CPLEX-LP text format before
    /// solving, the way the PuLP → CBC pipeline does (on by default;
    /// see [`crate::format`]). Turn off for a pure-algorithm ablation.
    pub file_interchange: bool,
}

impl Default for DenseSimplex {
    fn default() -> Self {
        DenseSimplex { max_iterations: None, file_interchange: true }
    }
}

struct Tableau {
    /// `m` rows of `n_total` coefficients (structural + artificial).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    n_real: usize,
    n_total: usize,
    iterations: u64,
}

impl Tableau {
    fn new(std: &StandardLp) -> Self {
        let m = std.m;
        let n_real = std.n();
        let n_total = n_real + m;
        let mut rows = vec![vec![0.0; n_total]; m];
        for (j, col) in std.cols.iter().enumerate() {
            for &(r, v) in col {
                rows[r][j] = v;
            }
        }
        for i in 0..m {
            rows[i][n_real + i] = 1.0; // artificial
        }
        Tableau {
            rows,
            rhs: std.b.clone(),
            basis: (n_real..n_total).collect(),
            n_real,
            n_total,
            iterations: 0,
        }
    }

    /// Reduced costs `r_j = c_j − c_B·T_j` for the given cost vector.
    fn reduced_costs(&self, c: &[f64]) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&b| c[b]).collect();
        (0..self.n_total)
            .map(|j| {
                let zj: f64 = (0..self.rows.len()).map(|i| cb[i] * self.rows[i][j]).sum();
                c[j] - zj
            })
            .collect()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.rows[row][col];
        debug_assert!(p.abs() > TOL);
        for v in &mut self.rows[row] {
            *v /= p;
        }
        self.rhs[row] /= p;
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let f = self.rows[i][col];
            if f == 0.0 {
                continue;
            }
            for j in 0..self.n_total {
                let delta = f * self.rows[row][j];
                self.rows[i][j] -= delta;
            }
            self.rhs[i] -= f * self.rhs[row];
            if self.rhs[i].abs() < TOL {
                self.rhs[i] = 0.0;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Run simplex with cost vector `c`, allowing entering columns only
    /// from `0..allow_below`. Returns `Ok(true)` on optimality,
    /// `Ok(false)` on unboundedness.
    fn optimise(&mut self, c: &[f64], allow_below: usize, limit: u64) -> Result<bool, LpError> {
        loop {
            if self.iterations > limit {
                return Err(LpError::IterationLimit(limit));
            }
            let r = self.reduced_costs(c);
            // Bland: the lowest-index improving column.
            let entering = (0..allow_below).find(|&j| r[j] < -TOL);
            let Some(q) = entering else { return Ok(true) };
            // Ratio test, Bland tie-break on basic-variable index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.rows.len() {
                let w = self.rows[i][q];
                if w > TOL {
                    let theta = self.rhs[i] / w;
                    let better = match leave {
                        None => true,
                        Some((li, lt)) => {
                            theta < lt - TOL
                                || ((theta - lt).abs() <= TOL && self.basis[i] < self.basis[li])
                        }
                    };
                    if better {
                        leave = Some((i, theta));
                    }
                }
            }
            let Some((row, _)) = leave else { return Ok(false) };
            self.pivot(row, q);
        }
    }

    fn objective(&self, c: &[f64]) -> f64 {
        self.basis.iter().zip(&self.rhs).map(|(&b, &x)| c[b] * x).sum()
    }

    fn extract(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n_real];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n_real {
                x[b] = self.rhs[i];
            }
        }
        x
    }
}

impl LpSolver for DenseSimplex {
    fn solve(&self, problem: &Problem) -> Result<Solution, LpError> {
        problem.validate()?;
        // The PuLP/CBC pipeline serialises every model to an .lp file
        // and parses it back in the solver process; reproduce that
        // per-solve cost with the real text round-trip.
        let interchanged;
        let problem: &Problem = if self.file_interchange {
            let text = crate::format::write_lp(problem);
            // A written LP should always parse back; if the round-trip
            // ever fails, solving the in-memory model directly is the
            // graceful path (we merely skip the simulated file cost).
            match crate::format::parse_lp(&text) {
                Ok(parsed) => {
                    interchanged = parsed;
                    &interchanged
                }
                Err(_) => problem,
            }
        } else {
            problem
        };
        let std = StandardLp::from_problem(problem);
        let m = std.m;
        let n = std.n();

        if m == 0 {
            // No constraints: optimum sits at the (shifted) origin unless
            // some objective coefficient is improving, i.e. unbounded.
            if std.c.iter().any(|&cj| cj < -TOL) {
                return Ok(Solution {
                    status: Status::Unbounded,
                    objective: 0.0,
                    values: vec![0.0; problem.num_vars()],
                    iterations: 0,
                    degraded: false,
                });
            }
            let (values, objective) = std.recover(problem, &vec![0.0; n]);
            return Ok(Solution { status: Status::Optimal, objective, values, iterations: 0, degraded: false });
        }

        let limit = self
            .max_iterations
            .unwrap_or_else(|| 20_000u64.max(200 * (m as u64 + n as u64)));

        let mut t = Tableau::new(&std);

        // Phase 1: minimise the sum of artificials.
        let mut c1 = vec![0.0; t.n_total];
        for cost in c1.iter_mut().skip(n) {
            *cost = 1.0;
        }
        // Artificials may leave but never re-enter: allow_below = n.
        let finished = t.optimise(&c1, n, limit)?;
        debug_assert!(finished, "phase 1 is always bounded below by 0");
        if t.objective(&c1) > 1e-7 {
            return Ok(Solution {
                status: Status::Infeasible,
                objective: 0.0,
                values: vec![0.0; problem.num_vars()],
                iterations: t.iterations,
                degraded: false,
            });
        }

        // Phase 2 over the real objective (artificial costs forced to 0;
        // any artificial still basic sits at value 0 and cannot re-enter).
        let mut c2 = vec![0.0; t.n_total];
        c2[..n].copy_from_slice(&std.c);
        let bounded = t.optimise(&c2, n, limit)?;
        if !bounded {
            return Ok(Solution {
                status: Status::Unbounded,
                objective: 0.0,
                values: vec![0.0; problem.num_vars()],
                iterations: t.iterations,
                degraded: false,
            });
        }

        let x = t.extract();
        let (values, objective) = std.recover(problem, &x);
        Ok(Solution { status: Status::Optimal, objective, values, iterations: t.iterations, degraded: false })
    }

    fn name(&self) -> &'static str {
        "dense-simplex (PuLP/CBC stand-in)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    fn solve(p: &Problem) -> Solution {
        DenseSimplex::default().solve(p).expect("solve")
    }

    #[test]
    fn max_two_vars() {
        // max 3x + 2y st x + y <= 4, x <= 2 -> x=2, y=2, obj=10
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        p.add_le(&[(x, 1.0)], 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn min_with_ge_rows_uses_phase1() {
        // min x + y st x + 2y >= 6, 3x + y >= 9 -> x=2.4, y=1.8, obj=4.2
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_ge(&[(x, 1.0), (y, 2.0)], 6.0);
        p.add_ge(&[(x, 3.0), (y, 1.0)], 9.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 4.2).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(&[(x, 1.0)], 1.0);
        p.add_ge(&[(x, 1.0)], 2.0);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_ge(&[(x, 1.0), (y, -1.0)], 0.0); // never binds x from above
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // max x + y st x + y == 3, x - y == 1 -> x=2, y=1
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_eq(&[(x, 1.0), (y, 1.0)], 3.0);
        p.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shifted_and_bounded_vars() {
        // max x st 1 <= x <= 5 -> 5
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 1.0, 5.0, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable() {
        // min x st x >= -3  (x free) -> -3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_ge(&[(x, 1.0)], -3.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) + 3.0).abs() < 1e-6, "x = {}", s.value(x));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints meeting at a vertex.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.75);
        let y = p.add_var("y", 0.0, f64::INFINITY, -150.0);
        let z = p.add_var("z", 0.0, f64::INFINITY, 0.02);
        let w = p.add_var("w", 0.0, f64::INFINITY, -6.0);
        p.add_le(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], 0.0);
        p.add_le(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], 0.0);
        p.add_le(&[(z, 1.0)], 1.0);
        let s = solve(&p);
        // Beale's cycling example: Bland's rule must terminate at 1/20.
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 0.05).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn solution_is_feasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 2.0);
        let y = p.add_var("y", 0.0, 10.0, 3.0);
        let z = p.add_var("z", 0.0, 10.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 2.0), (z, 1.0)], 14.0);
        p.add_le(&[(x, 3.0), (y, 1.0)], 12.0);
        p.add_ge(&[(y, 1.0), (z, 1.0)], 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(p.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn no_constraints_bounded_by_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, 3.0, 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Unbounded);
    }
}
