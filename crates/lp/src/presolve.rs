//! Presolve: cheap model reductions applied before the revised simplex.
//!
//! Three safe reductions (each preserves the set of optimal original
//! points, so no postsolve beyond the identity is needed — variables are
//! never renumbered):
//!
//! 1. **Empty rows** — a constraint with no terms either always holds
//!    (dropped) or is a contradiction (infeasible).
//! 2. **Singleton rows** — `a·x {<=,>=,==} rhs` over one variable is
//!    folded into that variable's bounds and dropped.
//! 3. **Crossed bounds** — if folding makes `lo > hi` the model is
//!    infeasible.

use crate::model::{ConstraintOp, Problem};
use crate::Status;

const TOL: f64 = 1e-9;

/// Apply presolve, returning the reduced problem (same variables, fewer
/// rows, possibly tighter bounds) or the detected terminal status.
pub fn presolve(p: &Problem) -> Result<Problem, Status> {
    let mut out = p.clone();
    let mut kept = Vec::with_capacity(out.constraints.len());
    for con in out.constraints.drain(..) {
        match con.terms.len() {
            0 => {
                let holds = match con.op {
                    ConstraintOp::Le => 0.0 <= con.rhs + TOL,
                    ConstraintOp::Ge => 0.0 >= con.rhs - TOL,
                    ConstraintOp::Eq => con.rhs.abs() <= TOL,
                };
                if !holds {
                    return Err(Status::Infeasible);
                }
            }
            1 => {
                let (v, a) = con.terms[0];
                let var = &mut out.vars[v.index()];
                let bound = con.rhs / a;
                // a*x <= rhs  =>  x <= bound (a>0) or x >= bound (a<0).
                let op = if a > 0.0 {
                    con.op
                } else {
                    match con.op {
                        ConstraintOp::Le => ConstraintOp::Ge,
                        ConstraintOp::Ge => ConstraintOp::Le,
                        ConstraintOp::Eq => ConstraintOp::Eq,
                    }
                };
                match op {
                    ConstraintOp::Le => var.hi = var.hi.min(bound),
                    ConstraintOp::Ge => var.lo = var.lo.max(bound),
                    ConstraintOp::Eq => {
                        var.lo = var.lo.max(bound);
                        var.hi = var.hi.min(bound);
                    }
                }
                if var.lo > var.hi + TOL {
                    return Err(Status::Infeasible);
                }
                // Snap nearly-equal bounds so standard form fixes them.
                if var.lo > var.hi {
                    var.hi = var.lo;
                }
            }
            _ => kept.push(con),
        }
    }
    out.constraints = kept;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn empty_true_row_is_dropped() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_le(&[], 5.0);
        let out = presolve(&p).unwrap();
        assert_eq!(out.num_constraints(), 0);
    }

    #[test]
    fn empty_false_row_is_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var("x", 0.0, 1.0, 1.0);
        p.add_ge(&[], 5.0);
        assert!(matches!(presolve(&p), Err(Status::Infeasible)));
    }

    #[test]
    fn singleton_le_tightens_upper_bound() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 100.0, 1.0);
        p.add_le(&[(x, 2.0)], 10.0);
        let out = presolve(&p).unwrap();
        assert_eq!(out.num_constraints(), 0);
        assert_eq!(out.var_bounds(x), (0.0, 5.0));
    }

    #[test]
    fn singleton_with_negative_coefficient_flips() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 100.0, 1.0);
        p.add_le(&[(x, -1.0)], -3.0); // x >= 3
        let out = presolve(&p).unwrap();
        assert_eq!(out.var_bounds(x), (3.0, 100.0));
    }

    #[test]
    fn crossed_bounds_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 100.0, 1.0);
        p.add_le(&[(x, 1.0)], 2.0);
        p.add_ge(&[(x, 1.0)], 5.0);
        assert!(matches!(presolve(&p), Err(Status::Infeasible)));
    }

    #[test]
    fn singleton_eq_fixes_variable() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 100.0, 1.0);
        p.add_eq(&[(x, 4.0)], 8.0);
        let out = presolve(&p).unwrap();
        assert_eq!(out.var_bounds(x), (2.0, 2.0));
    }

    #[test]
    fn multi_term_rows_survive() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 1.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0, 1.0);
        p.add_le(&[(x, 1.0), (y, 1.0)], 1.5);
        let out = presolve(&p).unwrap();
        assert_eq!(out.num_constraints(), 1);
    }
}
