//! Property tests: the two solvers must agree on status and optimum for
//! arbitrary generated LPs, and returned optima must be feasible.

use netrepro_lp::dense::DenseSimplex;
use netrepro_lp::revised::RevisedSimplex;
use netrepro_lp::{LpSolver, Problem, Sense, Status};
use proptest::prelude::*;

/// A random LP whose feasible region always contains the box `[0,1]^n`
/// scaled points (we generate rows as `sum a_ij x_j <= rhs` with
/// `rhs >= 0` and bounded variables, so the origin is feasible and the
/// problem is bounded) — plus an optional equality row to exercise
/// phase 1.
fn arb_lp() -> impl Strategy<Value = Problem> {
    (
        2usize..6,                     // variables
        1usize..6,                     // <= rows
        prop::collection::vec(0.0f64..5.0, 2..6), // objective coefficients
        any::<bool>(),                 // sense
        any::<bool>(),                 // include an equality row
        prop::collection::vec(-3.0f64..3.0, 4..36), // coefficient pool
        prop::collection::vec(0.5f64..10.0, 1..6),  // rhs pool
    )
        .prop_map(|(n, m, obj, maximize, with_eq, coefs, rhss)| {
            let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
            let mut p = Problem::new(sense);
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    let c = obj.get(i).copied().unwrap_or(1.0);
                    // Finite box keeps everything bounded.
                    p.add_var(&format!("x{i}"), 0.0, 10.0, if maximize { c } else { c - 2.0 })
                })
                .collect();
            for r in 0..m {
                let row: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v, coefs[(r * n + j) % coefs.len()]))
                    .collect();
                let rhs = rhss[r % rhss.len()];
                p.add_le(&row, rhs);
            }
            if with_eq && n >= 2 {
                // x0 + x1 == small constant keeps feasibility (both in
                // [0,10], rows allow slack at the origin... equality may
                // conflict with <= rows; both solvers must then agree on
                // Infeasible).
                p.add_eq(&[(vars[0], 1.0), (vars[1], 1.0)], 1.0);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solvers_agree(p in arb_lp()) {
        let d = DenseSimplex::default().solve(&p).expect("dense");
        let r = RevisedSimplex::default().solve(&p).expect("revised");
        prop_assert_eq!(d.status, r.status, "status mismatch");
        if d.status == Status::Optimal {
            prop_assert!((d.objective - r.objective).abs() < 1e-5,
                "dense {} vs revised {}", d.objective, r.objective);
        }
    }

    #[test]
    fn optima_are_feasible(p in arb_lp()) {
        for sol in [
            DenseSimplex::default().solve(&p).expect("dense"),
            RevisedSimplex::default().solve(&p).expect("revised"),
        ] {
            if sol.status == Status::Optimal {
                prop_assert!(p.is_feasible(&sol.values, 1e-5));
                prop_assert!((p.objective_at(&sol.values) - sol.objective).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fallback_recovers_a_feasible_degraded_solution(p in arb_lp()) {
        use netrepro_lp::fallback::FallbackSolver;
        // A one-iteration budget stalls the primary on anything
        // non-trivial — the injected "numerical stall".
        let crippled = RevisedSimplex { max_iterations: Some(1), ..Default::default() };
        let s = FallbackSolver::new(crippled, DenseSimplex::default());
        let sol = s.solve(&p).expect("fallback must recover whenever dense can solve");
        if sol.status == Status::Optimal {
            prop_assert!(p.is_feasible(&sol.values, 1e-5));
            if s.degradations() > 0 {
                prop_assert!(sol.degraded, "recovered solution must carry the Degraded tag");
                let reference = DenseSimplex::default().solve(&p).expect("dense");
                prop_assert!((sol.objective - reference.objective).abs() < 1e-5,
                    "degraded optimum {} drifted from dense optimum {}",
                    sol.objective, reference.objective);
            }
        }
    }

    #[test]
    fn presolve_never_changes_the_answer(p in arb_lp()) {
        let with = RevisedSimplex::default().solve(&p).expect("with presolve");
        let without = RevisedSimplex { presolve: false, ..Default::default() }
            .solve(&p)
            .expect("without presolve");
        prop_assert_eq!(with.status, without.status);
        if with.status == Status::Optimal {
            prop_assert!((with.objective - without.objective).abs() < 1e-5);
        }
    }
}
