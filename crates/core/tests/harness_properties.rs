//! Property tests for the crash-safe sweep runtime: for random matrix
//! seeds and a random kill point anywhere in the journal byte stream,
//! replaying the surviving prefix and executing the remainder must
//! reproduce the uninterrupted run byte-for-byte — both the final
//! `SweepReport` JSON and the rebuilt journal.

use netrepro_core::cache::CellMemo;
use netrepro_core::fault::FaultProfile;
use netrepro_core::harness::{
    parse_journal, MemoryJournal, Sweep, SweepConfig, TaskLimits, TopoScale,
};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::PromptStyle;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    prop_oneof![
        Just(FaultProfile::None),
        Just(FaultProfile::Light),
        Just(FaultProfile::Heavy),
        Just(FaultProfile::Chaos),
    ]
}

/// A small but varied sweep matrix (RPS sessions keep cases fast; the
/// chaos profile exercises panic/wedge/retry/quarantine paths). The
/// occasional tight deadline makes whole classes quarantine, tripping
/// breakers mid-matrix — the case where parallel speculation must be
/// discarded at commit time.
fn arb_scales() -> impl Strategy<Value = Vec<TopoScale>> {
    // Half the cases stay on the paper matrix; the other half append a
    // small fat-tree scale cell, exercising the DPV-digest path through
    // the same crash/resume machinery.
    prop_oneof![
        Just(vec![TopoScale::Paper]),
        Just(vec![TopoScale::Paper, TopoScale::FatTree { k: 4 }]),
    ]
}

fn arb_config() -> impl Strategy<Value = SweepConfig> {
    (arb_profile(), 0u64..50, 1usize..3, prop_oneof![Just(false), Just(true)], arb_scales())
        .prop_map(|(profile, base_seed, n_seeds, tight, scales)| {
            let mut limits = TaskLimits::default();
            if tight {
                limits.deadline_steps = 5;
                limits.breaker_threshold = 2;
            }
            SweepConfig {
                systems: vec![TargetSystem::RockPaperScissors, TargetSystem::ApVerifier],
                styles: vec![PromptStyle::ModularText],
                seeds: (base_seed..base_seed + n_seeds as u64).collect(),
                profiles: vec![FaultProfile::None, profile],
                scales,
                limits,
            }
        })
}

fn arb_workers() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]
}

proptest! {
    // Each case runs the matrix twice (full + resumed); keep it modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the sweep at an arbitrary *byte* of its journal — possibly
    /// mid-line, simulating a torn write — and resume: the report and
    /// the rebuilt journal must be byte-identical to an uninterrupted
    /// run with the same seeds.
    #[test]
    fn crash_resume_is_byte_identical(config in arb_config(), cut_frac in 0.0f64..1.0) {
        let sweep = Sweep::new(config.clone());
        let mut full_sink = MemoryJournal::new();
        let full = sweep.run(&mut full_sink).unwrap();
        let full_text = full_sink.text().to_string();

        // Kill point: any byte offset, snapped to a char boundary
        // (journal text is ASCII JSON, so this is a no-op in practice).
        let mut cut = (full_text.len() as f64 * cut_frac) as usize;
        while cut < full_text.len() && !full_text.is_char_boundary(cut) {
            cut += 1;
        }
        let survived = &full_text[..cut];

        let replay = parse_journal(survived, &config).unwrap();
        prop_assert!(replay.valid_bytes as usize <= cut);
        let mut sink = MemoryJournal::with_text(&survived[..replay.valid_bytes as usize]);
        let resumed = sweep.run_from(&replay, &mut sink).unwrap();

        prop_assert_eq!(resumed.render_json(), full.render_json());
        prop_assert_eq!(sink.text(), full_text.as_str());
        prop_assert!(resumed.coverage.consistent());
    }

    /// A parallel sweep commits cells in canonical order, so for any
    /// worker count the journal and the report are byte-identical to
    /// the serial run — across random matrices, fault profiles and the
    /// injected panic/wedge/deadline paths the chaos profile drives.
    #[test]
    fn parallel_sweep_is_byte_identical_to_serial(
        config in arb_config(),
        workers in arb_workers(),
    ) {
        let mut serial_sink = MemoryJournal::new();
        let serial = Sweep::new(config.clone()).run(&mut serial_sink).unwrap();
        let mut sink = MemoryJournal::new();
        let parallel =
            Sweep::new(config).with_workers(workers).run(&mut sink).unwrap();
        prop_assert_eq!(parallel.render_json(), serial.render_json());
        prop_assert_eq!(sink.text(), serial_sink.text());
    }

    /// Crash-at-any-byte-offset resume under parallelism: kill a serial
    /// run anywhere in its journal, resume with `workers` workers, and
    /// the rebuilt journal and report still match the uninterrupted
    /// serial run byte-for-byte.
    #[test]
    fn parallel_crash_resume_is_byte_identical(
        config in arb_config(),
        cut_frac in 0.0f64..1.0,
        workers in arb_workers(),
    ) {
        let serial = Sweep::new(config.clone());
        let mut full_sink = MemoryJournal::new();
        let full = serial.run(&mut full_sink).unwrap();
        let full_text = full_sink.text().to_string();

        let mut cut = (full_text.len() as f64 * cut_frac) as usize;
        while cut < full_text.len() && !full_text.is_char_boundary(cut) {
            cut += 1;
        }
        let survived = &full_text[..cut];

        let replay = parse_journal(survived, &config).unwrap();
        let mut sink = MemoryJournal::with_text(&survived[..replay.valid_bytes as usize]);
        let resumed =
            Sweep::new(config).with_workers(workers).run_from(&replay, &mut sink).unwrap();

        prop_assert_eq!(resumed.render_json(), full.render_json());
        prop_assert_eq!(sink.text(), full_text.as_str());
    }

    /// The memoization layer is observationally invisible: with the
    /// cache off, cold, or fully warm — at any worker count — the
    /// journal and the report are byte-identical. The warm pass also
    /// proves the memo actually engaged (every executed cell hits).
    #[test]
    fn cached_sweep_is_byte_identical_to_uncached(
        config in arb_config(),
        workers in arb_workers(),
    ) {
        let mut off_sink = MemoryJournal::new();
        let off = Sweep::new(config.clone()).run(&mut off_sink).unwrap();

        let memo = CellMemo::shared();
        let mut cold_sink = MemoryJournal::new();
        let cold = Sweep::new(config.clone())
            .with_workers(workers)
            .with_cache(std::sync::Arc::clone(&memo))
            .run(&mut cold_sink)
            .unwrap();
        prop_assert_eq!(cold.render_json(), off.render_json());
        prop_assert_eq!(cold_sink.text(), off_sink.text());

        let mut warm_sink = MemoryJournal::new();
        let warm = Sweep::new(config)
            .with_workers(workers)
            .with_cache(std::sync::Arc::clone(&memo))
            .run(&mut warm_sink)
            .unwrap();
        prop_assert_eq!(warm.render_json(), off.render_json());
        prop_assert_eq!(warm_sink.text(), off_sink.text());
        let stats = memo.work_stats();
        prop_assert!(stats.hits > 0 || memo.work_len() == 0,
            "a warm second sweep must hit the memo when anything was executed");
    }

    /// Crash at any byte offset and resume with a *partially warm*
    /// memo (warmed by the cells executed before the kill): still
    /// byte-identical to the uninterrupted, uncached run.
    #[test]
    fn partially_warm_crash_resume_is_byte_identical(
        config in arb_config(),
        cut_frac in 0.0f64..1.0,
        workers in arb_workers(),
    ) {
        let mut full_sink = MemoryJournal::new();
        let full = Sweep::new(config.clone()).run(&mut full_sink).unwrap();
        let full_text = full_sink.text().to_string();

        let mut cut = (full_text.len() as f64 * cut_frac) as usize;
        while cut < full_text.len() && !full_text.is_char_boundary(cut) {
            cut += 1;
        }
        let survived = &full_text[..cut];

        // Partial warmth: a sweep over a sub-matrix (half the seeds)
        // memoizes some of the full matrix's cells and none of the
        // rest — cell keys depend only on (system, style, seed,
        // profile), not on the matrix shape.
        let memo = CellMemo::shared();
        let mut sub = config.clone();
        sub.seeds.truncate(sub.seeds.len() / 2);
        if !sub.seeds.is_empty() {
            Sweep::new(sub)
                .with_cache(std::sync::Arc::clone(&memo))
                .run(&mut MemoryJournal::new())
                .unwrap();
        }
        let replay = parse_journal(survived, &config).unwrap();

        let mut sink = MemoryJournal::with_text(&survived[..replay.valid_bytes as usize]);
        let resumed = Sweep::new(config)
            .with_workers(workers)
            .with_cache(memo)
            .run_from(&replay, &mut sink)
            .unwrap();

        prop_assert_eq!(resumed.render_json(), full.render_json());
        prop_assert_eq!(sink.text(), full_text.as_str());
    }

    /// Coverage accounting always sums to the full matrix, whatever the
    /// profile mix does to quarantine and breakers.
    #[test]
    fn coverage_always_sums(config in arb_config()) {
        let sweep = Sweep::new(config.clone());
        let mut sink = MemoryJournal::new();
        let report = sweep.run(&mut sink).unwrap();
        prop_assert!(report.coverage.consistent());
        prop_assert_eq!(report.coverage.total, config.total_cells() as u64);
        prop_assert_eq!(report.cells.len(), config.total_cells());
        prop_assert_eq!(report.quarantine.len() as u64, report.coverage.quarantined);
    }
}
