//! Property tests for the fault-injection subsystem: determinism of
//! the fault schedule, hard bounds on retry budgets, and end-to-end
//! reproducibility of faulted session runs.

use netrepro_core::fault::{
    FaultKind, FaultPlan, FaultProfile, FaultSite, RetryPolicy,
};
use netrepro_core::paper::TargetSystem;
use netrepro_core::student::Participant;
use netrepro_core::ReproductionSession;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    prop_oneof![
        Just(FaultProfile::None),
        Just(FaultProfile::Light),
        Just(FaultProfile::Heavy),
        Just(FaultProfile::Chaos),
    ]
}

/// Every (site, kind) pairing the pipeline actually rolls.
fn arb_site_kind() -> impl Strategy<Value = (FaultSite, FaultKind)> {
    prop_oneof![
        Just((FaultSite::LlmResponse, FaultKind::TruncatedResponse)),
        Just((FaultSite::LlmResponse, FaultKind::GarbageResponse)),
        Just((FaultSite::Session, FaultKind::StalledSession)),
        Just((FaultSite::LpSolver, FaultKind::SolverStall)),
        Just((FaultSite::LpSolver, FaultKind::IterationExplosion)),
        Just((FaultSite::BddTable, FaultKind::TableExhaustion)),
        Just((FaultSite::DpvDataset, FaultKind::LinkCorruption)),
        Just((FaultSite::DpvDataset, FaultKind::FibCorruption)),
        Just((FaultSite::RpsSocket, FaultKind::SocketDrop)),
        Just((FaultSite::RpsSocket, FaultKind::SocketTimeout)),
        Just((FaultSite::RpsSocket, FaultKind::MalformedFrame)),
        Just((FaultSite::Harness, FaultKind::TaskPanic)),
        Just((FaultSite::Harness, FaultKind::TaskWedge)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same plan (profile, seed) + same roll sequence ⇒ bit-identical
    /// fault trace and resilience report.
    #[test]
    fn same_seed_produces_identical_trace(
        profile in arb_profile(),
        seed in any::<u64>(),
        rolls in prop::collection::vec(arb_site_kind(), 1..64),
    ) {
        let mut a = FaultPlan::new(profile, seed).injector();
        let mut b = FaultPlan::new(profile, seed).injector();
        for &(site, kind) in &rolls {
            let fa = a.roll(site, kind);
            let fb = b.roll(site, kind);
            prop_assert_eq!(fa.is_some(), fb.is_some(), "fire/skip diverged");
            if let (Some(fa), Some(fb)) = (fa, fb) {
                a.absorb(fa);
                b.absorb(fb);
            }
        }
        prop_assert_eq!(
            serde_json::to_string(&a.report()).unwrap(),
            serde_json::to_string(&b.report()).unwrap()
        );
    }

    /// The `none` profile never fires and never touches the RNG.
    #[test]
    fn none_profile_never_fires(
        seed in any::<u64>(),
        rolls in prop::collection::vec(arb_site_kind(), 1..64),
    ) {
        let mut inj = FaultPlan::new(FaultProfile::None, seed).injector();
        for &(site, kind) in &rolls {
            prop_assert!(inj.roll(site, kind).is_none());
        }
        prop_assert_eq!(inj.report().injected, 0);
        prop_assert!(inj.trace().is_empty());
    }

    /// A retry budget grants at most `max_retries` attempts, no matter
    /// how often it is asked, and its accounting always balances.
    #[test]
    fn retry_budget_is_never_exceeded(max in 0u32..10, asks in 0u32..40) {
        let mut budget = RetryPolicy { max_retries: max }.budget();
        let mut granted = 0u32;
        for _ in 0..asks {
            if budget.try_consume() {
                granted += 1;
            }
        }
        prop_assert!(granted <= max, "granted {granted} > cap {max}");
        prop_assert_eq!(budget.used(), granted);
        prop_assert_eq!(budget.used() + budget.remaining(), max);
    }
}

proptest! {
    // Full sessions per case — keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two faulted session runs under the same plan are byte-identical:
    /// same report, same fault trace, regardless of profile severity.
    #[test]
    fn faulted_sessions_are_reproducible(
        profile in arb_profile(),
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut inj = FaultPlan::new(profile, seed).injector();
            let r = ReproductionSession::new(
                Participant::preset(TargetSystem::NcFlow),
                seed,
            )
            .run_with_faults(&mut inj);
            (
                serde_json::to_string(&r).unwrap(),
                serde_json::to_string(&inj.report()).unwrap(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
