//! Property tests for the sharded sweep runtime — the PR's acceptance
//! criterion: for any kill point (any byte offset in any shard journal
//! or in the coordinator journal), resume + merge produces a journal
//! and a report byte-identical to a single-process serial run, at
//! shards ∈ {1, 2, 4} × workers ∈ {1, 2}.
//!
//! The kill is simulated causally: a SIGKILL only tears the *tail* of
//! each append-only journal, and a shard journal can only exist if its
//! lease line was durably in the coordinator ledger first (leases are
//! write-ahead) — so the simulation cuts the coordinator text at a
//! byte, treats shards of severed leases as never-spawned, and cuts
//! each surviving shard's text independently.

use netrepro_core::fault::FaultProfile;
use netrepro_core::harness::{
    JournalSink, MemoryJournal, Sweep, SweepConfig, TaskLimits, TopoScale,
};
use netrepro_core::paper::TargetSystem;
use netrepro_core::prompt::PromptStyle;
use netrepro_core::shard::{
    collect_works, merge, parse_coord_journal, parse_shard_journal, partition, plan_leases,
    remaining_runs, run_shard, CoordHeader, CoordLine, Lease, ShardReplay,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    prop_oneof![
        Just(FaultProfile::None),
        Just(FaultProfile::Light),
        Just(FaultProfile::Heavy),
        Just(FaultProfile::Chaos),
    ]
}

/// Same small-but-varied matrix family as the harness property tests:
/// chaos drives panic/wedge/retry/quarantine, and the occasional tight
/// deadline trips breakers mid-matrix — the case where a shard's
/// speculative works must be discarded at merge time.
fn arb_scales() -> impl Strategy<Value = Vec<TopoScale>> {
    // Mostly the paper matrix; occasionally append a small fat-tree
    // scale cell so shard/merge byte-identity covers the DPV digests.
    prop_oneof![
        Just(vec![TopoScale::Paper]),
        Just(vec![TopoScale::Paper, TopoScale::FatTree { k: 4 }]),
    ]
}

fn arb_config() -> impl Strategy<Value = SweepConfig> {
    (arb_profile(), 0u64..50, 1usize..3, prop_oneof![Just(false), Just(true)], arb_scales())
        .prop_map(|(profile, base_seed, n_seeds, tight, scales)| {
            let mut limits = TaskLimits::default();
            if tight {
                limits.deadline_steps = 5;
                limits.breaker_threshold = 2;
            }
            SweepConfig {
                systems: vec![TargetSystem::RockPaperScissors, TargetSystem::ApVerifier],
                styles: vec![PromptStyle::ModularText],
                seeds: (base_seed..base_seed + n_seeds as u64).collect(),
                profiles: vec![FaultProfile::None, profile],
                scales,
                limits,
            }
        })
}

/// Snap a fractional cut to a char boundary (journal text is ASCII
/// JSON, so this is a no-op in practice).
fn cut_at(text: &str, frac: f64) -> &str {
    let mut cut = (text.len() as f64 * frac) as usize;
    while cut < text.len() && !text.is_char_boundary(cut) {
        cut += 1;
    }
    &text[..cut]
}

proptest! {
    // Each case runs the matrix three times (serial + sharded +
    // resumed remainder); keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SIGKILL the whole fleet — every shard and the coordinator — at
    /// arbitrary byte offsets, then resume the way the CLI coordinator
    /// does: truncate every journal to its valid prefix, re-lease the
    /// remaining runs with work-stealing, execute them, and merge.
    /// The merged journal and report must be byte-identical to an
    /// uninterrupted single-process serial run.
    #[test]
    fn kill_anywhere_resume_merge_is_byte_identical(
        config in arb_config(),
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
        workers in prop_oneof![Just(1usize), Just(2)],
        coord_frac in 0.0f64..1.0,
        shard_fracs in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        let mut serial_sink = MemoryJournal::new();
        let serial = Sweep::new(config.clone()).run(&mut serial_sink).unwrap();

        let sweep = Sweep::new(config.clone()).with_workers(workers);
        let total = config.total_cells() as u64;

        // The uninterrupted sharded world: ledger plus shard journals,
        // leases journaled write-ahead of each (virtual) spawn.
        let mut coord = MemoryJournal::new();
        coord.append(&CoordHeader::new(&config, shards).line().unwrap()).unwrap();
        let leases: Vec<Lease> = partition(total, shards)
            .iter()
            .enumerate()
            .map(|(i, r)| Lease { seq: i as u64, start: r.start, end: r.end })
            .collect();
        let mut shard_texts: Vec<String> = Vec::new();
        for lease in &leases {
            coord.append(&CoordLine::Lease { lease: *lease }.line().unwrap()).unwrap();
            let mut sink = MemoryJournal::new();
            run_shard(&sweep, *lease, &ShardReplay::empty(), &mut sink).unwrap();
            shard_texts.push(sink.text().to_string());
        }

        // The kill: cut the coordinator, then each shard whose lease
        // line survived intact.
        let coord_cut = cut_at(coord.text(), coord_frac);
        let replay = parse_coord_journal(coord_cut, &config, shards).unwrap();
        prop_assert!(replay.valid_bytes as usize <= coord_cut.len());

        // The resume: gather works from every surviving valid prefix,
        // re-lease the holes (stealing tails to fill the slots), run
        // the new leases, merge.
        let mut works = BTreeMap::new();
        for lease in &replay.leases {
            let text = cut_at(
                &shard_texts[lease.seq as usize],
                shard_fracs[lease.seq as usize % shard_fracs.len()],
            );
            let sr = parse_shard_journal(text, &config, *lease).unwrap();
            prop_assert!(sr.valid_bytes as usize <= text.len());
            collect_works(*lease, &sr, &mut works);
        }
        let runs = remaining_runs(total, &works);
        for lease in plan_leases(&runs, shards, replay.next_seq()) {
            let mut sink = MemoryJournal::new();
            run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
            let sr = parse_shard_journal(sink.text(), &config, lease).unwrap();
            prop_assert!(!sr.dropped_partial);
            collect_works(lease, &sr, &mut works);
        }
        let mut merged = MemoryJournal::new();
        let report = merge(&sweep, &works, &mut merged).unwrap();

        prop_assert_eq!(report.render_json(), serial.render_json());
        prop_assert_eq!(merged.text(), serial_sink.text());
        prop_assert!(report.coverage.consistent());
    }

    /// A crashed shard child restarted *in place* (same lease, same
    /// journal file, truncated to its valid prefix) rebuilds a journal
    /// byte-identical to the uninterrupted shard's — at any kill byte
    /// and any worker count.
    #[test]
    fn shard_in_place_restart_is_byte_identical(
        config in arb_config(),
        shards in prop_oneof![Just(2usize), Just(4)],
        workers in prop_oneof![Just(1usize), Just(2)],
        frac in 0.0f64..1.0,
        pick in 0usize..4,
    ) {
        let sweep = Sweep::new(config.clone()).with_workers(workers);
        let total = config.total_cells() as u64;
        let ranges = partition(total, shards);
        let r = ranges[pick % ranges.len()];
        let lease = Lease { seq: (pick % ranges.len()) as u64, start: r.start, end: r.end };

        let mut full = MemoryJournal::new();
        run_shard(&sweep, lease, &ShardReplay::empty(), &mut full).unwrap();

        let survived = cut_at(full.text(), frac);
        let sr = parse_shard_journal(survived, &config, lease).unwrap();
        let mut sink = MemoryJournal::with_text(&survived[..sr.valid_bytes as usize]);
        run_shard(&sweep, lease, &sr, &mut sink).unwrap();
        prop_assert_eq!(sink.text(), full.text());
    }
}
