//! Deterministic content-addressed memoization for the sweep harness.
//!
//! The experiment matrix repeats an enormous amount of identical
//! sub-work: every cell of a `(system, style, profile)` class rebuilds
//! the same [`PaperSpec`] and participant preset (the oracle side of a
//! cell is seed-independent by construction — only the simulated LLM
//! draws per-seed RNG), and a warm re-run of the matrix (the paper's
//! own §3.2 validation loop: re-running prototypes against the oracle
//! repeatedly) re-executes cells whose outcome is already known, because
//! [`crate::harness::Sweep::execute_cell`] is a pure function of the
//! [`CellId`].
//!
//! [`CellMemo`] exploits both layers:
//!
//! * **Oracle layer** — `Arc`-shared [`PaperSpec`]s keyed by system and
//!   participant presets keyed by `(system, style)`, reused across every
//!   cell of the class instead of being rebuilt per attempt.
//! * **Cell layer** — completed [`CellWork`] keyed by the cell's stable
//!   key. A warm hit replays the execution byte-for-byte; the
//!   supervision state (virtual clock, breaker) still advances at
//!   commit time only, so journals stay identical.
//!
//! # Determinism argument
//!
//! Caching here is *observationally invisible*. `execute_cell` derives
//! every RNG stream from the cell key alone, so its output is a fixed
//! value per cell; memoizing a pure function cannot change any journal
//! or report byte, whether the memo is cold, warm, or partially warm
//! (property-tested in the harness). The journal header records
//! [`SCHEME`] — the *scheme* fingerprint, not the enablement state —
//! so a journal written with the memo on resumes bit-identically with
//! it off and vice versa.
//!
//! The effects analyzer (`repolint --effects`) proves this module's
//! determinism transitively: it must never read wall-clock time, and
//! its maps are only ever probed by key (iteration order never reaches
//! any output). The interior mutability is declared with
//! `effect-allow(GlobalState)` at each audited method.

use crate::harness::{CellId, CellWork};
use crate::paper::{PaperSpec, TargetSystem};
use crate::student::Participant;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache-scheme identifier, recorded in every journal header. Bump the
/// suffix when the memoization key derivation changes incompatibly.
/// Deliberately constant across cache on/off: the header describes the
/// *scheme* journals were written under, not whether a memo was warm.
pub const SCHEME: &str = "cellmemo-v1/fnv1a64";

/// Hit/miss counters for one memo layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that executed fresh work.
    pub misses: u64,
}

impl MemoStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-sweep memoization store. Shared across pool workers
/// (`Mutex` + atomics — [`crate::pool::run_ordered`] requires the
/// execute closure to be `Sync`) and across consecutive sweeps when the
/// caller holds the same `Arc` (that is what makes a warm re-run fast).
#[derive(Debug, Default)]
pub struct CellMemo {
    specs: Mutex<HashMap<TargetSystem, Arc<PaperSpec>>>,
    participants: Mutex<HashMap<String, Arc<Participant>>>,
    work: Mutex<HashMap<String, CellWork>>,
    work_hits: AtomicU64,
    work_misses: AtomicU64,
}

impl CellMemo {
    /// An empty (cold) memo.
    pub fn new() -> Self {
        CellMemo::default()
    }

    /// A cold memo behind an `Arc`, ready to share across sweeps and
    /// workers.
    pub fn shared() -> Arc<Self> {
        Arc::new(CellMemo::new())
    }

    /// The shared [`PaperSpec`] for `system`, built at most once per
    /// memo.
    // effect-allow(GlobalState): memoization — the cached value is a pure
    // function of `system`, so sharing the map never changes a result.
    pub fn spec(&self, system: TargetSystem) -> Arc<PaperSpec> {
        let mut specs = self.specs.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            specs
                .entry(system)
                .or_insert_with(|| Arc::new(PaperSpec::for_system(system))),
        )
    }

    /// The participant driving `cell` — the oracle-side preset shared
    /// by every cell of the `(system, style)` class. The per-cell copy
    /// is a clone of the memoized value, not a fresh preset build.
    // effect-allow(GlobalState): memoization — the preset is a pure
    // function of the (system, style) class; callers get clones.
    pub fn participant(&self, cell: CellId) -> Participant {
        let key = format!("{}/{}", cell.system.name(), cell.style.name());
        let mut participants = self.participants.lock().unwrap_or_else(|p| p.into_inner());
        let arc = participants
            .entry(key)
            .or_insert_with(|| Arc::new(cell.participant()));
        (**arc).clone()
    }

    /// Replay the memoized execution of `cell`, if one is stored.
    // effect-allow(GlobalState): memoization + relaxed stat counters; a
    // hit replays the exact value a cold run would have produced.
    pub fn lookup_work(&self, cell: CellId) -> Option<CellWork> {
        let work = self.work.lock().unwrap_or_else(|p| p.into_inner());
        match work.get(&cell.key()) {
            Some(w) => {
                self.work_hits.fetch_add(1, Ordering::Relaxed);
                Some(w.clone())
            }
            None => {
                self.work_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the execution of `cell` for future replays.
    // effect-allow(GlobalState): memoization — writes are keyed by the
    // cell id and idempotent for deterministic executions.
    pub fn store_work(&self, cell: CellId, value: &CellWork) {
        let mut work = self.work.lock().unwrap_or_else(|p| p.into_inner());
        work.insert(cell.key(), value.clone());
    }

    /// Hit/miss counters of the cell layer.
    // effect-allow(GlobalState): observability-only relaxed counters —
    // never fed back into any computed result.
    pub fn work_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.work_hits.load(Ordering::Relaxed),
            misses: self.work_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized cell executions.
    // effect-allow(GlobalState): observability-only cache size probe.
    pub fn work_len(&self) -> usize {
        self.work.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use crate::harness::FaultTally;
    use crate::prompt::PromptStyle;

    fn cell(seed: u64) -> CellId {
        CellId {
            system: TargetSystem::NcFlow,
            style: PromptStyle::ModularText,
            seed,
            profile: FaultProfile::None,
            scale: crate::harness::TopoScale::Paper,
        }
    }

    #[test]
    fn specs_are_shared_per_system() {
        let memo = CellMemo::new();
        let a = memo.spec(TargetSystem::NcFlow);
        let b = memo.spec(TargetSystem::NcFlow);
        assert!(Arc::ptr_eq(&a, &b), "same system must share one spec");
        let c = memo.spec(TargetSystem::Arrow);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn participants_match_the_uncached_preset() {
        let memo = CellMemo::new();
        let c = cell(3);
        let cached = memo.participant(c);
        let fresh = c.participant();
        assert_eq!(cached.name, fresh.name);
        assert_eq!(cached.strategy.style, fresh.strategy.style);
        // Cells of the class share the memo regardless of seed.
        let again = memo.participant(cell(99));
        assert_eq!(again.name, cached.name);
    }

    #[test]
    fn work_memo_replays_and_counts() {
        let memo = CellMemo::new();
        let c = cell(0);
        assert!(memo.lookup_work(c).is_none());
        let w = CellWork {
            attempts: Vec::new(),
            result: None,
            faults: FaultTally::zero(),
            ticks: 7,
        };
        memo.store_work(c, &w);
        let hit = memo.lookup_work(c).expect("warm hit");
        assert_eq!(hit, w);
        assert_eq!(memo.work_stats(), MemoStats { hits: 1, misses: 1 });
        assert_eq!(memo.work_len(), 1);
        // A different seed is a different cell.
        assert!(memo.lookup_work(cell(1)).is_none());
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
        let s = MemoStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
