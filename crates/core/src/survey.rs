//! The SIGCOMM/NSDI reproduction survey (§2.1, Figures 1 and 2).
//!
//! The paper's authors read every full SIGCOMM/NSDI paper from 2013 to
//! 2022 and recorded (1) whether the authors open-sourced a prototype,
//! (2) how many systems each paper compares against and (3) how many of
//! those the authors had to re-implement by hand. The raw corpus is not
//! published, so this module generates a *calibrated synthetic corpus*:
//! the venue-year skeleton is deterministic and matches the published
//! aggregates (32% / 29% / 31% open-source; 59.68% of papers compare
//! with ≥ 2 systems; 49.20% / 26.65% manually reproduce ≥ 1 / ≥ 2), and
//! the per-paper detail is sampled from distributions fitted to those
//! aggregates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Conference venue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Venue {
    /// ACM SIGCOMM.
    Sigcomm,
    /// USENIX NSDI.
    Nsdi,
}

/// One corpus paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusPaper {
    /// Venue.
    pub venue: Venue,
    /// Publication year.
    pub year: u32,
    /// Author-released open-source prototype?
    pub open_source: bool,
    /// Systems compared against in the evaluation.
    pub compared: u32,
    /// Of those, how many the authors manually re-implemented.
    pub manually_reproduced: u32,
}

/// Per-venue-year totals: `(year, papers, open_source_papers)`.
fn skeleton(venue: Venue) -> Vec<(u32, u32, u32)> {
    // Totals sized like the real programs; open counts rise over time
    // and sum to the published rates (SIGCOMM 32%, NSDI 29%).
    match venue {
        Venue::Sigcomm => vec![
            (2013, 38, 7),
            (2014, 45, 9),
            (2015, 40, 9),
            (2016, 39, 10),
            (2017, 38, 11),
            (2018, 40, 13),
            (2019, 32, 11),
            (2020, 48, 18),
            (2021, 55, 24),
            (2022, 60, 27),
        ],
        Venue::Nsdi => vec![
            (2013, 34, 5),
            (2014, 42, 8),
            (2015, 42, 9),
            (2016, 45, 10),
            (2017, 40, 10),
            (2018, 46, 12),
            (2019, 49, 14),
            (2020, 65, 20),
            (2021, 68, 26),
            (2022, 72, 32),
        ],
    }
}

/// Manual-reproduction count distribution, fitted to Figure 2's
/// aggregates: `P(≥1) = 49.2%`, `P(≥2) = 26.65%`, heavy tail.
const MANUAL_DIST: [(u32, f64); 8] = [
    (0, 0.508),
    (1, 0.2255),
    (2, 0.12),
    (3, 0.06),
    (4, 0.035),
    (5, 0.025),
    (6, 0.015),
    (8, 0.0115),
];

/// Extra (open-source-available) comparisons on top of the manual ones,
/// fitted so `P(compared ≥ 2) ≈ 59.68%`.
const EXTRA_DIST: [(u32, f64); 4] = [(0, 0.32), (1, 0.34), (2, 0.22), (3, 0.12)];

fn sample(dist: &[(u32, f64)], rng: &mut StdRng) -> u32 {
    let x: f64 = rng.random();
    let mut acc = 0.0;
    for &(v, p) in dist {
        acc += p;
        if x < acc {
            return v;
        }
    }
    // Accumulated probabilities can fall just short of 1.0; the last
    // bucket absorbs the remainder. An empty distribution yields 0.
    dist.last().map_or(0, |&(v, _)| v)
}

/// Generate the corpus for both venues, 2013–2022.
pub fn build_corpus(seed: u64) -> Vec<CorpusPaper> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut papers = Vec::new();
    for venue in [Venue::Sigcomm, Venue::Nsdi] {
        for (year, total, open) in skeleton(venue) {
            for i in 0..total {
                let manually_reproduced = sample(&MANUAL_DIST, &mut rng);
                let extra = sample(&EXTRA_DIST, &mut rng);
                papers.push(CorpusPaper {
                    venue,
                    year,
                    open_source: i < open,
                    compared: manually_reproduced + extra,
                    manually_reproduced,
                });
            }
        }
    }
    papers
}

/// Aggregated survey statistics (everything Figures 1–2 plot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurveyStats {
    /// Per `(venue, year)`: open-source fraction.
    pub per_year: Vec<(Venue, u32, f64)>,
    /// SIGCOMM aggregate open-source rate.
    pub sigcomm_rate: f64,
    /// NSDI aggregate open-source rate.
    pub nsdi_rate: f64,
    /// Combined open-source rate.
    pub both_rate: f64,
    /// Fraction of papers comparing with ≥ 2 systems.
    pub pct_ge2_compared: f64,
    /// Mean manual reproductions per paper (over all papers).
    pub mean_manual: f64,
    /// Mean manual reproductions over papers that reproduce ≥ 1.
    pub mean_manual_conditional: f64,
    /// Fraction manually reproducing ≥ 1 system.
    pub pct_ge1_manual: f64,
    /// Fraction manually reproducing ≥ 2 systems.
    pub pct_ge2_manual: f64,
}

impl SurveyStats {
    /// Compute the statistics of a corpus.
    pub fn compute(corpus: &[CorpusPaper]) -> SurveyStats {
        let frac = |pred: &dyn Fn(&CorpusPaper) -> bool| -> f64 {
            corpus.iter().filter(|p| pred(p)).count() as f64 / corpus.len() as f64
        };
        let venue_rate = |v: Venue| -> f64 {
            let papers: Vec<_> = corpus.iter().filter(|p| p.venue == v).collect();
            papers.iter().filter(|p| p.open_source).count() as f64 / papers.len() as f64
        };
        let mut per_year = Vec::new();
        for venue in [Venue::Sigcomm, Venue::Nsdi] {
            for year in 2013..=2022 {
                let papers: Vec<_> = corpus
                    .iter()
                    .filter(|p| p.venue == venue && p.year == year)
                    .collect();
                if !papers.is_empty() {
                    let rate = papers.iter().filter(|p| p.open_source).count() as f64
                        / papers.len() as f64;
                    per_year.push((venue, year, rate));
                }
            }
        }
        let manual_total: u64 =
            corpus.iter().map(|p| p.manually_reproduced as u64).sum();
        let manual_ge1 = corpus.iter().filter(|p| p.manually_reproduced >= 1).count();
        SurveyStats {
            per_year,
            sigcomm_rate: venue_rate(Venue::Sigcomm),
            nsdi_rate: venue_rate(Venue::Nsdi),
            both_rate: frac(&|p| p.open_source),
            pct_ge2_compared: frac(&|p| p.compared >= 2),
            mean_manual: manual_total as f64 / corpus.len() as f64,
            mean_manual_conditional: if manual_ge1 > 0 {
                manual_total as f64 / manual_ge1 as f64
            } else {
                0.0
            },
            pct_ge1_manual: frac(&|p| p.manually_reproduced >= 1),
            pct_ge2_manual: frac(&|p| p.manually_reproduced >= 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SurveyStats {
        SurveyStats::compute(&build_corpus(2023))
    }

    #[test]
    fn corpus_size_matches_skeleton() {
        let c = build_corpus(0);
        let expect: u32 = skeleton(Venue::Sigcomm).iter().map(|&(_, t, _)| t).sum::<u32>()
            + skeleton(Venue::Nsdi).iter().map(|&(_, t, _)| t).sum::<u32>();
        assert_eq!(c.len() as u32, expect);
    }

    #[test]
    fn open_source_rates_match_figure1() {
        let s = stats();
        assert!((s.sigcomm_rate - 0.32).abs() < 0.015, "SIGCOMM {}", s.sigcomm_rate);
        assert!((s.nsdi_rate - 0.29).abs() < 0.015, "NSDI {}", s.nsdi_rate);
        assert!((s.both_rate - 0.31).abs() < 0.015, "both {}", s.both_rate);
    }

    #[test]
    fn open_source_rate_rises_over_time() {
        let s = stats();
        for venue in [Venue::Sigcomm, Venue::Nsdi] {
            let first: f64 = s
                .per_year
                .iter()
                .filter(|&&(v, y, _)| v == venue && y <= 2015)
                .map(|&(_, _, r)| r)
                .sum::<f64>()
                / 3.0;
            let last: f64 = s
                .per_year
                .iter()
                .filter(|&&(v, y, _)| v == venue && y >= 2020)
                .map(|&(_, _, r)| r)
                .sum::<f64>()
                / 3.0;
            assert!(last > first, "{venue:?} open-source rate should rise");
        }
    }

    #[test]
    fn comparison_stats_match_figure2() {
        let s = stats();
        assert!((s.pct_ge2_compared - 0.5968).abs() < 0.04, "≥2 compared {}", s.pct_ge2_compared);
        assert!((s.pct_ge1_manual - 0.492).abs() < 0.04, "≥1 manual {}", s.pct_ge1_manual);
        assert!((s.pct_ge2_manual - 0.2665).abs() < 0.04, "≥2 manual {}", s.pct_ge2_manual);
        // The paper quotes 2.29 as the manual-reproduction burden; our
        // fitted distribution puts the conditional mean there.
        assert!(
            (s.mean_manual_conditional - 2.29).abs() < 0.35,
            "conditional mean {}",
            s.mean_manual_conditional
        );
    }

    #[test]
    fn manual_never_exceeds_compared() {
        for p in build_corpus(5) {
            assert!(p.manually_reproduced <= p.compared);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_corpus(9);
        let b = build_corpus(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.compared, y.compared);
            assert_eq!(x.manually_reproduced, y.manually_reproduced);
        }
    }
}
