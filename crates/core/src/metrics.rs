//! Serialisable experiment records and table formatting shared by the
//! figure-regeneration binaries.

use serde::{Deserialize, Serialize};

/// A generic experiment row: label plus named numeric columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Row label (instance, participant, year, …).
    pub label: String,
    /// `(column name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, values: Vec<(&str, f64)>) -> Row {
        Row {
            label: label.into(),
            values: values.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }
}

/// A titled table of rows, printable and serialisable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table/figure id, e.g. `"Figure 4"`.
    pub id: String,
    /// Human caption.
    pub caption: String,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// A new empty table.
    pub fn new(id: &str, caption: &str) -> Table {
        Table { id: id.to_string(), caption: caption.to_string(), rows: Vec::new() }
    }

    /// Append a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.caption));
        if self.rows.is_empty() {
            out.push_str("(empty)\n");
            return out;
        }
        let cols: Vec<String> = self.rows[0].values.iter().map(|(k, _)| k.clone()).collect();
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(5))
            .max()
            .unwrap_or(5);
        out.push_str(&format!("{:label_w$}", ""));
        for c in &cols {
            out.push_str(&format!("  {:>14}", c));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:label_w$}", r.label));
            for (_, v) in &r.values {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    out.push_str(&format!("  {:>14.3e}", v));
                } else {
                    out.push_str(&format!("  {:>14.3}", v));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Figure X", "test");
        t.push(Row::new("abilene", vec![("flow", 12.5), ("ratio", 0.97)]));
        t.push(Row::new("kdl", vec![("flow", 1500.0), ("ratio", 1.01)]));
        let s = t.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("abilene"));
        assert!(s.contains("flow"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn json_round_trips() {
        let mut t = Table::new("T", "c");
        t.push(Row::new("r", vec![("v", 1.0)]));
        let j = t.to_json();
        let back: Table = serde_json::from_str(&j).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0].label, "r");
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("E", "empty");
        assert!(t.render().contains("(empty)"));
    }
}
