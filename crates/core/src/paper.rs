//! Component-level specifications of the reproduced papers.
//!
//! Each target system is described the way a participant would decompose
//! it after reading the paper: an ordered list of components with their
//! description size, whether the paper gives pseudocode for them, and a
//! difficulty weight. These specs drive both the simulated LLM (harder
//! components breed more defects) and the LoC accounting of Figure 5.

use serde::{Deserialize, Serialize};

/// The four systems of the paper's experiment, plus the motivating
/// example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetSystem {
    /// NCFlow (NSDI 2021) — participant A.
    NcFlow,
    /// ARROW (SIGCOMM 2021) — participant B.
    Arrow,
    /// APKeep (NSDI 2020) — participant C.
    ApKeep,
    /// Atomic Predicates verifier (ToN 2016) — participant D.
    ApVerifier,
    /// The rock-paper-scissors client/server of Figure 3.
    RockPaperScissors,
}

impl TargetSystem {
    /// The four experiment systems, in participant order (A, B, C, D).
    pub const EXPERIMENT: [TargetSystem; 4] = [
        TargetSystem::NcFlow,
        TargetSystem::Arrow,
        TargetSystem::ApKeep,
        TargetSystem::ApVerifier,
    ];

    /// Participant letter for the experiment systems.
    pub fn participant(&self) -> &'static str {
        match self {
            TargetSystem::NcFlow => "A",
            TargetSystem::Arrow => "B",
            TargetSystem::ApKeep => "C",
            TargetSystem::ApVerifier => "D",
            TargetSystem::RockPaperScissors => "-",
        }
    }

    /// Parse a CLI system name (lowercase aliases of the display name).
    pub fn parse(s: &str) -> Option<TargetSystem> {
        match s.to_ascii_lowercase().as_str() {
            "ncflow" => Some(TargetSystem::NcFlow),
            "arrow" => Some(TargetSystem::Arrow),
            "apkeep" => Some(TargetSystem::ApKeep),
            "ap" | "apverifier" => Some(TargetSystem::ApVerifier),
            "rps" => Some(TargetSystem::RockPaperScissors),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TargetSystem::NcFlow => "NCFlow",
            TargetSystem::Arrow => "ARROW",
            TargetSystem::ApKeep => "APKeep",
            TargetSystem::ApVerifier => "AP",
            TargetSystem::RockPaperScissors => "RPS",
        }
    }
}

/// One component of a system, as a participant would prompt for it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Short name used in prompts.
    pub name: String,
    /// Words a modular prompt needs to describe it.
    pub description_words: u32,
    /// Whether the paper provides pseudocode for this component.
    pub has_pseudocode: bool,
    /// Relative difficulty in `(0, 1]` — scales defect rates.
    pub difficulty: f64,
    /// Lines of code the LLM generates for it (central estimate).
    pub loc_estimate: u32,
    /// Number of shared data types this component defines or consumes
    /// (interop surface).
    pub shared_types: u32,
}

/// A paper spec: the system decomposition plus the open-source
/// prototype's size (the Figure 5 denominator).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperSpec {
    /// Which system this is.
    pub system: TargetSystem,
    /// Ordered components.
    pub components: Vec<ComponentSpec>,
    /// LoC of the open-source prototype (the paper's Figure 5 baseline;
    /// values chosen to match the reported ratios: the reproduced
    /// NCFlow/ARROW are 17%/19% of the originals, AP/APKeep ≈ 100%).
    pub open_source_loc: u32,
}

fn comp(
    name: &str,
    description_words: u32,
    has_pseudocode: bool,
    difficulty: f64,
    loc_estimate: u32,
    shared_types: u32,
) -> ComponentSpec {
    ComponentSpec {
        name: name.to_string(),
        description_words,
        has_pseudocode,
        difficulty,
        loc_estimate,
        shared_types,
    }
}

impl PaperSpec {
    /// The spec for `system`.
    pub fn for_system(system: TargetSystem) -> PaperSpec {
        match system {
            TargetSystem::NcFlow => PaperSpec {
                system,
                open_source_loc: 9_100,
                components: vec![
                    comp("topology and demand model", 160, false, 0.3, 180, 3),
                    comp("cluster partitioner", 140, false, 0.4, 120, 2),
                    comp("contracted-graph builder", 150, true, 0.5, 140, 3),
                    comp("R1 aggregate flow LP", 220, true, 0.7, 260, 4),
                    comp("R2 per-cluster LPs", 240, true, 0.8, 300, 4),
                    comp("R3 reconciliation", 180, true, 0.6, 160, 3),
                    comp("evaluation driver", 120, false, 0.3, 160, 2),
                ],
            },
            TargetSystem::Arrow => PaperSpec {
                system,
                open_source_loc: 5_600,
                components: vec![
                    comp("optical topology model", 150, false, 0.4, 150, 3),
                    comp("failure-scenario generator", 130, false, 0.4, 110, 2),
                    comp("restoration-ticket model", 200, false, 0.8, 180, 3),
                    comp("restoration-aware LP", 260, true, 0.9, 320, 4),
                    comp("committed-throughput accounting", 140, true, 0.5, 120, 2),
                    comp("evaluation driver", 120, false, 0.3, 150, 2),
                ],
            },
            TargetSystem::ApKeep => PaperSpec {
                system,
                open_source_loc: 6_000,
                components: vec![
                    comp("BDD engine bindings", 140, false, 0.4, 600, 4),
                    comp("port-predicate map", 180, true, 0.6, 800, 3),
                    comp("identify-changes insert", 200, true, 0.7, 900, 3),
                    comp("identify-changes delete", 190, true, 0.7, 800, 3),
                    comp("atom split/merge", 200, true, 0.8, 900, 3),
                    comp("loop/blackhole checker", 170, true, 0.6, 900, 3),
                    comp("update driver", 110, false, 0.3, 700, 2),
                ],
            },
            TargetSystem::ApVerifier => PaperSpec {
                system,
                open_source_loc: 2_600,
                components: vec![
                    comp("BDD engine bindings", 140, false, 0.4, 350, 4),
                    comp("predicate compiler", 190, true, 0.6, 500, 3),
                    comp("atomic-predicate computation", 220, true, 0.8, 600, 3),
                    comp("reachability verification", 230, false, 0.9, 550, 3),
                    comp("dataset loader", 110, false, 0.3, 400, 2),
                ],
            },
            TargetSystem::RockPaperScissors => PaperSpec {
                system,
                open_source_loc: 93,
                components: vec![
                    comp("protocol and validation", 40, false, 0.2, 25, 1),
                    comp("server loop", 45, false, 0.3, 40, 1),
                    comp("client loop", 40, false, 0.2, 28, 1),
                ],
            },
        }
    }

    /// Total estimated generated LoC (the Figure 5 numerator's centre).
    pub fn estimated_loc(&self) -> u32 {
        self.components.iter().map(|c| c.loc_estimate).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_has_four_participants() {
        let letters: Vec<_> =
            TargetSystem::EXPERIMENT.iter().map(|s| s.participant()).collect();
        assert_eq!(letters, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn loc_ratios_match_figure5_shape() {
        // Reproduced NCFlow ≈ 17%, ARROW ≈ 19%, AP/APKeep ≈ 100%.
        let nc = PaperSpec::for_system(TargetSystem::NcFlow);
        let ratio = nc.estimated_loc() as f64 / nc.open_source_loc as f64;
        assert!((0.10..=0.25).contains(&ratio), "NCFlow ratio {ratio}");
        let ar = PaperSpec::for_system(TargetSystem::Arrow);
        let ratio = ar.estimated_loc() as f64 / ar.open_source_loc as f64;
        assert!((0.12..=0.27).contains(&ratio), "ARROW ratio {ratio}");
        let ak = PaperSpec::for_system(TargetSystem::ApKeep);
        let ratio = ak.estimated_loc() as f64 / ak.open_source_loc as f64;
        assert!((0.8..=1.2).contains(&ratio), "APKeep ratio {ratio}");
        let ap = PaperSpec::for_system(TargetSystem::ApVerifier);
        let ratio = ap.estimated_loc() as f64 / ap.open_source_loc as f64;
        assert!((0.8..=1.2).contains(&ratio), "AP ratio {ratio}");
    }

    #[test]
    fn rps_is_small() {
        let rps = PaperSpec::for_system(TargetSystem::RockPaperScissors);
        assert!(rps.estimated_loc() <= 120);
        assert_eq!(rps.components.len(), 3);
    }

    #[test]
    fn te_systems_have_pseudocode_heavy_cores() {
        for sys in [TargetSystem::NcFlow, TargetSystem::Arrow] {
            let spec = PaperSpec::for_system(sys);
            assert!(spec.components.iter().any(|c| c.has_pseudocode));
        }
    }

    #[test]
    fn difficulties_in_range() {
        for sys in TargetSystem::EXPERIMENT {
            for c in PaperSpec::for_system(sys).components {
                assert!(c.difficulty > 0.0 && c.difficulty <= 1.0);
            }
        }
    }
}
