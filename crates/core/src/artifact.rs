//! Prototype assembly and LoC accounting — the data behind Figure 5.

use crate::llm::CodeArtifact;
use crate::paper::{PaperSpec, TargetSystem};
use serde::{Deserialize, Serialize};

/// The assembled reproduced prototype.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrototypeArtifact {
    /// Which system it reproduces.
    pub system: TargetSystem,
    /// Number of assembled components.
    pub components: usize,
    /// Total generated lines of code.
    pub loc: u32,
    /// LoC of the corresponding open-source prototype.
    pub open_source_loc: u32,
}

impl PrototypeArtifact {
    /// Assemble component artifacts into a prototype record.
    pub fn assemble(spec: &PaperSpec, artifacts: &[CodeArtifact]) -> Self {
        PrototypeArtifact {
            system: spec.system,
            components: artifacts.len(),
            loc: artifacts.iter().map(|a| a.loc).sum(),
            open_source_loc: spec.open_source_loc,
        }
    }

    /// Reproduced-to-open-source LoC ratio (Figure 5's comparison).
    pub fn loc_ratio(&self) -> f64 {
        self.loc as f64 / self.open_source_loc as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llm::CodeArtifact;

    #[test]
    fn assemble_sums_loc() {
        let spec = PaperSpec::for_system(TargetSystem::ApVerifier);
        let arts: Vec<CodeArtifact> = (0..3)
            .map(|i| CodeArtifact::with_defects(i, 100, 2, vec![]))
            .collect();
        let p = PrototypeArtifact::assemble(&spec, &arts);
        assert_eq!(p.loc, 300);
        assert_eq!(p.components, 3);
        assert_eq!(p.open_source_loc, spec.open_source_loc);
    }

    #[test]
    fn ratio_is_fractional() {
        let spec = PaperSpec::for_system(TargetSystem::NcFlow);
        let arts = vec![CodeArtifact::with_defects(0, 910, 2, vec![])];
        let p = PrototypeArtifact::assemble(&spec, &arts);
        assert!((p.loc_ratio() - 0.1).abs() < 1e-9);
    }
}
