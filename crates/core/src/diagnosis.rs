//! Discrepancy diagnosis — §4's "handling missing details and
//! vulnerabilities", made executable.
//!
//! Given a differential-validation row (reproduced vs open-source), the
//! diagnoser classifies the discrepancy into the root-cause taxonomy
//! the paper's §3.2 case studies establish:
//!
//! * **objective matches, latency far apart** → an implementation-stack
//!   choice (participant A's LP solver; participant D's BDD library);
//! * **objective diverges** → a paper–code inconsistency (participant
//!   B's predefined-parameters-vs-decision-variables);
//! * **answers match, one phase is orders of magnitude slower** → a
//!   missing algorithmic detail the reproducer filled in naïvely
//!   (participant D's path enumeration);
//! * **everything matches** → a faithful reproduction (participant C).
//!
//! This is the "comparatively analyse the two prototypes" half of the
//! paper's formal-methods proposal; the thresholds are the paper's own
//! reported magnitudes.

use crate::validate::{DpvValidation, StaticGate, TeValidation};
use serde::{Deserialize, Serialize};

/// Root causes, per the §3.2 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RootCause {
    /// The reproduction is faithful: same answers, comparable latency.
    Faithful,
    /// Same answers; latency gap attributable to a library/solver swap.
    StackChoice,
    /// Different answers: the paper and the released code disagree.
    PaperCodeInconsistency,
    /// Same answers; one phase catastrophically slower: the paper omits
    /// an algorithmic detail the reproducer had to invent.
    MissingAlgorithmicDetail,
    /// Different answers that even re-runs of one side produce: the
    /// comparison itself is unsound.
    Inconclusive,
    /// The static auditor found error-severity defects before any run:
    /// the prototype is rejected without executing it.
    StaticallyRejected,
}

/// A diagnosis with its supporting evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The classified root cause.
    pub cause: RootCause,
    /// Human-readable evidence line.
    pub evidence: String,
}

/// Objective tolerance under which two TE runs count as "same answer"
/// (the paper's participant A observed ≤ 3.51% as agreement).
pub const OBJ_AGREEMENT_PCT: f64 = 3.51;
/// Latency ratio above which a gap counts as a stack choice.
pub const STACK_GAP: f64 = 5.0;
/// Latency ratio above which a gap counts as a missing detail
/// (participant D's 10⁴× is the archetype; two orders is the floor).
pub const ALGORITHMIC_GAP: f64 = 100.0;

/// Diagnose a TE validation row.
pub fn diagnose_te(v: &TeValidation) -> Diagnosis {
    let obj_diff = v.obj_diff_pct();
    let ratio = v.latency_ratio().max(1.0 / v.latency_ratio().max(1e-12));
    if obj_diff > OBJ_AGREEMENT_PCT {
        Diagnosis {
            cause: RootCause::PaperCodeInconsistency,
            evidence: format!(
                "objectives diverge by {obj_diff:.1}% (> {OBJ_AGREEMENT_PCT}%): the two \
                 prototypes solve different formulations"
            ),
        }
    } else if ratio >= STACK_GAP {
        Diagnosis {
            cause: RootCause::StackChoice,
            evidence: format!(
                "objectives agree (Δ {obj_diff:.2}%) but latency differs {ratio:.0}×: \
                 same algorithm on a different solver/library stack"
            ),
        }
    } else {
        Diagnosis {
            cause: RootCause::Faithful,
            evidence: format!(
                "objectives agree (Δ {obj_diff:.2}%) and latency is comparable ({ratio:.1}×)"
            ),
        }
    }
}

/// Diagnose a DPV validation row.
pub fn diagnose_dpv(v: &DpvValidation) -> Diagnosis {
    if v.atoms_open != v.atoms_repro || !v.results_equal {
        return Diagnosis {
            cause: RootCause::Inconclusive,
            evidence: format!(
                "verification answers differ (atoms {} vs {}, equal={}): \
                 the reproduction is not yet correct enough to compare",
                v.atoms_open, v.atoms_repro, v.results_equal
            ),
        };
    }
    let verify_ratio = v.verify_ratio();
    let pred_ratio = v.pred_ratio();
    if verify_ratio >= ALGORITHMIC_GAP {
        Diagnosis {
            cause: RootCause::MissingAlgorithmicDetail,
            evidence: format!(
                "same answers but verification is {verify_ratio:.0}× slower: the paper \
                 omits the traversal strategy (selective BFS) and the reproduction \
                 enumerates paths"
            ),
        }
    } else if pred_ratio >= 1.5 || verify_ratio >= STACK_GAP {
        Diagnosis {
            cause: RootCause::StackChoice,
            evidence: format!(
                "same answers; predicate computation {pred_ratio:.1}× and verification \
                 {verify_ratio:.1}× slower: a weaker BDD library"
            ),
        }
    } else {
        Diagnosis {
            cause: RootCause::Faithful,
            evidence: format!(
                "same answers, comparable latency (pred {pred_ratio:.1}×, verify \
                 {verify_ratio:.1}×)"
            ),
        }
    }
}

/// Diagnose a pre-execution static audit: the gate that runs before
/// any differential validation. Error-severity findings (type errors,
/// interop mismatches — code that would not compile or integrate)
/// reject the prototype outright; warnings alone let it through to
/// execution, which is where logic bugs are confirmed or cleared.
pub fn diagnose_static(gate: &StaticGate) -> Diagnosis {
    if gate.rejects() {
        Diagnosis {
            cause: RootCause::StaticallyRejected,
            evidence: format!(
                "{} error-severity static finding(s) ({} warning(s)); worst: {} — \
                 rejected before execution",
                gate.errors, gate.warnings, gate.worst
            ),
        }
    } else if gate.warnings > 0 {
        Diagnosis {
            cause: RootCause::Inconclusive,
            evidence: format!(
                "static audit passed the compile/interop gate but left {} logic \
                 warning(s) ({}); execution-based validation must confirm",
                gate.warnings, gate.worst
            ),
        }
    } else {
        Diagnosis {
            cause: RootCause::Faithful,
            evidence: "static audit clean: no findings at any severity".into(),
        }
    }
}

/// Diagnose a resilience report: before comparing prototypes, decide
/// whether the run the numbers came from can be trusted. A run whose
/// injected faults were all absorbed is as comparable as a fault-free
/// one (the mechanisms replayed/degraded their way back to a complete
/// artifact); any escaped fault makes the comparison unsound, exactly
/// like participant-level nondeterminism does.
pub fn diagnose_resilience(r: &crate::fault::ResilienceReport) -> Diagnosis {
    if r.injected == 0 {
        return Diagnosis {
            cause: RootCause::Faithful,
            evidence: format!(
                "no faults fired under profile '{}' (seed {}): the run is a clean baseline",
                r.profile, r.seed
            ),
        };
    }
    if r.escaped == 0 {
        Diagnosis {
            cause: RootCause::Faithful,
            evidence: format!(
                "all {} injected fault(s) absorbed (retry, fallback solver, table growth): \
                 outputs remain comparable",
                r.injected
            ),
        }
    } else {
        let worst = r
            .by_site
            .iter()
            .max_by_key(|s| s.escaped)
            .map(|s| s.site.clone())
            .unwrap_or_else(|| "?".into());
        Diagnosis {
            cause: RootCause::Inconclusive,
            evidence: format!(
                "{}/{} injected fault(s) escaped (worst site: {worst}): outputs were \
                 produced under unhandled failures and cannot be compared",
                r.escaped, r.injected
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn te(obj_open: f64, obj_repro: f64, ms_open: u64, ms_repro: u64) -> TeValidation {
        TeValidation {
            instance: "t".into(),
            obj_open,
            obj_repro,
            latency_open: Duration::from_millis(ms_open),
            latency_repro: Duration::from_millis(ms_repro),
        }
    }

    fn dpv(
        atoms: (usize, usize),
        equal: bool,
        pred: (u64, u64),
        verify: (u64, u64),
    ) -> DpvValidation {
        DpvValidation {
            dataset: "d".into(),
            atoms_open: atoms.0,
            atoms_repro: atoms.1,
            pred_time_open: Duration::from_micros(pred.0),
            pred_time_repro: Duration::from_micros(pred.1),
            verify_time_open: Duration::from_micros(verify.0),
            verify_time_repro: Duration::from_micros(verify.1),
            results_equal: equal,
        }
    }

    #[test]
    fn participant_a_pattern_is_stack_choice() {
        let d = diagnose_te(&te(100.0, 99.0, 10, 1110)); // 111x slower
        assert_eq!(d.cause, RootCause::StackChoice);
    }

    #[test]
    fn participant_b_pattern_is_inconsistency() {
        let d = diagnose_te(&te(100.0, 70.0, 10, 12)); // 30% objective gap
        assert_eq!(d.cause, RootCause::PaperCodeInconsistency);
    }

    #[test]
    fn participant_c_pattern_is_faithful() {
        let d = diagnose_dpv(&dpv((25, 25), true, (100, 110), (50, 55)));
        assert_eq!(d.cause, RootCause::Faithful);
    }

    #[test]
    fn participant_d_pattern_is_missing_detail() {
        let d = diagnose_dpv(&dpv((25, 25), true, (100, 2000), (50, 500_000)));
        assert_eq!(d.cause, RootCause::MissingAlgorithmicDetail);
    }

    #[test]
    fn bdd_library_only_gap_is_stack_choice() {
        let d = diagnose_dpv(&dpv((25, 25), true, (100, 2000), (50, 120)));
        assert_eq!(d.cause, RootCause::StackChoice);
    }

    #[test]
    fn wrong_answers_are_inconclusive() {
        let d = diagnose_dpv(&dpv((25, 31), true, (100, 100), (50, 50)));
        assert_eq!(d.cause, RootCause::Inconclusive);
    }

    #[test]
    fn faithful_te() {
        let d = diagnose_te(&te(100.0, 99.9, 10, 13));
        assert_eq!(d.cause, RootCause::Faithful);
    }

    #[test]
    fn static_gate_classification() {
        use crate::validate::StaticGate;
        let rejected = StaticGate { errors: 2, warnings: 1, worst: "call/signature mismatch".into() };
        let d = diagnose_static(&rejected);
        assert_eq!(d.cause, RootCause::StaticallyRejected);
        assert!(d.evidence.contains("rejected before execution"));

        let warned = StaticGate { errors: 0, warnings: 3, worst: "branch collapse".into() };
        assert_eq!(diagnose_static(&warned).cause, RootCause::Inconclusive);

        assert_eq!(diagnose_static(&StaticGate::clean()).cause, RootCause::Faithful);
    }

    #[test]
    fn resilience_report_classification() {
        use crate::fault::{
            FaultInjector, FaultKind, FaultPlan, FaultProfile, FaultSite,
        };
        // Clean baseline: nothing injected.
        let clean = FaultInjector::disabled().report();
        assert_eq!(diagnose_resilience(&clean).cause, RootCause::Faithful);

        // All absorbed: still faithful.
        let mut inj = FaultPlan::new(FaultProfile::Chaos, 1).injector();
        let mut absorbed_one = false;
        for _ in 0..64 {
            if let Some(f) = inj.roll(FaultSite::LpSolver, FaultKind::SolverStall) {
                inj.absorb(f);
                absorbed_one = true;
            }
        }
        assert!(absorbed_one);
        assert_eq!(diagnose_resilience(&inj.report()).cause, RootCause::Faithful);

        // One escape: the comparison is unsound.
        let mut leaked = false;
        for _ in 0..64 {
            if inj.roll(FaultSite::BddTable, FaultKind::TableExhaustion).is_some() {
                leaked = true;
                break;
            }
        }
        assert!(leaked);
        let d = diagnose_resilience(&inj.report());
        assert_eq!(d.cause, RootCause::Inconclusive);
        assert!(d.evidence.contains("bdd-table"), "worst site named: {}", d.evidence);
    }
}
