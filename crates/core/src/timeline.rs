//! The experiment calendar of §3.1: each participant works in a 25-day
//! window during spare time, with an online progress meeting every
//! three to five days.
//!
//! [`schedule`] lays a session's prompts onto that calendar
//! deterministically: effort is spread over working evenings, meeting
//! days carry no prompting (the paper's meetings discussed progress and
//! system-design advice, never prompts). The result feeds the
//! transcript and gives "days elapsed" — the cost metric the paper's
//! abstract argues LLM assistance shrinks.

use crate::session::SessionReport;
use serde::{Deserialize, Serialize};

/// The experiment window in days (§3.1).
pub const WINDOW_DAYS: u32 = 25;

/// One calendar day of the reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Day {
    /// 1-based day number.
    pub day: u32,
    /// Whether a progress meeting happened (no prompting that day).
    pub meeting: bool,
    /// Indices into `SessionReport::prompts` sent on this day.
    pub prompts: Vec<usize>,
}

/// A session laid onto the 25-day calendar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// The calendar, day 1 to the last active day.
    pub days: Vec<Day>,
}

impl Timeline {
    /// The number of days until the final prompt (the paper's
    /// completion-time measure).
    pub fn days_elapsed(&self) -> u32 {
        self.days
            .iter()
            .rev()
            .find(|d| !d.prompts.is_empty())
            .map(|d| d.day)
            .unwrap_or(0)
    }

    /// Number of meetings held up to completion.
    pub fn meetings_held(&self) -> usize {
        let last = self.days_elapsed();
        self.days.iter().filter(|d| d.meeting && d.day <= last).count()
    }
}

/// Lay `report` onto the calendar. `prompts_per_evening` models how
/// much spare time the participant has (the paper's students worked
/// alongside coursework; 2–4 prompts per evening is the reported pace).
pub fn schedule(report: &SessionReport, prompts_per_evening: usize) -> Timeline {
    assert!(prompts_per_evening > 0);
    let mut days = Vec::new();
    let mut next_prompt = 0usize;
    let total = report.prompts.len();
    let mut day = 1u32;
    // Meetings every 4 days (the middle of the paper's "three to five").
    while next_prompt < total && day <= WINDOW_DAYS {
        let meeting = day.is_multiple_of(4);
        let mut prompts = Vec::new();
        if !meeting {
            for _ in 0..prompts_per_evening {
                if next_prompt >= total {
                    break;
                }
                prompts.push(next_prompt);
                next_prompt += 1;
            }
        }
        days.push(Day { day, meeting, prompts });
        day += 1;
    }
    // Overflow beyond the window: the remaining prompts pile onto the
    // final day (a deadline crunch, faithfully modelled).
    if next_prompt < total {
        if let Some(last) = days.last_mut() {
            last.prompts.extend(next_prompt..total);
        }
    }
    Timeline { days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::TargetSystem;
    use crate::student::Participant;
    use crate::ReproductionSession;

    fn report(sys: TargetSystem) -> SessionReport {
        ReproductionSession::new(Participant::preset(sys), 2023).run()
    }

    #[test]
    fn every_prompt_lands_on_exactly_one_day() {
        let r = report(TargetSystem::NcFlow);
        let t = schedule(&r, 3);
        let mut all: Vec<usize> = t.days.iter().flat_map(|d| d.prompts.clone()).collect();
        all.sort();
        let expect: Vec<usize> = (0..r.prompts.len()).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn meetings_carry_no_prompts_inside_window() {
        let r = report(TargetSystem::ApKeep);
        let t = schedule(&r, 2);
        for d in &t.days {
            if d.meeting && d.day < WINDOW_DAYS {
                // Only the deadline-crunch final day may break the rule.
                if d.day != t.days.last().unwrap().day {
                    assert!(d.prompts.is_empty(), "meeting day {} has prompts", d.day);
                }
            }
        }
    }

    #[test]
    fn finishes_within_the_window() {
        for sys in TargetSystem::EXPERIMENT {
            let r = report(sys);
            let t = schedule(&r, 3);
            assert!(
                t.days_elapsed() <= WINDOW_DAYS,
                "{sys:?} took {} days",
                t.days_elapsed()
            );
        }
    }

    #[test]
    fn slower_pace_takes_more_days() {
        let r = report(TargetSystem::Arrow);
        let fast = schedule(&r, 6).days_elapsed();
        let slow = schedule(&r, 1).days_elapsed();
        assert!(slow >= fast);
    }

    #[test]
    fn meeting_cadence_is_every_fourth_day() {
        let r = report(TargetSystem::NcFlow);
        let t = schedule(&r, 1);
        for d in &t.days {
            assert_eq!(d.meeting, d.day % 4 == 0);
        }
        assert!(t.meetings_held() >= 1);
    }
}
