//! Sharded sweep runtime: contiguous shard ranges, per-shard
//! write-ahead journals, a coordinator lease ledger, and a
//! deterministic merge that reconstructs the canonical journal
//! byte-identical to a serial run.
//!
//! The single-process runtime ([`crate::harness`]) caps out at one
//! machine's worth of pool workers and one journal. This module breaks
//! the process ceiling while keeping every crash/resume guarantee:
//!
//! * **Partition** — [`partition`] splits the canonical cell expansion
//!   into contiguous, near-equal [`ShardRange`]s. Contiguity is
//!   load-bearing: a shard journal is then an *execution prefix of a
//!   range*, so the same torn-tail recovery as the main journal applies.
//! * **Per-shard journals** — a shard process journals [`WorkLine`]s:
//!   the pure [`CellWork`] of each cell, *not* committed records.
//!   Supervision state (virtual clock, circuit breakers) is global and
//!   only advances at commit, so shards execute speculatively — exactly
//!   like pool workers do — and the merge commits.
//! * **Coordinator ledger** — the coordinator journals a [`CoordLine`]
//!   per lease *before* spawning the shard (write-ahead: no shard file
//!   can exist without a durable lease) and a completion line when a
//!   shard exits cleanly. Resume re-reads the ledger, truncates every
//!   journal to its valid prefix, and re-leases whatever is missing.
//! * **Work-stealing** — [`plan_leases`] splits the largest remaining
//!   run of unjournaled cells until every shard slot has work, so a
//!   nearly-finished resume still uses all its processes.
//! * **Deterministic merge** — [`merge`] replays every journaled work
//!   in canonical order through the sweep's commit path. Because
//!   [`crate::harness::Sweep::execute_cell`] is a pure function of the
//!   cell id and commit order is canonical, the merged journal and
//!   report are byte-identical to a single-process serial run — for
//!   any shard count, any worker count, and any crash/resume history.
//!
//! The effects analyzer (`repolint --effects`) proves this module's
//! determinism transitively via the `core::shard::merge` root: no
//! wall-clock reads (shard stalls sleep in the CLI layer, never here)
//! and only ordered containers (`BTreeMap`/`BTreeSet`).

use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::harness::{
    check_header, derive_seed, json_line, split_lines, CellId, CellLine, CellWork, JournalError,
    JournalHeader, JournalSink, MemoryJournal, MismatchField, Sweep, SweepConfig, SweepReport,
    JOURNAL_VERSION, SALT_SHARD,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A contiguous half-open range `[start, end)` of canonical cell
/// indices owned by one shard lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRange {
    /// First cell index (inclusive).
    pub start: u64,
    /// One past the last cell index (exclusive).
    pub end: u64,
}

impl ShardRange {
    /// Number of cells in the range.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range holds no cells.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl std::fmt::Display for ShardRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{})", self.start, self.end)
    }
}

/// Split `total` cells into at most `shards` contiguous, near-equal
/// ranges in canonical order. Every cell lands in exactly one range;
/// range sizes differ by at most one; fewer ranges come back when
/// `total < shards` (a shard is never leased an empty range).
pub fn partition(total: u64, shards: usize) -> Vec<ShardRange> {
    let shards = (shards.max(1) as u64).min(total);
    let mut out = Vec::with_capacity(shards as usize);
    let mut start = 0;
    for i in 0..shards {
        // First `total % shards` ranges take the extra cell.
        let len = total / shards + u64::from(i < total % shards);
        out.push(ShardRange { start, end: start + len });
        start += len;
    }
    out
}

/// One shard lease: a sequence number (which names the shard journal
/// file) and the range it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Ledger-unique lease number, assigned in issue order.
    pub seq: u64,
    /// First cell index (inclusive).
    pub start: u64,
    /// One past the last cell index (exclusive).
    pub end: u64,
}

impl Lease {
    /// The range this lease owns.
    pub fn range(&self) -> ShardRange {
        ShardRange { start: self.start, end: self.end }
    }
}

/// First line of a shard journal: the standard header fields plus the
/// lease identity, so a shard file can never replay into the wrong
/// range. (The shared fields are inlined rather than nested — journal
/// lines are flat JSON objects.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHeader {
    /// Layout version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// [`SweepConfig::fingerprint`] of the sweep.
    pub fingerprint: String,
    /// Matrix size.
    pub total_cells: u64,
    /// Memoization scheme ([`crate::cache::SCHEME`]).
    pub cache: String,
    /// Lease number this file belongs to.
    pub seq: u64,
    /// First cell index of the lease.
    pub start: u64,
    /// One past the last cell index of the lease.
    pub end: u64,
}

impl ShardHeader {
    /// The header a shard writes for `lease` under `config`.
    pub fn for_lease(config: &SweepConfig, lease: Lease) -> Self {
        ShardHeader {
            version: JOURNAL_VERSION,
            fingerprint: config.fingerprint(),
            total_cells: config.total_cells() as u64,
            cache: crate::cache::SCHEME.to_string(),
            seq: lease.seq,
            start: lease.start,
            end: lease.end,
        }
    }

    /// The shared header fields, for [`check_header`].
    fn base(&self) -> JournalHeader {
        JournalHeader {
            version: self.version,
            fingerprint: self.fingerprint.clone(),
            total_cells: self.total_cells,
            cache: self.cache.clone(),
        }
    }

    /// The newline-terminated journal line.
    pub fn line(&self) -> Result<String, String> {
        json_line(self)
    }
}

/// One journaled cell execution: the write-ahead unit of a shard
/// journal. Stores the pure [`CellWork`], not a committed record —
/// clock and breaker state are global and belong to the merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkLine {
    /// Position in the canonical expansion.
    pub index: u64,
    /// Which cell (cross-checked against the expansion on replay).
    pub cell: CellId,
    /// The cell's pure execution result.
    pub work: CellWork,
}

impl WorkLine {
    /// The newline-terminated journal line.
    pub fn line(&self) -> Result<String, String> {
        json_line(self)
    }
}

/// The replayable prefix of one shard journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReplay {
    /// Journaled works, contiguous from the lease's `start` (the i-th
    /// entry is cell index `start + i`).
    pub works: Vec<CellWork>,
    /// Byte length of the valid prefix; truncate the file to this
    /// before appending.
    pub valid_bytes: u64,
    /// Whether a torn or corrupt trailing line was dropped.
    pub dropped_partial: bool,
    /// Whether the valid prefix includes the header line.
    pub has_header: bool,
}

impl ShardReplay {
    /// The empty replay (fresh shard).
    pub fn empty() -> Self {
        ShardReplay { works: Vec::new(), valid_bytes: 0, dropped_partial: false, has_header: false }
    }
}

/// Parse one shard journal against `config` and the lease it must
/// belong to. Same recovery policy as the main journal: the trailing
/// line may be torn or corrupt (dropped; its cell re-runs), earlier
/// damage is [`JournalError::Corrupt`], and a header that names a
/// different lease or range is a typed [`JournalError::Mismatch`].
pub fn parse_shard_journal(
    text: &str,
    config: &SweepConfig,
    lease: Lease,
) -> Result<ShardReplay, JournalError> {
    let lines = split_lines(text);
    if lines.is_empty() {
        return Ok(ShardReplay::empty());
    }
    let cells = config.expand();
    let last = lines.len() - 1;

    let (head_text, head_end, head_terminated) = lines[0];
    let header: ShardHeader = match serde_json::from_str(head_text) {
        Ok(h) => h,
        Err(e) => {
            if last == 0 && !head_terminated {
                return Ok(ShardReplay {
                    works: Vec::new(),
                    valid_bytes: 0,
                    dropped_partial: true,
                    has_header: false,
                });
            }
            return Err(JournalError::Corrupt { line: 0, message: e.to_string() });
        }
    };
    if !head_terminated {
        return Ok(ShardReplay {
            works: Vec::new(),
            valid_bytes: 0,
            dropped_partial: true,
            has_header: false,
        });
    }
    check_header(&header.base(), config, cells.len())?;
    if header.seq != lease.seq {
        return Err(JournalError::mismatch(
            MismatchField::ShardLease,
            format!("lease {}", header.seq),
            format!("lease {}", lease.seq),
        ));
    }
    if header.start != lease.start || header.end != lease.end {
        return Err(JournalError::mismatch(
            MismatchField::ShardRange,
            ShardRange { start: header.start, end: header.end }.to_string(),
            lease.range().to_string(),
        ));
    }

    let mut works = Vec::new();
    let mut valid_bytes = head_end;
    let mut dropped_partial = false;
    for (n, &(line, end, terminated)) in lines.iter().enumerate().skip(1) {
        let trailing = n == last;
        let parsed: Result<WorkLine, String> = serde_json::from_str(line)
            .map_err(|e| e.to_string())
            .and_then(|wl: WorkLine| {
                let expect = lease.start + works.len() as u64;
                if wl.index != expect {
                    return Err(format!("index {} out of order (expected {expect})", wl.index));
                }
                if wl.index >= lease.end {
                    return Err(format!("index {} outside lease range {}", wl.index, lease.range()));
                }
                match cells.get(wl.index as usize) {
                    Some(cell) if *cell == wl.cell => Ok(wl),
                    Some(cell) => {
                        Err(format!("cell {} (expected {})", wl.cell.key(), cell.key()))
                    }
                    None => Err(format!("index {} outside the matrix", wl.index)),
                }
            })
            .and_then(|wl| {
                if terminated {
                    Ok(wl)
                } else {
                    Err("torn write (missing trailing newline)".to_string())
                }
            });
        match parsed {
            Ok(wl) => {
                works.push(wl.work);
                valid_bytes = end;
            }
            Err(_) if trailing => {
                dropped_partial = true;
                break;
            }
            Err(message) => return Err(JournalError::Corrupt { line: n, message }),
        }
    }
    Ok(ShardReplay { works, valid_bytes, dropped_partial, has_header: true })
}

/// Execute the unfinished remainder of `lease`, appending one
/// [`WorkLine`] to `sink` per cell (write-ahead) — the body of the
/// `sweep-shard` child process. Cells run with the sweep's configured
/// worker count, speculatively (no breaker consult: breakers are
/// global state that only the merge may consult), and the memo
/// attached to `sweep` stays process-local.
pub fn run_shard(
    sweep: &Sweep,
    lease: Lease,
    replay: &ShardReplay,
    sink: &mut dyn JournalSink,
) -> Result<(), String> {
    crate::harness::install_quiet_hook();
    let cells = sweep.config().expand();
    if lease.end as usize > cells.len() || lease.start > lease.end {
        return Err(format!(
            "lease {} range {} outside the {}-cell matrix",
            lease.seq,
            lease.range(),
            cells.len()
        ));
    }
    if lease.start + replay.works.len() as u64 > lease.end {
        return Err(format!(
            "lease {} has {} journaled works but only {} cells",
            lease.seq,
            replay.works.len(),
            lease.range().len()
        ));
    }
    if !replay.has_header {
        sink.append(&ShardHeader::for_lease(sweep.config(), lease).line()?)?;
    }
    let start_at = (lease.start as usize) + replay.works.len();
    let slice = &cells[start_at..lease.end as usize];
    if sweep.workers() > 1 && slice.len() > 1 {
        crate::pool::run_ordered(
            sweep.workers(),
            slice,
            |cell| sweep.execute_cell(cell),
            |offset, work| {
                let index = (start_at + offset) as u64;
                sink.append(&WorkLine { index, cell: slice[offset], work }.line()?)
            },
        )?;
    } else {
        for (offset, &cell) in slice.iter().enumerate() {
            let work = sweep.execute_cell(cell);
            let index = (start_at + offset) as u64;
            sink.append(&WorkLine { index, cell, work }.line()?)?;
        }
    }
    Ok(())
}

/// First line of the coordinator journal: the standard header fields
/// plus the shard count, so a resume with a different `--shards` is
/// rejected with a typed error instead of silently re-partitioning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordHeader {
    /// Layout version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// [`SweepConfig::fingerprint`] of the sweep.
    pub fingerprint: String,
    /// Matrix size.
    pub total_cells: u64,
    /// Memoization scheme ([`crate::cache::SCHEME`]).
    pub cache: String,
    /// Shard slots the coordinator runs.
    pub shards: u64,
}

impl CoordHeader {
    /// The header for a coordinator running `shards` slots of `config`.
    pub fn new(config: &SweepConfig, shards: usize) -> Self {
        CoordHeader {
            version: JOURNAL_VERSION,
            fingerprint: config.fingerprint(),
            total_cells: config.total_cells() as u64,
            cache: crate::cache::SCHEME.to_string(),
            shards: shards as u64,
        }
    }

    /// The shared header fields, for [`check_header`].
    fn base(&self) -> JournalHeader {
        JournalHeader {
            version: self.version,
            fingerprint: self.fingerprint.clone(),
            total_cells: self.total_cells,
            cache: self.cache.clone(),
        }
    }

    /// The newline-terminated journal line.
    pub fn line(&self) -> Result<String, String> {
        json_line(self)
    }
}

/// One line of the coordinator's lease ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordLine {
    /// A lease was issued (journaled *before* the shard is spawned, so
    /// no shard file can exist without a durable lease).
    Lease {
        /// The issued lease.
        lease: Lease,
    },
    /// The leased shard exited cleanly with its range fully journaled.
    Done {
        /// Which lease finished.
        seq: u64,
    },
}

impl CoordLine {
    /// The newline-terminated journal line.
    pub fn line(&self) -> Result<String, String> {
        json_line(self)
    }
}

/// The replayable prefix of a coordinator journal.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordReplay {
    /// Every issued lease, in seq order.
    pub leases: Vec<Lease>,
    /// Seqs of leases whose shard exited cleanly.
    pub done: BTreeSet<u64>,
    /// Byte length of the valid prefix; truncate the file to this
    /// before appending.
    pub valid_bytes: u64,
    /// Whether a torn or corrupt trailing line was dropped.
    pub dropped_partial: bool,
    /// Whether the valid prefix includes the header line.
    pub has_header: bool,
}

impl CoordReplay {
    /// The empty replay (fresh coordinator).
    pub fn empty() -> Self {
        CoordReplay {
            leases: Vec::new(),
            done: BTreeSet::new(),
            valid_bytes: 0,
            dropped_partial: false,
            has_header: false,
        }
    }

    /// The next unused lease number.
    pub fn next_seq(&self) -> u64 {
        self.leases.len() as u64
    }
}

/// Parse a coordinator journal against `config` and the requested
/// shard count. Recovery policy mirrors the other journals: trailing
/// tear dropped, earlier damage is [`JournalError::Corrupt`], and a
/// header disagreement — including a different shard count — is a
/// typed [`JournalError::Mismatch`].
pub fn parse_coord_journal(
    text: &str,
    config: &SweepConfig,
    shards: usize,
) -> Result<CoordReplay, JournalError> {
    let lines = split_lines(text);
    if lines.is_empty() {
        return Ok(CoordReplay::empty());
    }
    let total = config.total_cells() as u64;
    let last = lines.len() - 1;

    let (head_text, head_end, head_terminated) = lines[0];
    let header: CoordHeader = match serde_json::from_str(head_text) {
        Ok(h) => h,
        Err(e) => {
            if last == 0 && !head_terminated {
                return Ok(CoordReplay { dropped_partial: true, ..CoordReplay::empty() });
            }
            return Err(JournalError::Corrupt { line: 0, message: e.to_string() });
        }
    };
    if !head_terminated {
        return Ok(CoordReplay { dropped_partial: true, ..CoordReplay::empty() });
    }
    check_header(&header.base(), config, config.total_cells())?;
    if header.shards != shards as u64 {
        return Err(JournalError::mismatch(
            MismatchField::ShardCount,
            header.shards.to_string(),
            shards.to_string(),
        ));
    }

    let mut replay = CoordReplay {
        leases: Vec::new(),
        done: BTreeSet::new(),
        valid_bytes: head_end,
        dropped_partial: false,
        has_header: true,
    };
    for (n, &(line, end, terminated)) in lines.iter().enumerate().skip(1) {
        let trailing = n == last;
        let parsed: Result<CoordLine, String> = serde_json::from_str(line)
            .map_err(|e| e.to_string())
            .and_then(|cl: CoordLine| match cl {
                CoordLine::Lease { lease } => {
                    let expect = replay.leases.len() as u64;
                    if lease.seq != expect {
                        return Err(format!("lease {} out of order (expected {expect})", lease.seq));
                    }
                    if lease.start > lease.end || lease.end > total {
                        return Err(format!(
                            "lease {} range {} outside the {total}-cell matrix",
                            lease.seq,
                            lease.range()
                        ));
                    }
                    Ok(cl)
                }
                CoordLine::Done { seq } => {
                    if seq >= replay.leases.len() as u64 {
                        return Err(format!("done line for unissued lease {seq}"));
                    }
                    Ok(cl)
                }
            })
            .and_then(|cl| {
                if terminated {
                    Ok(cl)
                } else {
                    Err("torn write (missing trailing newline)".to_string())
                }
            });
        match parsed {
            Ok(CoordLine::Lease { lease }) => {
                replay.leases.push(lease);
                replay.valid_bytes = end;
            }
            Ok(CoordLine::Done { seq }) => {
                replay.done.insert(seq);
                replay.valid_bytes = end;
            }
            Err(_) if trailing => {
                replay.dropped_partial = true;
                break;
            }
            Err(message) => return Err(JournalError::Corrupt { line: n, message }),
        }
    }
    Ok(replay)
}

/// The contiguous runs of cell indices in `[0, total)` that no
/// journaled work covers yet — the cells a resume must still execute.
pub fn remaining_runs(total: u64, works: &BTreeMap<u64, CellWork>) -> Vec<ShardRange> {
    let mut runs = Vec::new();
    let mut open: Option<u64> = None;
    for i in 0..total {
        match (works.contains_key(&i), open) {
            (false, None) => open = Some(i),
            (true, Some(start)) => {
                runs.push(ShardRange { start, end: i });
                open = None;
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        runs.push(ShardRange { start, end: total });
    }
    runs
}

/// Turn the remaining runs into fresh leases for up to `slots` shard
/// processes, numbering them from `next_seq` in range order.
///
/// Work-stealing: while fewer runs than slots exist, the largest run
/// (ties broken toward the lowest start) is split at its midpoint —
/// the unclaimed tail of a long-running range is stolen by an idle
/// slot instead of leaving it to one straggler.
pub fn plan_leases(runs: &[ShardRange], slots: usize, next_seq: u64) -> Vec<Lease> {
    let mut runs: Vec<ShardRange> = runs.iter().copied().filter(|r| !r.is_empty()).collect();
    let slots = slots.max(1);
    while runs.len() < slots {
        // Largest splittable run, lowest start on ties.
        let target = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.len() >= 2)
            .max_by(|(ai, a), (bi, b)| a.len().cmp(&b.len()).then(bi.cmp(ai)))
            .map(|(i, _)| i);
        let Some(i) = target else { break };
        let run = runs[i];
        let mid = run.start + run.len() / 2;
        runs[i] = ShardRange { start: run.start, end: mid };
        runs.insert(i + 1, ShardRange { start: mid, end: run.end });
    }
    runs.sort_by_key(|r| r.start);
    runs.iter()
        .enumerate()
        .map(|(i, r)| Lease { seq: next_seq + i as u64, start: r.start, end: r.end })
        .collect()
}

/// A shard-site fault the CLI injects into a shard child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The process dies (SIGKILL-equivalent) before journaling the
    /// cell; the coordinator restarts the lease.
    Crash,
    /// The process is descheduled briefly before journaling the cell;
    /// the journal content is unchanged.
    Stall,
}

/// Roll the shard-site fault for one cell of a shard child. Pure
/// function of the cell and the lease's restart `generation` —
/// mixing the generation in is what keeps a deterministic crash from
/// re-firing identically on every respawn and pinning the shard in a
/// restart loop. Under [`crate::fault::FaultProfile::None`] this never
/// fires and draws no RNG.
pub fn roll_shard_fault(cell: CellId, generation: u32) -> Option<ShardFault> {
    let mut injector =
        FaultPlan::new(cell.profile, derive_seed(cell, generation, SALT_SHARD)).injector();
    if let Some(id) = injector.roll(FaultSite::Shard, FaultKind::ShardCrash) {
        // The coordinator's respawn absorbs the crash by construction;
        // the ledger entry never reaches a journal (shard faults strike
        // the machinery, not the cell outcome).
        injector.absorb(id);
        return Some(ShardFault::Crash);
    }
    if let Some(id) = injector.roll(FaultSite::Shard, FaultKind::ShardStall) {
        injector.absorb(id);
        return Some(ShardFault::Stall);
    }
    None
}

/// Commit every journaled work in canonical order through `sweep`'s
/// commit path, writing the standard journal into `sink` and returning
/// the assembled report — both byte-identical to a serial run.
///
/// Breaker-skipped cells need no work (shards execute them
/// speculatively; their journaled works are discarded here exactly as
/// the pool discards at commit time); a *non*-skipped cell with no
/// journaled work means the shard coverage is incomplete and the merge
/// refuses rather than fabricating a record.
pub fn merge(
    sweep: &Sweep,
    works: &BTreeMap<u64, CellWork>,
    sink: &mut dyn JournalSink,
) -> Result<SweepReport, String> {
    let cells = sweep.config().expand();
    sink.append(&json_line(&JournalHeader {
        version: JOURNAL_VERSION,
        fingerprint: sweep.config().fingerprint(),
        total_cells: cells.len() as u64,
        cache: crate::cache::SCHEME.to_string(),
    })?)?;
    let mut records = Vec::with_capacity(cells.len());
    let mut clock = 0u64;
    let mut breaker: BTreeMap<String, u32> = BTreeMap::new();
    for (i, &cell) in cells.iter().enumerate() {
        let work = if sweep.breaker_tripped(&breaker, cell) {
            None
        } else {
            Some(works.get(&(i as u64)).cloned().ok_or_else(|| {
                format!("shard merge incomplete: no journaled work for cell {i} ({})", cell.key())
            })?)
        };
        let record = sweep.commit_cell(cell, work, &mut clock, &mut breaker);
        let line = CellLine { index: i as u64, record };
        sink.append(&json_line(&line)?)?;
        records.push(line.record);
    }
    Ok(sweep.assemble(records, clock))
}

/// Run the whole matrix sharded *in-process* — partition, run each
/// shard into its own in-memory journal, parse them back, and merge
/// into `sink`. The bench and the property tests use this to measure
/// and verify the shard pipeline (journaling serde included) without
/// process spawns; the CLI coordinator is the multi-process analogue.
pub fn run_sharded(
    sweep: &Sweep,
    shards: usize,
    sink: &mut dyn JournalSink,
) -> Result<SweepReport, String> {
    let total = sweep.config().total_cells() as u64;
    let mut works: BTreeMap<u64, CellWork> = BTreeMap::new();
    for (seq, range) in partition(total, shards).into_iter().enumerate() {
        let lease = Lease { seq: seq as u64, start: range.start, end: range.end };
        let mut shard_sink = MemoryJournal::new();
        run_shard(sweep, lease, &ShardReplay::empty(), &mut shard_sink)?;
        let replay = parse_shard_journal(shard_sink.text(), sweep.config(), lease)
            .map_err(|e| e.to_string())?;
        for (offset, work) in replay.works.into_iter().enumerate() {
            works.insert(lease.start + offset as u64, work);
        }
    }
    merge(sweep, &works, sink)
}

/// Collect the works of a parsed shard replay into the merge map.
pub fn collect_works(lease: Lease, replay: &ShardReplay, works: &mut BTreeMap<u64, CellWork>) {
    for (offset, work) in replay.works.iter().enumerate() {
        works.insert(lease.start + offset as u64, work.clone());
    }
}

/// How much of the matrix the journaled works cover: `(covered cells,
/// still-missing runs)`. The coordinator prints this as its
/// partial-coverage report when the restart cap is exhausted.
pub fn coverage_of(total: u64, works: &BTreeMap<u64, CellWork>) -> (u64, Vec<ShardRange>) {
    let runs = remaining_runs(total, works);
    let missing: u64 = runs.iter().map(ShardRange::len).sum();
    (total - missing, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use crate::harness::TaskLimits;
    use crate::paper::TargetSystem;
    use crate::prompt::PromptStyle;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            systems: vec![TargetSystem::RockPaperScissors, TargetSystem::NcFlow],
            styles: vec![PromptStyle::ModularText],
            seeds: vec![0, 1],
            profiles: vec![FaultProfile::None, FaultProfile::Chaos],
            scales: vec![crate::harness::TopoScale::Paper],
            limits: TaskLimits::default(),
        }
    }

    /// 5 seeds of one class with threshold 3: cells 0..2 quarantine,
    /// 3..4 are skipped by the breaker — the config where shards
    /// speculatively execute cells the serial run never touches.
    fn tripping_config() -> SweepConfig {
        SweepConfig {
            systems: vec![TargetSystem::NcFlow],
            styles: vec![PromptStyle::ModularText],
            seeds: (0..5).collect(),
            profiles: vec![FaultProfile::None],
            scales: vec![crate::harness::TopoScale::Paper],
            limits: TaskLimits {
                deadline_steps: 5,
                breaker_threshold: 3,
                ..TaskLimits::default()
            },
        }
    }

    fn serial_run(cfg: &SweepConfig) -> (SweepReport, String) {
        let mut sink = MemoryJournal::new();
        let report = Sweep::new(cfg.clone()).run(&mut sink).unwrap();
        (report, sink.text().to_string())
    }

    #[test]
    fn partition_covers_exactly_and_evenly() {
        for total in [0u64, 1, 2, 7, 16, 112] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let ranges = partition(total, shards);
                assert!(ranges.len() <= shards.max(1));
                assert!(ranges.len() as u64 <= total.max(u64::from(total == 0)));
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous at total={total} shards={shards}");
                    assert!(!r.is_empty(), "no empty leases at total={total} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, total, "covers the matrix at total={total} shards={shards}");
                if let (Some(max), Some(min)) =
                    (ranges.iter().map(|r| r.len()).max(), ranges.iter().map(|r| r.len()).min())
                {
                    assert!(max - min <= 1, "near-equal at total={total} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn sharded_run_matches_serial_bytes() {
        let cfg = tiny_config();
        let (serial, serial_text) = serial_run(&cfg);
        for shards in [1usize, 2, 4] {
            let sweep = Sweep::new(cfg.clone());
            let mut sink = MemoryJournal::new();
            let report = run_sharded(&sweep, shards, &mut sink).unwrap();
            assert_eq!(report.render_json(), serial.render_json(), "shards={shards}");
            assert_eq!(sink.text(), serial_text, "shards={shards}");
        }
    }

    #[test]
    fn sharded_run_with_pool_workers_matches_serial_bytes() {
        let cfg = tiny_config();
        let (serial, serial_text) = serial_run(&cfg);
        let sweep = Sweep::new(cfg).with_workers(2);
        let mut sink = MemoryJournal::new();
        let report = run_sharded(&sweep, 2, &mut sink).unwrap();
        assert_eq!(report.render_json(), serial.render_json());
        assert_eq!(sink.text(), serial_text);
    }

    #[test]
    fn merge_rebuilds_breaker_across_shard_boundaries() {
        // The tripping class spans both shards: shard 0 journals the
        // quarantining cells, shard 1 speculatively executes cells the
        // breaker will skip — the merge must discard them and commit
        // SkippedByBreaker, byte-identical to serial.
        let cfg = tripping_config();
        let (serial, serial_text) = serial_run(&cfg);
        assert_eq!(serial.coverage.quarantined, 3);
        assert_eq!(serial.coverage.skipped_by_breaker, 2);
        for shards in [2usize, 4] {
            let sweep = Sweep::new(cfg.clone());
            let mut sink = MemoryJournal::new();
            let report = run_sharded(&sweep, shards, &mut sink).unwrap();
            assert_eq!(report.render_json(), serial.render_json(), "shards={shards}");
            assert_eq!(sink.text(), serial_text, "shards={shards}");
        }
    }

    #[test]
    fn two_shards_killed_mid_same_class_recover_byte_identically() {
        // Both shards of the tripping class die mid-range (simulated:
        // their journals hold a strict prefix of their works). Resume
        // re-leases the remainders, finishes them, and the merge must
        // still rebuild breaker state correctly across the boundary.
        let cfg = tripping_config();
        let (serial, serial_text) = serial_run(&cfg);
        let sweep = Sweep::new(cfg.clone());
        let total = cfg.total_cells() as u64;
        let ranges = partition(total, 2);
        let mut works: BTreeMap<u64, CellWork> = BTreeMap::new();
        for (seq, range) in ranges.iter().enumerate() {
            let lease = Lease { seq: seq as u64, start: range.start, end: range.end };
            let mut sink = MemoryJournal::new();
            run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
            // Kill mid-range: keep header + 1 work line only.
            let kept: String = sink.text().split_inclusive('\n').take(2).collect();
            let replay = parse_shard_journal(&kept, &cfg, lease).unwrap();
            assert_eq!(replay.works.len(), 1, "shard {seq}");
            collect_works(lease, &replay, &mut works);
        }
        // Re-lease the two holes and finish them.
        let runs = remaining_runs(total, &works);
        assert_eq!(runs.len(), 2, "one hole per killed shard: {runs:?}");
        for lease in plan_leases(&runs, 2, 2) {
            let mut sink = MemoryJournal::new();
            run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
            let replay = parse_shard_journal(sink.text(), &cfg, lease).unwrap();
            collect_works(lease, &replay, &mut works);
        }
        let mut sink = MemoryJournal::new();
        let report = merge(&sweep, &works, &mut sink).unwrap();
        assert_eq!(report.render_json(), serial.render_json());
        assert_eq!(sink.text(), serial_text);
    }

    #[test]
    fn empty_shard_and_header_only_journals_resume_cleanly() {
        let cfg = tiny_config();
        let (serial, serial_text) = serial_run(&cfg);
        let sweep = Sweep::new(cfg.clone());
        let total = cfg.total_cells() as u64;
        let ranges = partition(total, 2);
        let lease0 = Lease { seq: 0, start: ranges[0].start, end: ranges[0].end };
        let lease1 = Lease { seq: 1, start: ranges[1].start, end: ranges[1].end };

        // Shard 0 was leased but died before its first append: no
        // journal text at all (the lease line is durable, the file is
        // empty). Shard 1 died right after the header.
        let empty = parse_shard_journal("", &cfg, lease0).unwrap();
        assert_eq!(empty, ShardReplay::empty());
        let mut sink1 = MemoryJournal::new();
        run_shard(&sweep, lease1, &ShardReplay::empty(), &mut sink1).unwrap();
        let header_only: String = sink1.text().split_inclusive('\n').take(1).collect();
        let ho = parse_shard_journal(&header_only, &cfg, lease1).unwrap();
        assert!(ho.has_header && ho.works.is_empty() && !ho.dropped_partial);
        assert_eq!(ho.valid_bytes as usize, header_only.len());

        // Resume both from their replays: shard 1 must not rewrite its
        // header, and the finished journals merge byte-identically.
        let mut works: BTreeMap<u64, CellWork> = BTreeMap::new();
        let mut sink0 = MemoryJournal::new();
        run_shard(&sweep, lease0, &empty, &mut sink0).unwrap();
        collect_works(lease0, &parse_shard_journal(sink0.text(), &cfg, lease0).unwrap(), &mut works);
        let mut resumed1 = MemoryJournal::with_text(&header_only);
        run_shard(&sweep, lease1, &ho, &mut resumed1).unwrap();
        assert_eq!(resumed1.text(), sink1.text(), "resume must extend, not rewrite");
        collect_works(
            lease1,
            &parse_shard_journal(resumed1.text(), &cfg, lease1).unwrap(),
            &mut works,
        );
        let mut merged = MemoryJournal::new();
        let report = merge(&sweep, &works, &mut merged).unwrap();
        assert_eq!(report.render_json(), serial.render_json());
        assert_eq!(merged.text(), serial_text);
    }

    #[test]
    fn torn_shard_tail_is_dropped_and_rerun() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let lease = Lease { seq: 0, start: 0, end: cfg.total_cells() as u64 };
        let mut sink = MemoryJournal::new();
        run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
        let text = sink.text().to_string();
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let keep: String = lines[..lines.len() - 1].concat();
        let torn = format!("{keep}{}", &lines[lines.len() - 1][..12]);
        let replay = parse_shard_journal(&torn, &cfg, lease).unwrap();
        assert!(replay.dropped_partial);
        assert_eq!(replay.works.len(), cfg.total_cells() - 1);
        assert_eq!(replay.valid_bytes as usize, keep.len());
        let mut resumed = MemoryJournal::with_text(&keep);
        run_shard(&sweep, lease, &replay, &mut resumed).unwrap();
        assert_eq!(resumed.text(), text);
    }

    #[test]
    fn shard_header_mismatches_are_typed() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let lease = Lease { seq: 3, start: 0, end: 2 };
        let mut sink = MemoryJournal::new();
        run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
        // Wrong lease number.
        let wrong_seq = Lease { seq: 4, ..lease };
        match parse_shard_journal(sink.text(), &cfg, wrong_seq) {
            Err(JournalError::Mismatch { field: MismatchField::ShardLease, .. }) => {}
            other => panic!("expected a shard-lease Mismatch, got {other:?}"),
        }
        // Wrong range.
        let wrong_range = Lease { end: 3, ..lease };
        let err = parse_shard_journal(sink.text(), &cfg, wrong_range).unwrap_err();
        match &err {
            JournalError::Mismatch { field: MismatchField::ShardRange, found, expected } => {
                assert_eq!(found, "[0,2)");
                assert_eq!(expected, "[0,3)");
            }
            other => panic!("expected a shard-range Mismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("journal mismatch: shard-range"), "{err}");
        // Wrong matrix: the shared fields reject first.
        let mut other = cfg.clone();
        other.seeds = vec![0, 1, 2];
        match parse_shard_journal(sink.text(), &other, lease) {
            Err(JournalError::Mismatch { field: MismatchField::Fingerprint, .. }) => {}
            other => panic!("expected a fingerprint Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn coord_journal_round_trips_and_rejects_shard_count_change() {
        let cfg = tiny_config();
        let mut sink = MemoryJournal::new();
        sink.append(&CoordHeader::new(&cfg, 4).line().unwrap()).unwrap();
        let leases =
            plan_leases(&[ShardRange { start: 0, end: cfg.total_cells() as u64 }], 4, 0);
        for lease in &leases {
            sink.append(&CoordLine::Lease { lease: *lease }.line().unwrap()).unwrap();
        }
        sink.append(&CoordLine::Done { seq: 1 }.line().unwrap()).unwrap();
        let replay = parse_coord_journal(sink.text(), &cfg, 4).unwrap();
        assert_eq!(replay.leases, leases);
        assert!(replay.done.contains(&1) && replay.done.len() == 1);
        assert_eq!(replay.next_seq(), leases.len() as u64);
        assert_eq!(replay.valid_bytes as usize, sink.text().len());
        match parse_coord_journal(sink.text(), &cfg, 2) {
            Err(JournalError::Mismatch { field: MismatchField::ShardCount, found, expected }) => {
                assert_eq!((found.as_str(), expected.as_str()), ("4", "2"));
            }
            other => panic!("expected a shard-count Mismatch, got {other:?}"),
        }
        // Torn trailing lease line: dropped, earlier lines survive.
        let torn = format!("{}{}", sink.text(), "{\"Lease\":{\"lease\":{\"seq\":9");
        let recovered = parse_coord_journal(&torn, &cfg, 4).unwrap();
        assert!(recovered.dropped_partial);
        assert_eq!(recovered.leases, leases);
        // A done line for an unissued lease anywhere but the tail is
        // corruption, not recoverable tearing.
        let mut lines: Vec<String> =
            sink.text().split_inclusive('\n').map(str::to_string).collect();
        lines[1] = "{\"Done\":{\"seq\":77}}\n".to_string();
        match parse_coord_journal(&lines.concat(), &cfg, 4) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn remaining_runs_and_lease_planning_steal_tails() {
        let mut works: BTreeMap<u64, CellWork> = BTreeMap::new();
        let stub = CellWork {
            attempts: Vec::new(),
            result: None,
            faults: crate::harness::FaultTally::zero(),
            ticks: 0,
        };
        for i in [0u64, 1, 2, 5, 6, 11] {
            works.insert(i, stub.clone());
        }
        let runs = remaining_runs(12, &works);
        assert_eq!(
            runs,
            vec![ShardRange { start: 3, end: 5 }, ShardRange { start: 7, end: 11 }]
        );
        let (covered, missing) = coverage_of(12, &works);
        assert_eq!(covered, 6);
        assert_eq!(missing, runs);
        // Four slots over two runs: the larger run [7,11) splits once,
        // then the tied 2-cell runs split by lowest start first.
        let leases = plan_leases(&runs, 4, 10);
        assert_eq!(
            leases,
            vec![
                Lease { seq: 10, start: 3, end: 4 },
                Lease { seq: 11, start: 4, end: 5 },
                Lease { seq: 12, start: 7, end: 9 },
                Lease { seq: 13, start: 9, end: 11 },
            ]
        );
        // Single-cell runs cannot split further than their count.
        let tiny = plan_leases(&[ShardRange { start: 0, end: 1 }], 8, 0);
        assert_eq!(tiny, vec![Lease { seq: 0, start: 0, end: 1 }]);
        // No runs, no leases.
        assert!(plan_leases(&[], 4, 0).is_empty());
    }

    #[test]
    fn merge_refuses_incomplete_coverage() {
        let cfg = tiny_config();
        let sweep = Sweep::new(cfg.clone());
        let lease = Lease { seq: 0, start: 0, end: cfg.total_cells() as u64 };
        let mut sink = MemoryJournal::new();
        run_shard(&sweep, lease, &ShardReplay::empty(), &mut sink).unwrap();
        let replay = parse_shard_journal(sink.text(), &cfg, lease).unwrap();
        let mut works: BTreeMap<u64, CellWork> = BTreeMap::new();
        collect_works(lease, &replay, &mut works);
        works.remove(&1);
        let err = merge(&sweep, &works, &mut MemoryJournal::new()).unwrap_err();
        assert!(err.contains("merge incomplete"), "{err}");
        assert!(err.contains("cell 1"), "{err}");
    }

    #[test]
    fn shard_faults_are_deterministic_and_generation_sensitive() {
        let cells = SweepConfig {
            profiles: vec![FaultProfile::Chaos],
            seeds: (0..64).collect(),
            ..tiny_config()
        }
        .expand();
        // Pure: same cell and generation, same roll.
        for &cell in cells.iter().take(8) {
            assert_eq!(roll_shard_fault(cell, 0), roll_shard_fault(cell, 0));
        }
        // Chaos fires somewhere, and a later generation re-rolls: at
        // least one crashing cell must stop crashing at generation+1
        // (what breaks the deterministic respawn loop).
        let crashes: Vec<CellId> = cells
            .iter()
            .copied()
            .filter(|&c| roll_shard_fault(c, 0) == Some(ShardFault::Crash))
            .collect();
        assert!(!crashes.is_empty(), "chaos must crash at least one of 64 cells");
        assert!(
            crashes.iter().any(|&c| roll_shard_fault(c, 1) != Some(ShardFault::Crash)),
            "a respawn must be able to get past a crash"
        );
        // The none profile never fires.
        let quiet = SweepConfig { profiles: vec![FaultProfile::None], ..tiny_config() };
        for cell in quiet.expand() {
            assert_eq!(roll_shard_fault(cell, 0), None);
        }
    }
}
