//! Partitioned parallel data-plane verification at DCN scale.
//!
//! This is the orchestration half of the hyper-scale DPV pipeline: the
//! pure per-chunk verifier lives in [`netrepro_dpv::scale`] (so `dpv`
//! stays dependency-light), and this module owns the fan-out — it
//! partitions the destination list into `partitions` disjoint,
//! contiguous, canonical chunks, runs every chunk through **its own
//! [`netrepro_bdd::BddManager`]** on a [`crate::pool`] worker, and
//! merges the per-chunk verdict vectors strictly in partition order.
//!
//! Determinism argument, in two halves:
//!
//! 1. **Within a chunk** verification is sequential and seeded — a pure
//!    function of `(network, chunk, opts)`.
//! 2. **Across chunks** a [`netrepro_dpv::scale::DestVerdict`] carries
//!    only semantic data (device counts, exact header counts, sorted
//!    device ids) and never BDD-manager state, so splitting the
//!    destination list differently cannot change any verdict; and the
//!    pool's reorder buffer commits chunks in slice order, so the
//!    merged vector is the chunk-concatenation in canonical order.
//!
//! Together: `run_partitioned(P, W)` is byte-identical (over
//! [`netrepro_dpv::scale::render`]) to the serial verifier for every
//! partition count `P` and worker count `W`. The proptests below pin
//! exactly that, churn included.

use crate::pool::{run_ordered_items, PoolStats};
use netrepro_bdd::EngineProfile;
use netrepro_dpv::fabric::{build, Fabric, FabricSpec};
use netrepro_dpv::scale::{
    digest, partition_ranges, render, sample_dests, verify_destinations, DestVerdict, ScaleError,
    ScaleOpts,
};
use netrepro_dpv::{Network, Prefix};
use netrepro_graph::NodeId;

/// Errors from a partitioned verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpvScaleError {
    /// A chunk's verifier failed (first failure in canonical partition
    /// order — typically a [`netrepro_bdd::BddError::TableExhausted`]).
    Verify(ScaleError),
    /// The worker pool itself failed to deliver every chunk.
    Pool(String),
}

impl std::fmt::Display for DpvScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpvScaleError::Verify(e) => write!(f, "{e}"),
            DpvScaleError::Pool(msg) => write!(f, "worker pool failed: {msg}"),
        }
    }
}

impl std::error::Error for DpvScaleError {}

impl From<ScaleError> for DpvScaleError {
    fn from(e: ScaleError) -> Self {
        DpvScaleError::Verify(e)
    }
}

/// A full hyper-scale verification job: fabric shape + query sampling +
/// execution shape.
#[derive(Debug, Clone, Copy)]
pub struct DpvScaleSpec {
    /// Fat-tree arity `k` (even, `k/2` a power of two).
    pub k: usize,
    /// Fabric seed — drives ECMP tie-breaks and churn.
    pub seed: u64,
    /// Directed links to sever (blackhole churn); 0 = clean fabric.
    pub link_down: usize,
    /// Destinations to verify: `None` = all `k³/4` host prefixes,
    /// `Some(q)` = a seeded ascending sample of `q` of them.
    pub queries: Option<usize>,
    /// Destination partitions (each gets a private BDD manager).
    pub partitions: usize,
    /// Pool workers executing the partitions.
    pub workers: usize,
    /// Per-partition BDD node budget; `None` = unbounded.
    pub node_cap: Option<usize>,
}

impl DpvScaleSpec {
    /// A clean, fully-queried, serial spec for arity `k`.
    pub fn new(k: usize, seed: u64) -> Self {
        DpvScaleSpec {
            k,
            seed,
            link_down: 0,
            queries: None,
            partitions: 1,
            workers: 1,
            node_cap: None,
        }
    }
}

/// The merged outcome of a partitioned verification run.
#[derive(Debug, Clone)]
pub struct DpvScaleReport {
    /// Merged verdicts, in canonical destination order.
    pub verdicts: Vec<DestVerdict>,
    /// Canonical rendering of `verdicts` ([`render`]).
    pub rendered: String,
    /// FNV-1a 64 fingerprint of `rendered`.
    pub digest: u64,
    /// Devices in the verified fabric.
    pub devices: usize,
    /// Destinations actually verified (after sampling).
    pub queried: usize,
    /// What the worker pool absorbed.
    pub pool: PoolStats,
}

/// Resolve a spec's destination list against a built fabric: all host
/// prefixes, or the seeded sample.
pub fn spec_dests(fabric: &Fabric, spec: &DpvScaleSpec) -> Vec<(NodeId, Prefix)> {
    let total = fabric.num_dests();
    match spec.queries {
        None => (0..total).map(|i| fabric.dest(i)).collect(),
        Some(q) => sample_dests(total, q, spec.seed).into_iter().map(|i| fabric.dest(i)).collect(),
    }
}

/// Partition `dests` into `partitions` chunks, verify each on its own
/// pool worker with a private manager, and merge in canonical order.
///
/// The first chunk error (in canonical partition order) aborts the run
/// and is returned typed; chunks already in flight finish harmlessly —
/// their managers are chunk-private, so nothing leaks.
pub fn run_partitioned(
    net: &Network,
    dests: &[(NodeId, Prefix)],
    opts: &ScaleOpts,
    partitions: usize,
    workers: usize,
) -> Result<(Vec<DestVerdict>, PoolStats), DpvScaleError> {
    let ranges = partition_ranges(dests.len(), partitions);
    let mut merged: Vec<DestVerdict> = Vec::with_capacity(dests.len());
    let mut first_err: Option<ScaleError> = None;
    let pool = run_ordered_items(
        workers,
        &ranges,
        |_, r| verify_destinations(net, &dests[r.clone()], opts),
        |_, outcome| match outcome {
            Ok(mut chunk) => {
                merged.append(&mut chunk);
                Ok(())
            }
            Err(e) => {
                first_err = Some(e);
                Err("chunk failed".to_string())
            }
        },
    );
    match (first_err, pool) {
        (Some(e), _) => Err(e.into()),
        (None, Ok(stats)) => Ok((merged, stats)),
        (None, Err(msg)) => Err(DpvScaleError::Pool(msg)),
    }
}

/// Build the fabric described by `spec`, verify it partitioned, and
/// package the canonical report.
pub fn run_spec(spec: &DpvScaleSpec) -> Result<DpvScaleReport, DpvScaleError> {
    let fabric = build(&FabricSpec {
        k: spec.k,
        seed: spec.seed,
        link_down: spec.link_down,
        with_hosts: true,
    });
    let dests = spec_dests(&fabric, spec);
    let opts = ScaleOpts { profile: EngineProfile::Cached, node_cap: spec.node_cap };
    let (verdicts, pool) =
        run_partitioned(&fabric.network, &dests, &opts, spec.partitions, spec.workers)?;
    let rendered = render(&verdicts);
    let digest = digest(&rendered);
    Ok(DpvScaleReport {
        devices: fabric.num_devices(),
        queried: dests.len(),
        verdicts,
        digest,
        rendered,
        pool,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn serial_reference(spec: &DpvScaleSpec) -> DpvScaleReport {
        let mut s = *spec;
        s.partitions = 1;
        s.workers = 1;
        run_spec(&s).expect("serial verification")
    }

    #[test]
    fn partitioned_matches_serial_on_k4_clean_and_churned() {
        for link_down in [0usize, 14] {
            let spec = DpvScaleSpec { link_down, ..DpvScaleSpec::new(4, 11) };
            let serial = serial_reference(&spec);
            for partitions in [1usize, 2, 4, 8] {
                for workers in [1usize, 4] {
                    let report =
                        run_spec(&DpvScaleSpec { partitions, workers, ..spec }).expect("run");
                    assert_eq!(report.rendered, serial.rendered, "P={partitions} W={workers}");
                    assert_eq!(report.digest, serial.digest);
                    assert_eq!(report.verdicts, serial.verdicts);
                }
            }
        }
    }

    #[test]
    fn ten_thousand_device_fabric_is_partition_invariant() {
        // k=16 with hosts: 320 switches + 1024 hosts per the Al-Fares
        // arithmetic... not ≥10k; k=32 gives 1280 + 8192 = 9472; the
        // ≥10k floor needs k=64: 5120 switches + 65536 hosts = 70656
        // devices. Query a small seeded sample so the test stays fast —
        // partition invariance is per-destination, so sample size does
        // not weaken the property.
        let spec = DpvScaleSpec {
            link_down: 40,
            queries: Some(3),
            ..DpvScaleSpec::new(64, 7)
        };
        let serial = serial_reference(&spec);
        assert!(serial.devices >= 10_000, "fabric must clear the 10k-device floor");
        assert_eq!(serial.queried, 3);
        for partitions in [2usize, 8] {
            let report = run_spec(&DpvScaleSpec { partitions, workers: 4, ..spec }).expect("run");
            assert_eq!(report.rendered, serial.rendered, "P={partitions}");
        }
    }

    #[test]
    fn chunk_error_surfaces_typed_and_first() {
        // Host-block destinations hash-cons into the fabric's aligned
        // predicates, so exhaustion needs the ANY destination (unions
        // of disjoint host blocks mint genuinely new nodes).
        let fabric = build(&FabricSpec { k: 4, seed: 3, link_down: 0, with_hosts: true });
        let dests = vec![(fabric.dest(0).0, Prefix::ANY), fabric.dest(1)];
        let tight = ScaleOpts { profile: EngineProfile::Cached, node_cap: Some(8) };
        match run_partitioned(&fabric.network, &dests, &tight, 2, 2) {
            Err(DpvScaleError::Verify(ScaleError::Bdd(
                netrepro_bdd::BddError::TableExhausted { cap, .. },
            ))) => assert_eq!(cap, 8),
            other => panic!("expected TableExhausted, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The tentpole property: partitioned parallel verification is
        /// byte-identical to the serial verifier at P ∈ {1,2,4,8} on
        /// seeded fat-trees, with and without link_down churn.
        #[test]
        fn partitioned_verdicts_are_byte_identical_to_serial(
            seed in 0u64..1_000,
            k in prop_oneof![Just(4usize), Just(8)],
            link_down in 0usize..24,
            queries in prop_oneof![Just(None), (1usize..12).prop_map(Some)],
        ) {
            let spec = DpvScaleSpec {
                link_down,
                queries,
                ..DpvScaleSpec::new(k, seed)
            };
            let serial = serial_reference(&spec);
            for partitions in [1usize, 2, 4, 8] {
                let report = run_spec(&DpvScaleSpec {
                    partitions,
                    workers: partitions.min(4),
                    ..spec
                }).expect("partitioned run");
                prop_assert_eq!(&report.rendered, &serial.rendered,
                    "P={} k={} seed={} link_down={}", partitions, k, seed, link_down);
                prop_assert_eq!(report.digest, serial.digest);
            }
        }
    }
}
